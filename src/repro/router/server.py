"""The asyncio front-tier router: many engine processes, one port.

:class:`RouterServer` speaks the exact frame protocol of
:mod:`repro.serving.protocol` to clients — the existing
:class:`~repro.serving.ServeClient` / :class:`~repro.serving.AsyncServeClient`
work against it unchanged — and multiplexes predict traffic over a
fleet of backend ``repro serve`` processes (static addresses, spawned
children, or both).  Per request it:

1. resolves the routing fields (``model`` / ``precision``) from the
   request header — the payload stays opaque bytes end to end, never
   re-serialized,
2. asks the :class:`~repro.router.placement.PlacementPolicy` for a
   backend (healthy candidates advertising the route,
   least-loaded-of-two, sticky tie-break),
3. forwards the frame and relays the response verbatim,
4. **fails over** on transport death: predicts are idempotent (pure
   functions of their rows), so a request whose backend dies
   mid-flight replays bitwise-identically on a survivor.  Shed
   responses (``overloaded``) try the other candidates and — only when
   *every* candidate shed — propagate with the **max** backend
   ``retry_after_ms`` (the honest wait for capacity anywhere).
   Deliberate errors (``deadline_expired``, unknown models, malformed
   frames) are relayed verbatim and never retried: repeating them
   cannot succeed, and a deadline that expired on one backend is no
   less expired on the next.

Health is probed over the same wire (the ``info`` op) on a fixed
interval per backend; see :mod:`repro.router.backend` for the state
machine and :mod:`repro.router.placement` for how the capacity numbers
(queued rows, shed counters, fused-batch EMA) become placement.

Drain (the ``drain`` op, or SIGTERM under ``repro route``) refuses new
predicts, lets in-flight forwards complete and flush, fans ``drain``
out to every *spawned* child (static backends belong to someone else),
waits for the children to exit, then closes the listener.

**Streams are pinned, never failed over.**  A ``stream_open`` is placed
like a predict (and may try other candidates while nothing is at
stake), but once open the stream's state lives in *one* backend's
per-connection registry, so every ``stream_push`` must travel down the
same backend connection — the router keeps a dedicated relay connection
per (client connection, backend) pair, outside the probe/forward pools.
When that backend dies mid-stream the router does **not** replay the
push on a survivor (the push may already have been applied; a replay
would corrupt the stream's position): it marks the backend down, drops
every stream pinned to it, and relays ``server_unavailable``, which the
client surfaces as :class:`~repro.exceptions.StreamBroken`.  Stream
handles are rewritten at the boundary (router-issued ids map to
backend-issued ids) so concurrent client connections never collide.
See ``docs/streaming.md``.
"""

from __future__ import annotations

import asyncio

from ..exceptions import ServerUnavailable, ServingError
from ..serving.protocol import read_frame, send_frame
from ..testing import faults
from .backend import BackendHandle
from .config import RouterConfig
from .placement import PlacementPolicy
from .spawn import SpawnedBackend, spawn_backends

__all__ = ["RouterServer"]


class RouterServer:
    """Route the frame protocol over a fleet of engine backends.

    Parameters
    ----------
    config:
        A validated :class:`~repro.router.RouterConfig`; alternatively
        pass its fields as keyword arguments.
    policy:
        Placement override (defaults to a fresh
        :class:`~repro.router.placement.PlacementPolicy`); tests inject
        seeded policies here.
    """

    def __init__(
        self,
        config: RouterConfig | None = None,
        policy: PlacementPolicy | None = None,
        **fields,
    ):
        if config is not None and fields:
            raise ServingError(
                "pass either a RouterConfig or config fields, not both"
            )
        self.config = config if config is not None else RouterConfig(**fields)
        self.policy = policy if policy is not None else PlacementPolicy()
        self.host = self.config.host
        self.port = self.config.port
        self.backends: list[BackendHandle] = []
        self.spawned: list[SpawnedBackend] = []
        self._server: asyncio.AbstractServer | None = None
        self._probe_tasks: list[asyncio.Task] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._draining = False
        self._drain_task: asyncio.Task | None = None
        self._inflight = 0
        self._pins_open = 0  # streams currently pinned, all connections
        self.stats = {
            "connections": 0,
            "requests": 0,
            "forwards": 0,
            "replays": 0,
            "shed_all": 0,
            "no_backend": 0,
            "errors": 0,
            "disconnects": 0,
            "backends_killed": 0,  # router.backend_down firings
            "stream_opens": 0,
            "stream_pushes": 0,
            "streams_broken": 0,  # pins dropped by backend death
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _handle_for(self, address: str, process=None) -> BackendHandle:
        config = self.config
        return BackendHandle(
            address,
            pool_size=config.pool_size,
            connect_timeout_s=config.connect_timeout_s,
            request_timeout_s=config.request_timeout_s,
            probe_timeout_s=config.probe_timeout_s,
            max_payload=config.max_payload,
            process=process,
        )

    async def start(self) -> "RouterServer":
        """Spawn the local fleet, probe everyone once, open the port."""
        if self._server is not None:
            raise ServingError("router is already started")
        self._loop = asyncio.get_running_loop()
        if self.config.spawn:
            # Blocking on purpose: the listener is not open yet, and the
            # children must be up (banner printed) before the router can
            # honestly announce readiness itself.
            self.spawned = spawn_backends(self.config)
        self.backends = [
            self._handle_for(address) for address in self.config.backends
        ] + [
            self._handle_for(child.address, process=child.process)
            for child in self.spawned
        ]
        # One synchronous probe round so placement knows the fleet's
        # models/health before the first client request arrives.
        await asyncio.gather(
            *(backend.probe() for backend in self.backends),
            return_exceptions=True,
        )
        self._probe_tasks = [
            self._loop.create_task(self._probe_loop(backend))
            for backend in self.backends
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def _probe_loop(self, backend: BackendHandle) -> None:
        while True:
            await asyncio.sleep(self.config.probe_interval_s)
            try:
                await backend.probe()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # defensive: a probe bug must not
                backend.mark_down(f"probe crashed: {exc}")  # kill the loop

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Refuse new work, finish in-flight, drain children, close.

        Safe from a signal handler; idempotent.
        """
        if self._draining or self._loop is None:
            return
        self._draining = True
        self._drain_task = self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        while self._inflight > 0:
            await asyncio.sleep(0.005)
        # In-flight forwards are answered; now drain the fleet we own.
        # Static backends are someone else's lifecycle — never drained.
        for backend in self.backends:
            if backend.process is None:
                continue
            try:
                await backend.request(
                    {"op": "drain"}, timeout_s=self.config.probe_timeout_s
                )
            except ServingError:
                pass  # already down/dead: reaping below still applies
        loop = asyncio.get_running_loop()
        for child in self.spawned:
            try:
                await asyncio.wait_for(
                    loop.run_in_executor(None, child.process.wait), 30.0
                )
            except asyncio.TimeoutError:
                child.terminate()
        if self._server is not None:
            self._server.close()

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled or drained."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Tear everything down: listener, probes, pools, children."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._probe_tasks:
            task.cancel()
        if self._probe_tasks:
            await asyncio.gather(*self._probe_tasks, return_exceptions=True)
        self._probe_tasks = []
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except (asyncio.CancelledError, Exception):
                pass
            self._drain_task = None
        for backend in self.backends:
            await backend.aclose_connections()
        for child in self.spawned:
            child.terminate()

    async def __aenter__(self) -> "RouterServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling (mirrors InferenceServer's loop)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self.stats["connections"] += 1
        # Per-connection streaming context: ``pins`` maps router-issued
        # stream ids to their backend + backend-issued id; ``conns``
        # holds one dedicated relay connection per pinned backend
        # (stream state lives in the *backend's* per-connection
        # registry, so pushes must keep using the same backend
        # connection — the shared forward pools would scatter them).
        ctx = {"pins": {}, "conns": {}, "seq": 0}
        try:
            while True:
                try:
                    header, payload = await read_frame(
                        reader, max_payload=self.config.max_payload
                    )
                except asyncio.IncompleteReadError as exc:
                    if exc.partial:
                        self.stats["disconnects"] += 1
                    break
                except ConnectionError:
                    self.stats["disconnects"] += 1
                    break
                except ServingError as exc:
                    # Malformed/oversized frame: the stream offset is
                    # unrecoverable; answer once and hang up.
                    self.stats["errors"] += 1
                    try:
                        await send_frame(
                            writer, {"status": "error", "message": str(exc)}
                        )
                    except Exception:
                        pass
                    break
                self._inflight += 1
                try:
                    response, out_payload = await self._dispatch(
                        header, payload, ctx
                    )
                    if "id" in header and "id" not in response:
                        response["id"] = header["id"]
                    try:
                        await send_frame(writer, response, out_payload)
                    except (ConnectionError, asyncio.IncompleteReadError):
                        self.stats["disconnects"] += 1
                        break
                finally:
                    self._inflight -= 1
        finally:
            # Closing the relay connections is all the cleanup streams
            # need: each backend's own per-connection registry frees the
            # state when it sees EOF.  The client vanishing mid-stream
            # therefore leaks nothing anywhere.
            self._pins_open -= len(ctx["pins"])
            ctx["pins"].clear()
            for conn in ctx["conns"].values():
                try:
                    conn[1].close()
                except Exception:
                    pass
            ctx["conns"].clear()
            writer.close()
            try:
                await writer.wait_closed()
            except BaseException:
                pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, header: dict, payload: bytes, ctx=None):
        op = header.get("op")
        ctx = {"pins": {}, "conns": {}, "seq": 0} if ctx is None else ctx
        if op == "ping":
            return {"status": "ok", "op": "ping", "router": True}, b""
        if op == "drain":
            self.begin_drain()
            return {"status": "ok", "op": "drain", "draining": True}, b""
        if op == "info":
            return self._info(), b""
        if op == "stream_open":
            if self._draining:
                return (
                    {
                        "status": "error",
                        "code": "server_unavailable",
                        "message": "router is draining and accepts no "
                        "new streams",
                    },
                    b"",
                )
            model = header.get("model")
            precision = header.get("precision")
            if (model is not None and not isinstance(model, str)) or (
                precision is not None and not isinstance(precision, str)
            ):
                return (
                    {
                        "status": "error",
                        "message": "model and precision header fields "
                        "must be strings",
                    },
                    b"",
                )
            return await self._open_stream(ctx, header, model, precision)
        if op == "stream_push":
            if self._draining:
                # The router is going away; pinned backend connections
                # close with it.  Typed so the client breaks the stream
                # instead of retrying in place.
                return (
                    {
                        "status": "error",
                        "code": "server_unavailable",
                        "message": "router is draining; open streams "
                        "are broken",
                    },
                    b"",
                )
            pin = ctx["pins"].get(header.get("stream"))
            if pin is None:
                return (
                    {
                        "status": "error",
                        "message": f"unknown stream "
                        f"{header.get('stream')!r} on this connection",
                    },
                    b"",
                )
            self._maybe_kill_backend()
            forwarded = dict(header)
            forwarded["stream"] = pin["sid"]
            try:
                response, out = await self._relay(
                    ctx, pin["backend"], forwarded, payload
                )
            except ServerUnavailable as exc:
                # The pinned backend died with the push in flight.  The
                # push may or may not have been applied, so replaying it
                # elsewhere is forbidden — and the stream's state died
                # with the backend connection anyway.  _relay already
                # dropped every pin on that backend.
                return (
                    {
                        "status": "error",
                        "code": "server_unavailable",
                        "message": str(exc),
                    },
                    b"",
                )
            if response.get("status") == "ok":
                self.stats["stream_pushes"] += 1
                pin["backend"].stats["forwards"] += 1
            if "stream" in response:
                response["stream"] = header.get("stream")
            return response, out
        if op == "stream_close":
            pin = ctx["pins"].pop(header.get("stream"), None)
            if pin is None:
                return (
                    {
                        "status": "error",
                        "message": f"unknown stream "
                        f"{header.get('stream')!r} on this connection",
                    },
                    b"",
                )
            self._pins_open -= 1
            forwarded = dict(header)
            forwarded["stream"] = pin["sid"]
            try:
                response, out = await self._relay(
                    ctx, pin["backend"], forwarded, payload
                )
            except ServerUnavailable as exc:
                # Backend gone: its registry freed the state when the
                # relay connection died, so the close is moot.
                return (
                    {
                        "status": "error",
                        "code": "server_unavailable",
                        "message": str(exc),
                    },
                    b"",
                )
            if "stream" in response:
                response["stream"] = header.get("stream")
            return response, out
        if op in ("predict", "predict_proba"):
            if self._draining:
                return (
                    {
                        "status": "error",
                        "code": "server_unavailable",
                        "message": "router is draining and accepts no "
                        "new requests",
                    },
                    b"",
                )
            if not payload:
                return (
                    {
                        "status": "error",
                        "message": f"{op} requires an array payload",
                    },
                    b"",
                )
            self.stats["requests"] += 1
            self._maybe_kill_backend()
            model = header.get("model")
            precision = header.get("precision")
            if (model is not None and not isinstance(model, str)) or (
                precision is not None and not isinstance(precision, str)
            ):
                return (
                    {
                        "status": "error",
                        "message": "model and precision header fields "
                        "must be strings",
                    },
                    b"",
                )
            return await self._forward(header, payload, model, precision)
        return {"status": "error", "message": f"unknown op {op!r}"}, b""

    def _maybe_kill_backend(self) -> None:
        """The ``router.backend_down`` fault point: drop one child."""
        if not faults.enabled:
            return
        if faults.take("router.backend_down") is None:
            return
        for child in self.spawned:
            if child.process.poll() is None:
                child.kill()
                self.stats["backends_killed"] += 1
                return

    async def _forward(
        self,
        header: dict,
        payload: bytes,
        model: str | None,
        precision: str | None,
    ):
        """The failover loop: place, forward, and replay on death.

        Predicts are idempotent (pure functions of their rows), so
        replaying on a survivor after a transport failure is safe and
        bitwise-equivalent; the client's stable ``request_id`` rides
        along unchanged on every attempt.
        """
        tried: set[str] = set()
        sheds: list[float | None] = []
        budget = (
            len(self.backends)
            if self.config.max_attempts is None
            else self.config.max_attempts
        )
        while len(tried) < budget:
            candidates = self.policy.candidates(
                self.backends, model, precision, exclude=tried
            )
            if not candidates:
                break
            backend = self.policy.choose(candidates, model, precision)
            tried.add(backend.address)
            if len(tried) > 1:
                self.stats["replays"] += 1
            backend.inflight_rows += _payload_rows_hint(header)
            try:
                response, out = await backend.request(header, payload)
            except ServingError:
                # request() marked the backend down; its sticky routes
                # must re-place instead of chasing a corpse.
                self.policy.forget(backend.address)
                continue
            finally:
                backend.inflight_rows = max(
                    0, backend.inflight_rows - _payload_rows_hint(header)
                )
            if response.get("status") == "ok":
                self.stats["forwards"] += 1
                backend.stats["forwards"] += 1
                return response, out
            code = response.get("code")
            if code == "overloaded":
                sheds.append(response.get("retry_after_ms"))
                continue
            if code == "server_unavailable":
                # Draining (or mid-drain refusal): not an error, just
                # not *this* backend; the probe loop will reclassify it.
                continue
            # Deliberate error (deadline_expired, unknown model, bad
            # frame): relay verbatim, never retry — repeating it on
            # another backend cannot succeed.
            self.stats["errors"] += 1
            return response, out
        return self._unplaceable(sheds, model, precision)

    def _unplaceable(
        self,
        sheds: list,
        model: str | None,
        precision: str | None,
    ):
        """The error frame when no candidate accepted the request."""
        if sheds:
            # Every candidate shed: overloaded fleet-wide.  The honest
            # retry hint is the *max* — capacity returns somewhere only
            # once the slowest-draining backend has drained.
            self.stats["shed_all"] += 1
            hints = [h for h in sheds if h is not None]
            response = {
                "status": "error",
                "code": "overloaded",
                "message": f"all {len(sheds)} candidate backend(s) shed "
                "the request",
            }
            if hints:
                response["retry_after_ms"] = float(max(hints))
            return response, b""
        self.stats["no_backend"] += 1
        routable = [b for b in self.backends if b.routable]
        if routable:
            message = (
                f"no backend serves model={model!r} precision={precision!r}"
            )
            return {"status": "error", "message": message}, b""
        return (
            {
                "status": "error",
                "code": "server_unavailable",
                "message": "no healthy backend available "
                f"({len(self.backends)} known, all down or draining)",
            },
            b"",
        )

    # ------------------------------------------------------------------
    # Streams: pinned relays, no failover
    # ------------------------------------------------------------------
    async def _relay(
        self, ctx: dict, backend, header: dict, payload=b""
    ) -> tuple[dict, bytes]:
        """One round-trip on this connection's dedicated relay.

        Opens the relay connection on first use (one per backend per
        client connection; a client's streams on the same backend share
        it, since the client side is sequential anyway).  A transport
        failure marks the backend down, drops **every** stream this
        connection had pinned there — their state died with the
        backend — and raises
        :class:`~repro.exceptions.ServerUnavailable`.
        """
        conn = ctx["conns"].get(backend.address)
        try:
            if conn is None:
                conn = await backend.open_connection()
                ctx["conns"][backend.address] = conn
            await send_frame(conn[1], header, payload)
            return await asyncio.wait_for(
                read_frame(conn[0], self.config.max_payload),
                self.config.request_timeout_s,
            )
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
        ) as exc:
            backend.mark_down(f"stream relay failed: {exc}")
            self._drop_backend_pins(ctx, backend.address)
            raise ServerUnavailable(
                f"backend {backend.address} died mid-stream: {exc}"
            ) from exc
        except ServerUnavailable:
            # open_connection refused: nothing was pinned over this
            # relay yet that wasn't already dead.
            self._drop_backend_pins(ctx, backend.address)
            raise

    def _drop_backend_pins(self, ctx: dict, address: str) -> None:
        """Forget every stream this connection pinned to ``address``."""
        conn = ctx["conns"].pop(address, None)
        if conn is not None:
            try:
                conn[1].close()
            except Exception:
                pass
        dead = [
            rid
            for rid, pin in ctx["pins"].items()
            if pin["backend"].address == address
        ]
        for rid in dead:
            del ctx["pins"][rid]
        if dead:
            self._pins_open -= len(dead)
            self.stats["streams_broken"] += len(dead)

    async def _open_stream(
        self,
        ctx: dict,
        header: dict,
        model: str | None,
        precision: str | None,
    ):
        """Place and open a stream; pin it to the chosen backend.

        Placement retries other candidates on transport failure or shed
        — safe here and only here, because until the open succeeds the
        stream has no state anywhere.  The backend's stream id is
        rewritten to a router-issued one so ids stay unique per client
        connection regardless of which backend minted them.
        """
        tried: set = set()
        sheds: list = []
        budget = (
            len(self.backends)
            if self.config.max_attempts is None
            else self.config.max_attempts
        )
        while len(tried) < budget:
            candidates = self.policy.candidates(
                self.backends, model, precision, exclude=tried
            )
            if not candidates:
                break
            backend = self.policy.choose(candidates, model, precision)
            tried.add(backend.address)
            try:
                response, out = await self._relay(ctx, backend, header)
            except ServerUnavailable:
                self.policy.forget(backend.address)
                continue
            if response.get("status") == "ok":
                ctx["seq"] += 1
                rid = f"r{ctx['seq']}"
                ctx["pins"][rid] = {
                    "backend": backend,
                    "sid": response.get("stream"),
                }
                self._pins_open += 1
                self.stats["stream_opens"] += 1
                backend.stats["forwards"] += 1
                response["stream"] = rid
                return response, out
            code = response.get("code")
            if code == "overloaded":
                sheds.append(response.get("retry_after_ms"))
                continue
            if code == "server_unavailable":
                continue
            self.stats["errors"] += 1
            return response, out
        return self._unplaceable(sheds, model, precision)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _info(self) -> dict:
        backends = {b.address: b.describe() for b in self.backends}
        states = [b.state for b in self.backends]
        return {
            "status": "ok",
            "op": "info",
            "router": True,
            "config": self.config.describe(),
            "stats": dict(self.stats),
            "health": {
                "draining": self._draining,
                "inflight_requests": self._inflight,
                "backends_total": len(self.backends),
                "backends_routable": sum(
                    1 for b in self.backends if b.routable
                ),
                "states": {
                    state: states.count(state) for state in set(states)
                },
                # Fleet-wide streaming posture: sums over each
                # backend's last-probed ``health.streams`` block, plus
                # the router's own live pin count (fresher than any
                # probe, and the only number that sees streams the
                # router itself is carrying).
                "streams": {
                    "pinned": self._pins_open,
                    "open": sum(
                        int(b.streams.get("open", 0)) for b in self.backends
                    ),
                    "state_bytes": sum(
                        int(b.streams.get("state_bytes", 0))
                        for b in self.backends
                    ),
                    "pushes_per_s": sum(
                        float(b.streams.get("pushes_per_s", 0.0))
                        for b in self.backends
                    ),
                    "opened": self.stats["stream_opens"],
                    "pushes": self.stats["stream_pushes"],
                    "broken": self.stats["streams_broken"],
                },
            },
            "backends": backends,
            # The union routing surface, so a client can discover what
            # the fleet serves without probing backends itself.
            "models": sorted(
                {name for b in self.backends for name in b.models}
            ),
            "precisions": sorted(
                {prec for b in self.backends for prec in b.precisions}
            ),
        }

    def __repr__(self) -> str:
        return (
            f"RouterServer({self.host}:{self.port}, "
            f"backends={len(self.backends)}, draining={self._draining})"
        )


def _payload_rows_hint(header: dict) -> int:
    """Local in-flight load unit: one request ~ its row count when the
    client declared one, else 1 (enough for least-loaded-of-two)."""
    rows = header.get("rows")
    if isinstance(rows, int) and not isinstance(rows, bool) and rows > 0:
        return rows
    return 1
