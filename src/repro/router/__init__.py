"""Multi-node front tier: one router, many engine backends.

The router speaks the exact frame protocol of :mod:`repro.serving` —
existing :class:`~repro.serving.ServeClient` /
:class:`~repro.serving.AsyncServeClient` instances point at a
:class:`RouterServer` instead of a single ``repro serve`` process and
nothing else changes.  Behind the port the router keeps a
health-probed :class:`BackendHandle` per backend, places each request
with a model-aware :class:`PlacementPolicy` (least-loaded-of-two over
healthy candidates), and fails over transparently when a backend dies
mid-request.

Quick start::

    from repro.router import RouterConfig, RouterServer

    config = RouterConfig(backends=("127.0.0.1:7341", "127.0.0.1:7342"))
    async with RouterServer(config) as router:
        await router.serve_forever()

or, from the shell, a self-contained local fleet::

    repro route --spawn 2 --model default=model.npz

See ``docs/router.md`` for topology, placement, failover semantics,
and the drain runbook.
"""

from .backend import DEGRADED, DOWN, DRAINING, HEALTHY, ROUTABLE, BackendHandle
from .config import RouterConfig, parse_address
from .placement import PlacementPolicy
from .server import RouterServer
from .spawn import SpawnedBackend, build_serve_command, spawn_backends

__all__ = [
    "RouterServer",
    "RouterConfig",
    "BackendHandle",
    "PlacementPolicy",
    "SpawnedBackend",
    "spawn_backends",
    "build_serve_command",
    "parse_address",
    "HEALTHY",
    "DEGRADED",
    "DRAINING",
    "DOWN",
    "ROUTABLE",
]
