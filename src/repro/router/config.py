"""Validated configuration for the multi-node front-tier router.

:class:`RouterConfig` is the router-tier sibling of
:class:`~repro.engine.EngineConfig`: a frozen, fully-validated,
declarative description of *which backends exist* and *how the router
treats them*.  Two backend sources, combinable:

* ``backends`` — static ``"host:port"`` addresses of already-running
  ``repro serve`` processes (any host, any orchestration),
* ``spawn`` + ``models`` — a local fleet: the router launches ``spawn``
  child ``repro serve`` processes itself (each serving every model in
  ``models`` on an ephemeral port) and owns their lifecycle, including
  drain fan-out and exit reaping.

Everything is validated at construction so a typo'd address or an
empty fleet fails before any socket is opened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import ConfigurationError
from ..serving.protocol import DEFAULT_MAX_PAYLOAD

__all__ = ["RouterConfig", "parse_address"]


def parse_address(spec: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``, validated.

    The port must be the text after the *last* colon so bracketed IPv6
    literals (``[::1]:7341``) parse too.
    """
    if not isinstance(spec, str) or ":" not in spec:
        raise ConfigurationError(
            f"backend address must look like host:port, got {spec!r}"
        )
    host, _, port_text = spec.rpartition(":")
    host = host.strip().strip("[]")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"backend address {spec!r} has a non-integer port"
        ) from None
    if not host:
        raise ConfigurationError(f"backend address {spec!r} has an empty host")
    if not 0 < port < 65536:
        raise ConfigurationError(
            f"backend address {spec!r} port must be in 1..65535"
        )
    return host, port


@dataclass(frozen=True)
class RouterConfig:
    """What the router fronts and how it steers.

    Parameters
    ----------
    backends:
        Static backend addresses (``"host:port"`` strings).  May be
        empty when ``spawn`` > 0.
    spawn:
        Number of local ``repro serve`` child processes to launch and
        own.  Requires ``models``.
    models:
        ``name -> artifact path`` registry passed to every spawned
        child (``repro serve --model name=path`` per entry).  Only
        meaningful with ``spawn`` > 0.
    spawn_precisions:
        Precision pool for spawned children (``--precisions``);
        ``None`` leaves the child's default (fp64).
    spawn_args:
        Extra CLI arguments appended verbatim to each child's
        ``repro serve`` command line (executor, batching knobs, ...).
    host, port:
        The router's own listen address; ``port=0`` binds ephemeral.
    probe_interval_s:
        Seconds between health probes per backend (the ``info`` op).
    probe_timeout_s:
        Per-probe timeout; a probe that exceeds it marks the backend
        ``down`` until a later probe succeeds.
    connect_timeout_s, request_timeout_s:
        Transport timeouts for backend connections and forwarded
        requests.
    pool_size:
        Idle persistent connections kept per backend (forwarding opens
        extra connections under burst and discards them back down to
        this bound).
    max_attempts:
        Distinct backends tried per predict before giving up; ``None``
        means every routable candidate.
    max_payload:
        Inbound frame payload bound, both client->router and
        router<-backend.
    """

    backends: tuple[str, ...] = ()
    spawn: int = 0
    models: dict[str, str] = field(default_factory=dict)
    spawn_precisions: tuple[str, ...] | None = None
    spawn_args: tuple[str, ...] = ()
    host: str = "127.0.0.1"
    port: int = 0
    probe_interval_s: float = 0.5
    probe_timeout_s: float = 2.0
    connect_timeout_s: float = 5.0
    request_timeout_s: float = 60.0
    pool_size: int = 2
    max_attempts: int | None = None
    max_payload: int = DEFAULT_MAX_PAYLOAD

    def __post_init__(self):
        if isinstance(self.backends, (list, str)):
            # Tolerate a list (and reject a bare string, which would
            # iterate per character into nonsense addresses).
            if isinstance(self.backends, str):
                raise ConfigurationError(
                    "backends must be a sequence of host:port strings, "
                    f"got the single string {self.backends!r}"
                )
            object.__setattr__(self, "backends", tuple(self.backends))
        for spec in self.backends:
            parse_address(spec)  # raises on malformed entries
        if len(set(self.backends)) != len(self.backends):
            raise ConfigurationError(
                f"duplicate backend addresses in {self.backends}"
            )
        if not isinstance(self.spawn, int) or isinstance(self.spawn, bool):
            raise ConfigurationError(f"spawn must be an int, got {self.spawn!r}")
        if self.spawn < 0:
            raise ConfigurationError(f"spawn must be >= 0, got {self.spawn}")
        if self.spawn and not self.models:
            raise ConfigurationError(
                "spawn > 0 needs a model registry (models={'name': 'path'})"
            )
        if self.models and not self.spawn:
            raise ConfigurationError(
                "models is only meaningful with spawn > 0; static backends "
                "advertise their own registries over the info op"
            )
        for name, path in self.models.items():
            if not name or not isinstance(name, str):
                raise ConfigurationError(
                    f"model names must be non-empty strings, got {name!r}"
                )
            if not isinstance(path, (str, Path)):
                raise ConfigurationError(
                    f"model {name!r} path must be a string or Path, "
                    f"got {type(path).__name__}"
                )
        if not self.backends and not self.spawn:
            raise ConfigurationError(
                "router needs at least one backend: pass backends=('host:port',) "
                "and/or spawn=N with a model registry"
            )
        if self.spawn_precisions is not None:
            object.__setattr__(
                self, "spawn_precisions", tuple(self.spawn_precisions)
            )
            if not self.spawn_precisions:
                raise ConfigurationError(
                    "spawn_precisions must name at least one precision "
                    "(or be None)"
                )
        object.__setattr__(self, "spawn_args", tuple(self.spawn_args))
        for arg in self.spawn_args:
            if not isinstance(arg, str):
                raise ConfigurationError(
                    f"spawn_args entries must be strings, got {arg!r}"
                )
        for name, value, low in (
            ("probe_interval_s", self.probe_interval_s, 0.0),
            ("probe_timeout_s", self.probe_timeout_s, 0.0),
            ("connect_timeout_s", self.connect_timeout_s, 0.0),
            ("request_timeout_s", self.request_timeout_s, 0.0),
        ):
            if not isinstance(value, (int, float)) or value <= low:
                raise ConfigurationError(
                    f"{name} must be a positive number, got {value!r}"
                )
        if not isinstance(self.pool_size, int) or self.pool_size < 1:
            raise ConfigurationError(
                f"pool_size must be >= 1, got {self.pool_size!r}"
            )
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1 or None, got {self.max_attempts}"
            )
        if self.max_payload < 1:
            raise ConfigurationError(
                f"max_payload must be >= 1, got {self.max_payload}"
            )

    def describe(self) -> dict:
        """JSON-able snapshot (the router's ``info`` op embeds this)."""
        return {
            "backends": list(self.backends),
            "spawn": self.spawn,
            "models": {name: str(path) for name, path in self.models.items()},
            "spawn_precisions": (
                None
                if self.spawn_precisions is None
                else list(self.spawn_precisions)
            ),
            "probe_interval_s": self.probe_interval_s,
            "probe_timeout_s": self.probe_timeout_s,
            "pool_size": self.pool_size,
            "max_attempts": self.max_attempts,
        }
