"""Model-aware, health-aware backend placement.

The policy answers one question per request: *which backend gets these
rows?*  It composes three signals, all read off
:class:`~repro.router.backend.BackendHandle` state that the probe loop
and the forward path keep fresh:

1. **Routability** — only backends in a routable state (``healthy`` or
   ``degraded``) that advertise the requested ``(model, precision)``
   are candidates; degraded backends are used only when no healthy
   backend serves the route (they answer correctly, just slower).
2. **Least-loaded-of-two** — with several candidates, two are sampled
   at random and the one with the lower :meth:`load` wins.  The classic
   power-of-two-choices result: near-optimal balancing from two reads,
   no global scan, no herd behavior when every router sees the same
   stale snapshot.
3. **Sticky fallback** — ties (including the common cold-start case
   where no probe has measured anything yet, so every load is 0) go to
   the backend that last served this route.  Stickiness keeps a warm
   connection pool and a warm micro-batcher on the other side instead
   of round-robining cold.

The policy is pure and synchronous; randomness comes from an
injectable :class:`random.Random` so tests drive it deterministically.
"""

from __future__ import annotations

import random
from typing import Sequence

from .backend import DEGRADED, HEALTHY, BackendHandle

__all__ = ["PlacementPolicy"]


class PlacementPolicy:
    """Pick a backend for a route; remember the pick per route."""

    def __init__(self, rng: random.Random | None = None):
        self._rng = rng if rng is not None else random.Random()
        self._sticky: dict[tuple[str | None, str | None], str] = {}

    def candidates(
        self,
        backends: Sequence[BackendHandle],
        model: str | None = None,
        precision: str | None = None,
        exclude: frozenset | set | None = None,
    ) -> list[BackendHandle]:
        """Routable backends advertising the route, healthy ones first.

        Degraded backends appear only when no healthy backend serves
        the route; ``exclude`` removes addresses already tried in this
        request's failover loop.
        """
        exclude = exclude or frozenset()
        healthy = []
        degraded = []
        for backend in backends:
            if backend.address in exclude:
                continue
            if not backend.advertises(model, precision):
                continue
            if backend.state == HEALTHY:
                healthy.append(backend)
            elif backend.state == DEGRADED:
                degraded.append(backend)
        return healthy if healthy else degraded

    def choose(
        self,
        candidates: Sequence[BackendHandle],
        model: str | None = None,
        precision: str | None = None,
    ) -> BackendHandle:
        """Least-loaded-of-two with sticky tie-breaking.

        ``candidates`` must be non-empty (the router checks first and
        maps emptiness to its all-down / all-shedding error paths).
        """
        if not candidates:
            raise ValueError("choose() needs at least one candidate")
        route = (model, precision)
        if len(candidates) == 1:
            pick = candidates[0]
        else:
            first, second = self._rng.sample(list(candidates), 2)
            if first.load() < second.load():
                pick = first
            elif second.load() < first.load():
                pick = second
            else:
                # Tie: prefer the sticky backend when it is one of the
                # pair; otherwise the first sample is as good as any.
                sticky = self._sticky.get(route)
                pick = second if second.address == sticky else first
        self._sticky[route] = pick.address
        return pick

    def sticky_for(self, model: str | None, precision: str | None) -> str | None:
        """Address that last served the route (``None`` before traffic)."""
        return self._sticky.get((model, precision))

    def forget(self, address: str) -> None:
        """Drop stickiness to a backend (it went down)."""
        self._sticky = {
            route: addr
            for route, addr in self._sticky.items()
            if addr != address
        }
