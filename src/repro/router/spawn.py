"""Launching a local backend fleet: ``repro serve`` child processes.

The router's ``spawn`` mode turns one machine into a multi-process
deployment: each child is a full ``repro serve`` engine process bound
to an ephemeral port, announced by the shared ready banner
(:func:`repro.serving.protocol.parse_banner` — the same contract every
smoke script waits on).  The router owns the children: it fans
``drain`` out to them on shutdown, reaps their exit codes, and kills
whatever is left if a drain never completes.
"""

from __future__ import annotations

import os
import selectors
import subprocess
import sys
import time

from ..exceptions import ConfigurationError
from ..serving.protocol import parse_banner
from .config import RouterConfig

__all__ = ["SpawnedBackend", "spawn_backends", "build_serve_command"]

#: Seconds a child gets to print its ready banner before spawning fails.
BANNER_TIMEOUT_S = 60.0


class SpawnedBackend:
    """One launched ``repro serve`` child: its process and its address."""

    def __init__(self, process: subprocess.Popen, host: str, port: int):
        self.process = process
        self.host = host
        self.port = port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def kill(self) -> None:
        """SIGKILL the child (the ``router.backend_down`` fault path)."""
        if self.process.poll() is None:
            self.process.kill()

    def terminate(self, timeout_s: float = 10.0) -> int | None:
        """Best-effort stop: terminate, wait, then kill; exit code."""
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=5.0)
        return self.process.poll()


def build_serve_command(config: RouterConfig) -> list[str]:
    """The child command line: every model, ephemeral port, extras."""
    command = [sys.executable, "-m", "repro", "serve", "--port", "0"]
    for name, path in config.models.items():
        command += ["--model", f"{name}={path}"]
    if config.spawn_precisions is not None:
        command += ["--precisions", ",".join(config.spawn_precisions)]
    command += list(config.spawn_args)
    return command


def _await_banner(proc: subprocess.Popen, timeout_s: float) -> tuple[str, int]:
    """Read the child's stdout until the ready banner (or fail loudly)."""
    selector = selectors.DefaultSelector()
    selector.register(proc.stdout, selectors.EVENT_READ)
    deadline = time.monotonic() + timeout_s
    try:
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not selector.select(timeout=remaining):
                raise ConfigurationError(
                    "spawned backend did not print its ready banner "
                    f"within {timeout_s:.0f}s"
                )
            line = proc.stdout.readline()
            if not line:
                raise ConfigurationError(
                    "spawned backend exited before announcing its port "
                    f"(exit code {proc.poll()})"
                )
            parsed = parse_banner(line)
            if parsed is not None:
                return parsed
    finally:
        selector.close()


def spawn_backends(
    config: RouterConfig, env: dict | None = None
) -> list[SpawnedBackend]:
    """Launch ``config.spawn`` children; wait for every ready banner.

    On any failure the children already launched are terminated before
    the error propagates — a half-spawned fleet never leaks.  ``env``
    extends (not replaces) the inherited environment; ``REPRO_FAULTS``
    is stripped from the children so faults armed at the *router* tier
    (e.g. ``router.backend_down``) do not also arm inside every
    backend.
    """
    child_env = dict(os.environ)
    child_env.pop("REPRO_FAULTS", None)
    if env:
        child_env.update(env)
    command = build_serve_command(config)
    spawned: list[SpawnedBackend] = []
    try:
        for _ in range(config.spawn):
            proc = subprocess.Popen(
                command,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
                env=child_env,
            )
            host, port = _await_banner(proc, BANNER_TIMEOUT_S)
            spawned.append(SpawnedBackend(proc, host, port))
    except BaseException:
        for backend in spawned:
            backend.terminate(timeout_s=5.0)
        raise
    return spawned
