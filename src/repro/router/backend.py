"""Per-backend state for the front-tier router.

A :class:`BackendHandle` is the router's whole view of one engine
process: a small pool of persistent frame-protocol connections, a
health state machine fed by periodic ``info`` probes, and the capacity
numbers the placement policy steers by (queued-row depth, shed
counters, fused-batch-latency EMA — exactly the fields the single-node
admission layer already maintains and exposes through ``info.health``).

States
------

========== ==========================================================
healthy    last probe answered, not draining, executor not degraded
degraded   answering, but the backend reports a degraded executor
           (fork pool fell back to serial) — routable, deprioritized
draining   answering, but refusing new work (``health.draining``) —
           never routed to
down       probe or forward failed (connect refused, timeout, died
           mid-frame) — never routed to, revived by the next
           successful probe
========== ==========================================================

Forward-path failures flip the state to ``down`` immediately (the
probe loop would take up to a probe interval to notice); a successful
probe — or a successful forward — flips it back.
"""

from __future__ import annotations

import asyncio

from ..exceptions import ServerUnavailable
from .config import parse_address

__all__ = ["BackendHandle", "HEALTHY", "DEGRADED", "DRAINING", "DOWN"]

HEALTHY = "healthy"
DEGRADED = "degraded"
DRAINING = "draining"
DOWN = "down"

#: States the placement policy may route new work to.
ROUTABLE = (HEALTHY, DEGRADED)


class BackendHandle:
    """One backend engine process: connections, health, capacity.

    Parameters
    ----------
    address:
        ``"host:port"`` of the backend's ``repro serve`` listener.
    pool_size:
        Idle connections kept warm; forwarding opens extra connections
        under burst and closes them back down to this bound.
    connect_timeout_s, request_timeout_s, probe_timeout_s:
        Transport bounds (see :class:`~repro.router.RouterConfig`).
    max_payload:
        Response frame payload bound.
    process:
        The :class:`subprocess.Popen` of a *spawned* backend; ``None``
        for static backends.  Spawned backends get drain fan-out and
        exit reaping from the router's lifecycle.
    """

    def __init__(
        self,
        address: str,
        pool_size: int = 2,
        connect_timeout_s: float = 5.0,
        request_timeout_s: float = 60.0,
        probe_timeout_s: float = 2.0,
        max_payload: int | None = None,
        process=None,
    ):
        from ..serving.protocol import DEFAULT_MAX_PAYLOAD

        self.address = address
        self.host, self.port = parse_address(address)
        self.pool_size = pool_size
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self.probe_timeout_s = probe_timeout_s
        self.max_payload = (
            DEFAULT_MAX_PAYLOAD if max_payload is None else max_payload
        )
        self.process = process
        self.state = DOWN  # unknown until the first probe succeeds
        self.last_error: str | None = None
        #: Routing surface from the last successful probe.
        self.models: tuple[str, ...] = ()
        self.precisions: tuple[str, ...] = ()
        #: Capacity snapshot from the last successful probe.
        self.queued_rows = 0
        self.batch_ms_ema = 0.0
        self.shed = 0
        self.probes = 0
        #: Streaming posture from the last successful probe
        #: (``health.streams`` of the backend's ``info``); empty until a
        #: streaming-aware backend answers.
        self.streams: dict = {}
        #: Rows forwarded by this router and not yet answered — the
        #: fresh half of the load signal (probe numbers go stale
        #: between probe intervals; local in-flight never does).
        self.inflight_rows = 0
        self.stats = {"forwards": 0, "failures": 0, "probes_failed": 0}
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _open(self):
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                self.connect_timeout_s,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServerUnavailable(
                f"cannot connect to backend {self.address}: {exc}"
            ) from exc

    async def open_connection(self):
        """A fresh, caller-owned connection, outside the pool.

        The router's stream relays use this: a pinned stream must keep
        one backend connection for its whole life (the backend's stream
        registry is per-connection), which the shared forward pool
        cannot promise.
        """
        return await self._open()

    async def _acquire(self):
        if self._idle:
            return self._idle.pop()
        return await self._open()

    def _release(self, conn) -> None:
        reader, writer = conn
        if len(self._idle) < self.pool_size and not reader.at_eof():
            self._idle.append(conn)
        else:
            writer.close()

    def _discard(self, conn) -> None:
        try:
            conn[1].close()
        except Exception:
            pass

    def close_connections(self) -> None:
        """Drop every idle pooled connection (state is untouched)."""
        idle, self._idle = self._idle, []
        for conn in idle:
            self._discard(conn)

    async def aclose_connections(self) -> None:
        """Close the pool and wait for each close handshake to flush.

        Fire-and-forget ``writer.close()`` is fine mid-flight (the
        backend sees EOF on its next loop tick), but at teardown the
        event loop may die before the FIN is even sent — leaving the
        backend's handler task to be cancelled inside ``readexactly``,
        which Python 3.11's streams log as a spurious traceback.
        Awaiting ``wait_closed`` keeps shutdown silent.
        """
        idle, self._idle = self._idle, []
        for _, writer in idle:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def request(
        self, header: dict, payload=b"", timeout_s: float | None = None
    ) -> tuple[dict, bytes]:
        """One frame round-trip on a pooled connection.

        Returns the raw response ``(header, payload)`` — error frames
        are *not* raised here; the router's failover logic interprets
        them (it must forward deliberate errors verbatim and only
        retry the retryable ones).  Transport failures raise
        :class:`~repro.exceptions.ServerUnavailable` after marking the
        backend down.
        """
        from ..serving.protocol import read_frame, send_frame

        timeout = self.request_timeout_s if timeout_s is None else timeout_s
        conn = await self._acquire()
        try:
            await send_frame(conn[1], header, payload)
            response = await asyncio.wait_for(
                read_frame(conn[0], self.max_payload), timeout
            )
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            ServerUnavailable,
        ) as exc:
            self._discard(conn)
            self.mark_down(f"request failed: {exc}")
            raise ServerUnavailable(
                f"backend {self.address} failed mid-request: {exc}"
            ) from exc
        self._release(conn)
        return response

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def mark_down(self, reason: str) -> None:
        """Forward-path failure: stop routing here until a probe revives."""
        self.state = DOWN
        self.last_error = reason
        self.stats["failures"] += 1
        self.close_connections()

    async def probe(self) -> str:
        """One ``info`` round-trip; updates state + capacity; returns state."""
        self.probes += 1
        try:
            header, _ = await self.request(
                {"op": "info"}, timeout_s=self.probe_timeout_s
            )
        except ServerUnavailable:
            # request() already marked us down and recorded the reason.
            self.stats["probes_failed"] += 1
            return self.state
        if header.get("status") != "ok":
            self.stats["probes_failed"] += 1
            self.mark_down(f"info answered {header.get('message', header)!r}")
            return self.state
        self.last_error = None
        self.models = tuple(header.get("models", ()))
        self.precisions = tuple(header.get("precisions", ()))
        health = header.get("health", {})
        self.queued_rows = int(health.get("queued_rows", 0))
        self.batch_ms_ema = float(health.get("batch_ms_ema", 0.0))
        self.shed = int(health.get("shed", 0))
        streams = health.get("streams")
        self.streams = dict(streams) if isinstance(streams, dict) else {}
        if health.get("draining"):
            self.state = DRAINING
        elif health.get("degraded"):
            self.state = DEGRADED
        else:
            self.state = HEALTHY
        return self.state

    # ------------------------------------------------------------------
    # Placement surface
    # ------------------------------------------------------------------
    @property
    def routable(self) -> bool:
        return self.state in ROUTABLE

    def advertises(self, model: str | None, precision: str | None) -> bool:
        """Does this backend serve the requested route?

        ``None`` matches (the backend applies its own default); a named
        model/precision must appear in the last probe's advertisement.
        A backend that was never successfully probed advertises
        nothing, so it is only reachable once its health is known.
        """
        if model is not None and model not in self.models:
            return False
        if precision is not None and precision not in self.precisions:
            return False
        return True

    def load(self) -> float:
        """The placement metric: rows ahead of a new request, in rows.

        Local in-flight rows (always fresh) plus the probe's queued-row
        snapshot, weighted so a backend with a slower fused-batch EMA
        looks proportionally fuller than one draining the same depth
        faster.
        """
        depth = self.inflight_rows + self.queued_rows
        # 1 + ema/100: a 0 ms EMA (unmeasured) weighs depth alone; a
        # 100 ms-per-batch backend counts its depth double.
        return depth * (1.0 + self.batch_ms_ema / 100.0)

    def describe(self) -> dict:
        """JSON-able snapshot for the router's aggregated ``info`` op."""
        info = {
            "address": self.address,
            "state": self.state,
            "models": list(self.models),
            "precisions": list(self.precisions),
            "queued_rows": self.queued_rows,
            "inflight_rows": self.inflight_rows,
            "batch_ms_ema": self.batch_ms_ema,
            "shed": self.shed,
            "streams": dict(self.streams),
            "load": self.load(),
            "probes": self.probes,
            "stats": dict(self.stats),
            "last_error": self.last_error,
            "spawned": self.process is not None,
        }
        if self.process is not None:
            info["pid"] = self.process.pid
            info["exited"] = self.process.poll()
        return info

    def __repr__(self) -> str:
        return (
            f"BackendHandle({self.address}, state={self.state}, "
            f"load={self.load():.1f})"
        )
