"""repro — reproduction of "FFT-Based Deep Learning Deployment in
Embedded Systems" (Lin et al., DATE 2018).

Subpackages:

* :mod:`repro.fft` — the FFT computing kernel (Cooley-Tukey, Bluestein,
  circular convolution),
* :mod:`repro.structured` — circulant / block-circulant / Toeplitz
  matrix algebra,
* :mod:`repro.nn` — autograd, layers (including the paper's
  block-circulant FC and CONV layers), losses, optimizers, trainer,
* :mod:`repro.data` — synthetic MNIST / CIFAR-10 stand-ins and transforms,
* :mod:`repro.io` — architecture / parameters / inputs parsers (Fig. 4),
* :mod:`repro.embedded` — platform specs (Table I), cost + runtime models
  (Tables II-III), and the FFT-domain deployment engine,
* :mod:`repro.analysis` — complexity / storage analysis and the
  TrueNorth comparison (Fig. 5),
* :mod:`repro.quantize` — fixed-point weight quantization extension,
* :mod:`repro.runtime` — the frozen inference runtime
  (:class:`~repro.runtime.InferenceSession`: flat op plan, precomputed
  spectra, fused bias+activation, batched streaming predict, pluggable
  :class:`~repro.runtime.PlanExecutor` strategies including the
  multi-process :class:`~repro.runtime.ShardedExecutor`),
* :mod:`repro.precision` — :class:`~repro.precision.PrecisionPolicy`,
  the fp64/fp32 dtype policy threaded through fft, structured, runtime
  and embedded,
* :mod:`repro.engine` — the declarative inference facade
  (:class:`~repro.engine.Engine` over a validated
  :class:`~repro.engine.EngineConfig`): multi-model registry, a
  lazily-frozen per-precision session pool, typed
  request/result API, and the single entry point to serving,
* :mod:`repro.pipeline` — the declarative build pipeline
  (:class:`~repro.pipeline.Pipeline` over a validated
  :class:`~repro.pipeline.PipelineConfig`): train → compress →
  quantize → package with typed, resumable stages producing the
  format-v2 artifact the engine consumes,
* :mod:`repro.zoo` — the paper's Arch. 1 / Arch. 2 / Arch. 3 builders,
  name-keyed via :func:`repro.zoo.get` / :func:`repro.zoo.names`.
"""

__version__ = "1.1.0"

from . import (
    analysis,
    data,
    embedded,
    engine,
    fft,
    io,
    nn,
    pipeline,
    quantize,
    runtime,
    structured,
    zoo,
)
from .engine import Engine, EngineConfig, InferenceRequest, InferenceResult
from .pipeline import Pipeline, PipelineConfig
from .precision import FP32, FP64, PrecisionPolicy
from .exceptions import (
    BackendError,
    ConfigurationError,
    DeploymentError,
    ParseError,
    PipelineError,
    ReproError,
    ShapeError,
)

__all__ = [
    "fft",
    "structured",
    "nn",
    "data",
    "io",
    "embedded",
    "analysis",
    "quantize",
    "runtime",
    "engine",
    "pipeline",
    "zoo",
    "Engine",
    "EngineConfig",
    "InferenceRequest",
    "InferenceResult",
    "Pipeline",
    "PipelineConfig",
    "PrecisionPolicy",
    "FP32",
    "FP64",
    "ReproError",
    "ShapeError",
    "BackendError",
    "ParseError",
    "DeploymentError",
    "ConfigurationError",
    "PipelineError",
    "__version__",
]
