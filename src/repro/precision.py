"""Numeric precision policies for the inference stack.

The paper targets memory- and bandwidth-constrained embedded devices,
where the ~1e-7 relative accuracy of single precision is plenty for the
FFT-domain inference engine (section IV-A) while halving every spectrum
and activation buffer.  A :class:`PrecisionPolicy` names one coherent
choice of real/complex dtypes and is threaded through the whole
execution stack:

* :mod:`repro.fft` — all four transforms follow their input dtype, and
  the pure backend's kernels (radix-2 butterflies, Bluestein chirps,
  packed rfft/irfft) run natively in ``complex64`` for single-precision
  input instead of widening to ``complex128``,
* :class:`repro.structured.spectral.SpectrumCache` — weight spectra are
  cached per complex dtype so fp32 and fp64 sessions never share an
  array of the wrong precision,
* :mod:`repro.runtime` — plans compile every weight, bias and work
  buffer at the policy's dtypes, so an fp32 session touches no float64
  on the hot path,
* :mod:`repro.embedded` — memory estimates report the halved complex64
  spectrum footprint.

Two policies exist: ``"fp64"`` (float64 / complex128, the default and
the reference numerics) and ``"fp32"`` (float32 / complex64).  Every
public entry point accepts either a name or a policy object via
:meth:`PrecisionPolicy.resolve`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PrecisionPolicy", "FP32", "FP64"]


@dataclass(frozen=True)
class PrecisionPolicy:
    """One coherent choice of real/complex dtypes for inference.

    Attributes
    ----------
    name:
        ``"fp64"`` or ``"fp32"``.
    real_dtype:
        dtype of activations, weights and biases (float64 / float32).
    complex_dtype:
        dtype of FFT spectra (complex128 / complex64).
    """

    name: str
    real_dtype: np.dtype
    complex_dtype: np.dtype

    @classmethod
    def resolve(
        cls, spec: "str | PrecisionPolicy | None"
    ) -> "PrecisionPolicy":
        """Normalize ``spec`` to a policy.

        Accepts a policy instance (returned as-is), one of the names
        ``"fp64"`` / ``"fp32"``, or ``None`` (the fp64 default).
        """
        if spec is None:
            return FP64
        if isinstance(spec, cls):
            return spec
        try:
            return _POLICIES[spec]
        except (KeyError, TypeError):
            raise ValueError(
                f"unknown precision {spec!r}; expected one of "
                f"{tuple(_POLICIES)} or a PrecisionPolicy"
            ) from None

    @property
    def complex_itemsize(self) -> int:
        """Bytes per spectrum bin (16 for fp64, 8 for fp32)."""
        return np.dtype(self.complex_dtype).itemsize

    @property
    def real_itemsize(self) -> int:
        """Bytes per real element (8 for fp64, 4 for fp32)."""
        return np.dtype(self.real_dtype).itemsize

    def __str__(self) -> str:
        return self.name


FP64 = PrecisionPolicy("fp64", np.dtype(np.float64), np.dtype(np.complex128))
FP32 = PrecisionPolicy("fp32", np.dtype(np.float32), np.dtype(np.complex64))

_POLICIES = {"fp64": FP64, "fp32": FP32}
