"""Deliberate fault injection for the serving and runtime layers.

Correctness claims about fault tolerance are hollow unless the faults
actually happen, so the production code exposes *fault points* — named
hooks that do nothing until a test (or an operator, via the
``REPRO_FAULTS`` environment variable) arms them.  The disarmed cost is
one module-attribute check (``faults.enabled``), so the hooks stay in
the hot path permanently.

Arming::

    from repro.testing import faults

    faults.arm("worker.kill")                 # fire once, then disarm
    faults.arm("worker.delay", times=3, seconds=0.05)
    faults.arm("admission.shed", times=None)  # unlimited budget
    ...
    faults.reset()                            # always reset in teardown

Fault points consume their budget atomically across *processes*: the
budget lives in a :class:`multiprocessing.Value`, so a fork-pool worker
that inherits an armed fault decrements the same counter the parent
(and its sibling workers) see — ``times=1`` kills exactly one worker,
no matter how many inherited the arming.  Arm **before** the pool
forks; workers forked earlier never see the fault.

Known fault points (the hook sites interpret the params):

=========================  ==================================================
``worker.kill``            a pool worker SIGKILLs itself at task start
``worker.hang``            a pool worker sleeps ``seconds`` (default 3600)
                           at task start — a dropped result frame; the
                           parent's ``task_timeout`` must recover
``worker.delay``           a pool worker sleeps ``seconds`` (default 0.05)
                           before running — a delayed result frame
``server.corrupt_payload``  the server flips the leading bytes of an
                           inbound request payload before decoding it
``server.drop_connection``  the server closes the connection instead of
                           sending the response frame
``server.delay_response``  the server sleeps ``seconds`` (default 0.05)
                           before sending the response frame
``admission.shed``         admission control sheds the request as
                           ``overloaded`` regardless of actual capacity
                           (params: ``retry_after_ms``)
``router.backend_down``    the front-tier router SIGKILLs one of its
                           *spawned* backend engine processes at the next
                           predict dispatch — a node dying mid-traffic;
                           the router must fail over and replay on the
                           survivors (no-op on routers with only static
                           backends)
=========================  ==================================================

Subprocess servers arm from the environment: ``repro serve`` calls
:func:`arm_from_env` when ``REPRO_FAULTS`` is set, e.g. ::

    REPRO_FAULTS="worker.kill*3;server.delay_response:seconds=0.02"

(``point[*times][:key=val[,key=val...]]`` entries separated by ``;``;
``*0`` or ``*inf`` arm an unlimited budget).
"""

from __future__ import annotations

import multiprocessing
import os

__all__ = [
    "enabled",
    "arm",
    "arm_from_env",
    "disarm",
    "reset",
    "take",
    "is_armed",
    "fired",
    "describe",
]

#: Fast-path guard: hook sites check this before anything else, so the
#: disarmed overhead is a single attribute lookup.
enabled = False


class Fault:
    """One armed fault point: a firing budget plus free-form params.

    ``times=None`` means unlimited.  Budget and fired counters are
    :class:`multiprocessing.Value` instances so forked pool workers
    share them with the parent (see module docstring).
    """

    def __init__(self, point: str, times: int | None, params: dict):
        self.point = point
        self.params = dict(params)
        self.times = times
        # 'l' leaves room for large budgets; -1 encodes "unlimited".
        self._budget = multiprocessing.Value("l", -1 if times is None else times)
        self._fired = multiprocessing.Value("l", 0)

    def take(self) -> bool:
        """Consume one firing; False once the budget is spent."""
        with self._budget.get_lock():
            if self._budget.value == 0:
                return False
            if self._budget.value > 0:
                self._budget.value -= 1
            self._fired.value += 1
            return True

    @property
    def fired(self) -> int:
        """How many times this fault fired (across all processes)."""
        return int(self._fired.value)

    @property
    def remaining(self) -> int | None:
        value = int(self._budget.value)
        return None if value < 0 else value

    def __repr__(self) -> str:
        return (
            f"Fault({self.point!r}, times={self.times}, "
            f"fired={self.fired}, params={self.params})"
        )


_armed: dict[str, Fault] = {}


def arm(point: str, times: int | None = 1, **params) -> Fault:
    """Arm ``point`` to fire ``times`` times (``None`` = unlimited).

    Re-arming a point replaces its previous arming.  Returns the
    :class:`Fault`, whose ``fired`` counter tests can assert on.
    """
    if times is not None and times < 0:
        raise ValueError(f"times must be >= 0 or None, got {times}")
    global enabled
    fault = Fault(point, times, params)
    _armed[point] = fault
    enabled = True
    return fault


def disarm(point: str) -> None:
    """Remove one armed point (missing points are a no-op)."""
    global enabled
    _armed.pop(point, None)
    if not _armed:
        enabled = False


def reset() -> None:
    """Disarm everything; tests call this in teardown."""
    global enabled
    _armed.clear()
    enabled = False


def take(point: str, **defaults) -> dict | None:
    """Consume one firing of ``point``; its params dict, or ``None``.

    The returned dict is ``{**defaults, **armed params}`` so hook sites
    spell their fallbacks inline::

        hang = faults.take("worker.hang", seconds=3600.0)
        if hang is not None:
            time.sleep(float(hang["seconds"]))
    """
    if not enabled:
        return None
    fault = _armed.get(point)
    if fault is None or not fault.take():
        return None
    return {**defaults, **fault.params}


def is_armed(point: str) -> bool:
    """Is ``point`` armed with budget remaining?"""
    fault = _armed.get(point)
    return fault is not None and fault.remaining != 0


def fired(point: str) -> int:
    """How many times ``point`` has fired (0 when never armed)."""
    fault = _armed.get(point)
    return 0 if fault is None else fault.fired


def describe() -> dict:
    """JSON-able snapshot of the armed points (server ``info``, tests)."""
    return {
        point: {
            "times": fault.times,
            "remaining": fault.remaining,
            "fired": fault.fired,
            "params": dict(fault.params),
        }
        for point, fault in _armed.items()
    }


def _parse_value(raw: str):
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def arm_from_env(spec: str | None = None) -> list[Fault]:
    """Arm faults from a spec string (default: ``$REPRO_FAULTS``).

    Format: ``point[*times][:key=val[,key=val...]]`` entries joined by
    ``;``.  ``times`` defaults to 1; ``*0`` or ``*inf`` mean unlimited.
    Returns the armed faults (empty list when the spec is empty/unset).
    """
    if spec is None:
        spec = os.environ.get("REPRO_FAULTS", "")
    armed = []
    for entry in spec.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        head, _, param_part = entry.partition(":")
        point, _, times_part = head.partition("*")
        point = point.strip()
        if not point:
            raise ValueError(f"malformed REPRO_FAULTS entry {entry!r}")
        times: int | None = 1
        if times_part:
            times = None if times_part in ("0", "inf") else int(times_part)
        params = {}
        for pair in param_part.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, value = pair.partition("=")
            if not sep:
                raise ValueError(
                    f"malformed REPRO_FAULTS param {pair!r} in {entry!r}"
                )
            params[key.strip()] = _parse_value(value.strip())
        armed.append(arm(point, times=times, **params))
    return armed
