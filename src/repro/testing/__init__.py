"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the deliberate fault-injection harness
the serving and runtime layers expose hook points for; see that module
for the catalogue of injectable faults and the arming API.  Nothing in
here runs unless a test (or an operator via ``REPRO_FAULTS``) arms it.
"""

from . import faults

__all__ = ["faults"]
