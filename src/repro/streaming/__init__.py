"""Stateful low-latency streaming inference over causal sequence models.

Batch serving answers "here is a whole sequence, classify every step";
streaming serving answers "here are the next ``K`` samples of a live
conversation, extend the outputs" — at per-push latencies where
recomputing the whole prefix would blow the budget.  This package is
the model-side half of that story (the wire protocol, server stream
registry and client API live in :mod:`repro.serving`):

* :class:`StreamPlan` / :func:`compile_stream_plan` — the incremental
  twin of the batch plan compiler: push suffix chunks, get exactly the
  new output rows, **bitwise identical** to the batch plan over the
  concatenated sequence (see :mod:`repro.streaming.plan` for why parity
  is structural, not approximate),
* :class:`StreamState` — the per-conversation carry: one
  ``(dilation, channels)`` history buffer per two-tap layer, with exact
  byte accounting the server budgets against.

``StreamPlan.push_many`` is the cross-stream fusion primitive the
server's micro-batcher drives: many streams' pending chunks, one fused
GEMM step, per-stream rows scattered back out — bitwise unchanged.
"""

from .plan import StreamPlan, compile_stream_plan
from .state import StreamState

__all__ = ["StreamPlan", "StreamState", "compile_stream_plan"]
