"""Per-stream state: the ring of past activations each causal tap needs.

A :class:`~repro.streaming.plan.StreamPlan` is stateless and shared; all
per-conversation memory lives in a :class:`StreamState` — one small
``(dilation, channels)`` history buffer per two-tap layer, holding the
last ``dilation`` *inputs* that layer saw.  That is the entire carry: a
causal two-tap layer ``y[t] = W_r x[t] + W_l x[t-d] + b`` needs exactly
the previous ``d`` samples to extend its output, and pointwise /
elementwise steps need nothing.  ``state_bytes`` is therefore fixed per
plan and known before any data arrives, which is what lets the server
admit or shed ``stream_open`` against a hard memory budget up front.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .plan import StreamPlan

__all__ = ["StreamState"]


class StreamState:
    """The mutable per-stream carry for one :class:`StreamPlan`.

    ``buffers[i]`` is the history buffer for plan step ``i`` — a
    ``(dilation, in_channels)`` array of that step's last inputs for
    two-tap steps, ``None`` for stateless steps.  Buffers start zeroed,
    matching the batch plan's causal zero padding (``x[t] = 0`` for
    ``t < 0``), so a fresh stream reproduces the batch plan from sample
    zero.  ``samples`` counts pushed samples; ``pushes`` counts push
    calls (both feed the server's stream stats).
    """

    __slots__ = ("plan", "buffers", "samples", "pushes")

    def __init__(self, plan: "StreamPlan"):
        self.plan = plan
        self.buffers: list[np.ndarray | None] = [
            None
            if shape is None
            else np.zeros(shape, dtype=plan.policy.real_dtype)
            for shape in plan.state_shapes
        ]
        self.samples = 0
        self.pushes = 0

    @property
    def state_bytes(self) -> int:
        """Bytes of history this stream holds (fixed for a given plan)."""
        return sum(b.nbytes for b in self.buffers if b is not None)

    def reset(self) -> None:
        """Rewind to sample zero (bitwise-fresh: buffers zeroed)."""
        for buf in self.buffers:
            if buf is not None:
                buf[:] = 0.0
        self.samples = 0
        self.pushes = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StreamState(samples={self.samples}, pushes={self.pushes}, "
            f"state_bytes={self.state_bytes})"
        )
