"""The incremental stream plan: suffix pushes, bitwise batch parity.

:func:`compile_stream_plan` freezes a sequence model (a live
:class:`~repro.nn.module.Sequential` or a deployment artifact's records)
into a :class:`StreamPlan` — the streaming twin of
:func:`~repro.runtime.plan.compile_model_plan`.  Where the batch plan
consumes a whole ``(batch, T, channels)`` timeline at once, the stream
plan consumes it in arbitrary suffix chunks: push ``K`` new samples and
get exactly the ``K`` new output rows, with all cross-sample memory held
in a per-conversation :class:`~repro.streaming.state.StreamState`.

Parity is the contract, and it is structural rather than approximate.
Every weight application in both plans routes through
:func:`~repro.nn.layers.fftnet1d.seq_matmul`, whose per-row results are
independent of how many rows share the call, and every step replicates
the batch op's exact accumulation order (right tap, ``+=`` left tap,
``+=`` bias, activation — all elementwise past the GEMMs).  A timestep's
output therefore depends only on that timestep's row values, never on
its neighbours in the call, so any chunking of the timeline — one
sample at a time, ragged pushes, or many streams' chunks fused into a
single call by the server's micro-batcher — is bitwise identical to the
batch plan over the concatenated sequence (fp64 and fp32 alike).

Fusion across streams falls out of the same property:
:meth:`StreamPlan.push_many` stacks all streams' new rows into one
matrix per step, runs each GEMM once, and scatters the rows back, so
``N`` concurrent single-sample pushes cost one fused step instead of
``N`` tiny ones — without perturbing a single bit of any stream.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..exceptions import DeploymentError, ShapeError
from ..nn.layers import (
    Dropout,
    FFTLayer1d,
    LeakyReLU,
    Pointwise1d,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    seq_matmul,
)
from ..nn.module import Sequential
from ..precision import FP64, PrecisionPolicy
from ..runtime.plan import _ACTIVATIONS, softmax
from .state import StreamState

__all__ = ["StreamPlan", "compile_stream_plan"]


class _TapStep:
    """One two-tap causal layer ``y[t] = W_r x[t] + W_l x[t-d] + b``.

    Holds ``dilation`` rows of per-stream input history (in the
    :class:`StreamState`, not here); the step itself is shared and
    immutable apart from the foldable ``activation`` slot filled during
    compilation.
    """

    __slots__ = ("name", "wl_t", "wr_t", "bias", "dilation", "in_c", "out_c", "activation")

    def __init__(self, weight_l, weight_r, bias, dilation, rdtype):
        self.wl_t = np.ascontiguousarray(np.asarray(weight_l, dtype=rdtype).T)
        self.wr_t = np.ascontiguousarray(np.asarray(weight_r, dtype=rdtype).T)
        self.bias = None if bias is None else np.asarray(bias, dtype=rdtype)
        self.dilation = int(dilation)
        self.in_c, self.out_c = self.wr_t.shape
        self.activation: Callable[[np.ndarray], np.ndarray] | None = None
        self.name = f"fft1d({self.in_c}->{self.out_c},d={self.dilation})"
        if self.dilation < 1:
            raise DeploymentError(f"dilation must be >= 1, got {dilation}")

    @property
    def state_shape(self) -> tuple[int, int]:
        return (self.dilation, self.in_c)

    def run(self, x, states, offsets, index):
        lefts = []
        for i, state in enumerate(states):
            new = x[offsets[i] : offsets[i + 1]]
            ctx = np.concatenate([state.buffers[index], new], axis=0)
            # ctx is the last ``dilation`` inputs followed by the new
            # rows: ctx[k] is x[t - dilation] for the k-th new position.
            lefts.append(ctx[: new.shape[0]])
            state.buffers[index] = ctx[ctx.shape[0] - self.dilation :].copy()
        xl = lefts[0] if len(lefts) == 1 else np.concatenate(lefts, axis=0)
        out = seq_matmul(x, self.wr_t)
        out += seq_matmul(xl, self.wl_t)
        if self.bias is not None:
            out += self.bias
        if self.activation is not None:
            out = self.activation(out)
        return out


class _DenseStep:
    """Per-timestep projection (``Pointwise1d``): stateless."""

    __slots__ = ("name", "weight_t", "bias", "in_c", "out_c", "activation")

    def __init__(self, weight, bias, rdtype):
        self.weight_t = np.ascontiguousarray(np.asarray(weight, dtype=rdtype).T)
        self.bias = None if bias is None else np.asarray(bias, dtype=rdtype)
        self.in_c, self.out_c = self.weight_t.shape
        self.activation: Callable[[np.ndarray], np.ndarray] | None = None
        self.name = f"pointwise1d({self.in_c}->{self.out_c})"

    state_shape = None

    def run(self, x, states, offsets, index):
        out = seq_matmul(x, self.weight_t)
        if self.bias is not None:
            out += self.bias
        if self.activation is not None:
            out = self.activation(out)
        return out


class _ElementwiseStep:
    """A bare per-row function (softmax, or an unfoldable activation)."""

    __slots__ = ("name", "fn")

    def __init__(self, name, fn):
        self.name = name
        self.fn = fn

    state_shape = None

    def run(self, x, states, offsets, index):
        return self.fn(x)


class StreamPlan:
    """A frozen incremental plan: shared weights, per-stream state.

    Thread-compatibility contract: the plan itself is immutable after
    compilation and may be shared freely; a :class:`StreamState` is
    mutated by pushes and must not appear in two concurrent calls (the
    server enforces this with a per-stream busy flag).
    """

    def __init__(self, steps: Sequence, policy: PrecisionPolicy):
        steps = list(steps)
        matmuls = [s for s in steps if isinstance(s, (_TapStep, _DenseStep))]
        if not matmuls:
            raise DeploymentError(
                "model has no streamable weight layers (FFTLayer1d / Pointwise1d)"
            )
        self.steps = steps
        self.policy = policy
        self.in_channels = matmuls[0].in_c
        self.out_channels = matmuls[-1].out_c
        #: one entry per step: ``(dilation, in_channels)`` or ``None``.
        self.state_shapes = tuple(s.state_shape for s in steps)
        self.ends_with_softmax = bool(steps) and steps[-1].name == "softmax"
        #: output of sample ``t`` depends on inputs ``t-rf+1 .. t``.
        self.receptive_field = 1 + sum(
            s.dilation for s in steps if isinstance(s, _TapStep)
        )
        itemsize = np.dtype(policy.real_dtype).itemsize
        #: history bytes per stream — fixed, known before any data.
        self.state_bytes = sum(
            shape[0] * shape[1] * itemsize
            for shape in self.state_shapes
            if shape is not None
        )

    def describe(self) -> list[str]:
        """Step names, mirroring the batch plan's fused op names."""
        return [s.name for s in self.steps]

    def open(self) -> StreamState:
        """A fresh stream positioned at sample zero."""
        return StreamState(self)

    def push(self, state: StreamState, chunk, proba: bool = False) -> np.ndarray:
        """Feed ``chunk`` new samples to one stream; return its new rows."""
        return self.push_many([state], [chunk], proba=proba)[0]

    def push_many(
        self,
        states: Sequence[StreamState],
        chunks: Sequence,
        proba: bool = False,
    ) -> list[np.ndarray]:
        """One fused step over many streams' new samples.

        ``chunks[i]`` is stream ``i``'s suffix — ``(K_i, in_channels)``
        (or ``(K_i,)`` when ``in_channels == 1``); the return value is
        the matching ``(K_i, out_channels)`` output rows per stream,
        bitwise equal to what the batch plan produces for those
        positions of the full sequence.  With ``proba=True`` the rows
        are passed through softmax unless the plan already ends in one
        (the :meth:`~repro.runtime.session.InferenceSession.predict_proba`
        convention).  All streams advance atomically from the caller's
        view: validation happens before any state is touched.
        """
        if len(states) != len(chunks):
            raise ShapeError(
                f"{len(states)} states but {len(chunks)} chunks in fused push"
            )
        if not states:
            return []
        seen: set[int] = set()
        for state in states:
            if state.plan is not self:
                raise DeploymentError("StreamState belongs to a different plan")
            if id(state) in seen:
                raise DeploymentError("the same StreamState appears twice in a fused push")
            seen.add(id(state))
        rdtype = self.policy.real_dtype
        rows: list[np.ndarray] = []
        sizes: list[int] = []
        for chunk in chunks:
            arr = np.asarray(chunk, dtype=rdtype)
            if arr.ndim == 1 and self.in_channels == 1:
                arr = arr[:, None]
            if arr.ndim != 2 or arr.shape[1] != self.in_channels:
                raise ShapeError(
                    f"stream chunk must be (samples, {self.in_channels}), "
                    f"got shape {np.asarray(chunk).shape}"
                )
            rows.append(arr)
            sizes.append(arr.shape[0])
        x = rows[0] if len(rows) == 1 else np.concatenate(rows, axis=0)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        for index, step in enumerate(self.steps):
            x = step.run(x, states, offsets, index)
        if proba and not self.ends_with_softmax:
            x = softmax(x)
        for state, size in zip(states, sizes):
            state.samples += size
            state.pushes += 1
        if len(states) == 1:
            return [x]
        return [
            np.ascontiguousarray(x[offsets[i] : offsets[i + 1]])
            for i in range(len(states))
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StreamPlan({len(self.steps)} steps, rf={self.receptive_field}, "
            f"state_bytes={self.state_bytes})"
        )


def _attach_activation(steps: list, name: str, fn) -> None:
    """Fold an activation into the producing step (batch-plan fusion twin)."""
    if (
        steps
        and isinstance(steps[-1], (_TapStep, _DenseStep))
        and steps[-1].activation is None
        and name != "softmax"
    ):
        steps[-1].activation = fn
        steps[-1].name += f"+{name}"
    else:
        steps.append(_ElementwiseStep(name, fn))


def _steps_from_model(model: Sequential, rdtype) -> list:
    steps: list = []
    for layer in model:
        if isinstance(layer, FFTLayer1d):
            steps.append(
                _TapStep(
                    layer.weight_l.data,
                    layer.weight_r.data,
                    None if layer.bias is None else layer.bias.data,
                    layer.dilation,
                    rdtype,
                )
            )
        elif isinstance(layer, Pointwise1d):
            steps.append(
                _DenseStep(
                    layer.weight.data,
                    None if layer.bias is None else layer.bias.data,
                    rdtype,
                )
            )
        elif isinstance(layer, ReLU):
            _attach_activation(steps, "relu", _ACTIVATIONS["relu"])
        elif isinstance(layer, LeakyReLU):
            slope = layer.negative_slope
            _attach_activation(
                steps,
                "leaky_relu",
                lambda x, s=slope: np.where(x > 0.0, x, s * x),
            )
        elif isinstance(layer, Sigmoid):
            _attach_activation(steps, "sigmoid", _ACTIVATIONS["sigmoid"])
        elif isinstance(layer, Tanh):
            _attach_activation(steps, "tanh", _ACTIVATIONS["tanh"])
        elif isinstance(layer, Softmax):
            steps.append(_ElementwiseStep("softmax", softmax))
        elif isinstance(layer, Dropout):
            continue  # identity at inference
        else:
            raise DeploymentError(
                f"layer type {type(layer).__name__} is not streamable; "
                "stream plans support FFTLayer1d / Pointwise1d plus "
                "elementwise activations"
            )
    return steps


def _steps_from_records(records: Sequence[dict], rdtype) -> list:
    steps: list = []
    for record in records:
        kind = record["kind"]
        if kind == "fft1d":
            stacked = np.asarray(record["weight"])
            steps.append(
                _TapStep(
                    stacked[0], stacked[1], record["bias"], record["dilation"], rdtype
                )
            )
        elif kind == "pointwise1d":
            steps.append(_DenseStep(record["weight"], record["bias"], rdtype))
        elif kind in ("relu", "sigmoid", "tanh"):
            _attach_activation(steps, kind, _ACTIVATIONS[kind])
        elif kind == "leaky_relu":
            slope = record["slope"]
            _attach_activation(
                steps,
                "leaky_relu",
                lambda x, s=slope: np.where(x > 0.0, x, s * x),
            )
        elif kind == "softmax":
            steps.append(_ElementwiseStep("softmax", softmax))
        else:
            raise DeploymentError(
                f"record kind {kind!r} is not streamable; stream plans "
                "support fft1d / pointwise1d plus elementwise activations"
            )
    return steps


def compile_stream_plan(
    source, policy: PrecisionPolicy = FP64
) -> StreamPlan:
    """Freeze ``source`` into a :class:`StreamPlan`.

    ``source`` is a live :class:`~repro.nn.module.Sequential`, a
    :class:`~repro.embedded.deploy.DeployedModel`, or its raw record
    list — the same trio :func:`~repro.runtime.plan.compile_model_plan`
    / :func:`~repro.runtime.plan.compile_records_plan` accept, so any
    artifact the engine can serve in batch mode can also be served
    incrementally if its layers are streamable.
    """
    rdtype = policy.real_dtype
    if isinstance(source, Sequential):
        steps = _steps_from_model(source, rdtype)
    else:
        records = getattr(source, "records", source)
        steps = _steps_from_records(records, rdtype)
    return StreamPlan(steps, policy)
