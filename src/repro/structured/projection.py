"""Least-squares projections onto structured-matrix sets.

Converting a pre-trained dense network into the paper's block-circulant
format requires mapping each dense weight matrix to its nearest structured
counterpart.  For the Frobenius norm this is a simple averaging along the
constrained diagonals, implemented here for circulant and block-circulant
targets.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from .block_circulant import BlockCirculantMatrix
from .circulant import CirculantMatrix

__all__ = [
    "nearest_circulant",
    "nearest_block_circulant",
    "projection_error",
]


def nearest_circulant(matrix: np.ndarray) -> CirculantMatrix:
    """Frobenius-nearest circulant matrix to a dense square matrix.

    Each entry of the defining vector is the mean of the corresponding
    wrapped diagonal: ``w[k] = mean(A[i, j] for (i - j) mod n == k)``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ShapeError(f"expected a square matrix, got shape {matrix.shape}")
    n = matrix.shape[0]
    shift = (np.arange(n)[:, None] - np.arange(n)[None, :]) % n
    w = np.array([matrix[shift == k].mean() for k in range(n)])
    return CirculantMatrix(w)


def nearest_block_circulant(
    matrix: np.ndarray, block_size: int
) -> BlockCirculantMatrix:
    """Frobenius-nearest block-circulant matrix with the given block size.

    Delegates to :meth:`BlockCirculantMatrix.from_dense`, which averages
    wrapped diagonals inside each block independently (blocks do not
    interact in the Frobenius objective).
    """
    return BlockCirculantMatrix.from_dense(matrix, block_size)


def projection_error(matrix: np.ndarray, block_size: int) -> float:
    """Relative Frobenius error of the block-circulant projection.

    Returns ``||A - P(A)||_F / ||A||_F`` — a direct measure of how much
    structure a given block size imposes, used by the block-size ablation
    (experiment E11).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    norm = np.linalg.norm(matrix)
    if norm == 0.0:
        return 0.0
    projected = nearest_block_circulant(matrix, block_size).to_dense()
    return float(np.linalg.norm(matrix - projected) / norm)
