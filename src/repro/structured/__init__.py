"""Structured matrices (paper sections III-C and IV).

* :class:`CirculantMatrix` — ``n`` parameters, O(n log n) products,
* :class:`BlockCirculantMatrix` — the paper's weight representation,
* :class:`ToeplitzMatrix` — the related-work baseline [18],
* functional kernels (:func:`block_circulant_forward_batch`, ...) used by
  the neural-network layers,
* least-squares projections from dense matrices.
"""

from .block_circulant import BlockCirculantMatrix
from .circulant import CirculantMatrix
from .ops import (
    block_circulant_backward_batch,
    block_circulant_backward_batch_einsum,
    block_circulant_forward_batch,
    block_circulant_forward_batch_einsum,
    block_circulant_matvec,
    block_circulant_to_dense,
    block_circulant_transpose_matvec,
    blockify,
    circulant_gradients,
    circulant_matvec,
    circulant_transpose_matvec,
    unblockify,
)
from .projection import nearest_block_circulant, nearest_circulant, projection_error
from .spectral import SpectrumCache
from .toeplitz import ToeplitzMatrix

__all__ = [
    "CirculantMatrix",
    "BlockCirculantMatrix",
    "SpectrumCache",
    "ToeplitzMatrix",
    "blockify",
    "unblockify",
    "circulant_matvec",
    "circulant_transpose_matvec",
    "circulant_gradients",
    "block_circulant_matvec",
    "block_circulant_transpose_matvec",
    "block_circulant_forward_batch",
    "block_circulant_forward_batch_einsum",
    "block_circulant_backward_batch",
    "block_circulant_backward_batch_einsum",
    "block_circulant_to_dense",
    "nearest_circulant",
    "nearest_block_circulant",
    "projection_error",
]
