"""Circulant matrix class (paper section III-C).

A circulant matrix is fully defined by its first column ``w``; every matrix
operation this class exposes runs through the FFT in O(n log n) time and
O(n) storage, which is the storage/computation reduction the paper builds
on.  The eigenvalues of ``C(w)`` are exactly ``FFT(w)``, which makes
inversion, powers, and products diagonal operations in the Fourier basis.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..fft import fft, ifft
from .ops import circulant_matvec, circulant_transpose_matvec

__all__ = ["CirculantMatrix"]


class CirculantMatrix:
    """An ``n x n`` circulant matrix defined by its first column.

    Parameters
    ----------
    first_column:
        Length-``n`` defining vector ``w``.  Row ``i`` of the dense matrix
        is ``w`` rotated down by ``i`` — the layout displayed in paper
        section III-C.
    """

    def __init__(self, first_column: np.ndarray):
        w = np.asarray(first_column, dtype=np.float64)
        if w.ndim != 1 or w.shape[0] == 0:
            raise ShapeError(
                f"circulant defining vector must be 1-D and non-empty, "
                f"got shape {w.shape}"
            )
        self._w = w

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def first_column(self) -> np.ndarray:
        """The defining vector ``w`` (a copy; the matrix is immutable)."""
        return self._w.copy()

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self._w.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        """Dense shape ``(n, n)``."""
        return (self.n, self.n)

    @property
    def parameter_count(self) -> int:
        """Independent parameters: ``n`` instead of ``n^2``."""
        return self.n

    def eigenvalues(self) -> np.ndarray:
        """Eigenvalues of the matrix, which are ``FFT(w)``."""
        return fft(self._w)

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``C @ x`` via FFT -> componentwise multiply -> IFFT (Eqn. 3)."""
        return circulant_matvec(self._w, np.asarray(x, dtype=np.float64))

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``C.T @ y`` via circular correlation."""
        return circulant_transpose_matvec(self._w, np.asarray(y, dtype=np.float64))

    def __matmul__(self, other):
        if isinstance(other, CirculantMatrix):
            return self.compose(other)
        other = np.asarray(other, dtype=np.float64)
        if other.ndim == 1:
            return self.matvec(other)
        if other.ndim == 2:
            if other.shape[0] != self.n:
                raise ShapeError(
                    f"cannot multiply {self.shape} circulant by {other.shape}"
                )
            # Columns transform independently; convolve along axis 0.
            return np.stack(
                [self.matvec(other[:, j]) for j in range(other.shape[1])], axis=1
            )
        raise ShapeError(f"unsupported operand ndim {other.ndim}")

    def compose(self, other: "CirculantMatrix") -> "CirculantMatrix":
        """Matrix product of two circulants (circulants form a commutative
        algebra: the product is circulant with spectra multiplied)."""
        if other.n != self.n:
            raise ShapeError(f"size mismatch: {self.n} vs {other.n}")
        spectrum = self.eigenvalues() * other.eigenvalues()
        return CirculantMatrix(ifft(spectrum).real)

    # ------------------------------------------------------------------
    # Algebraic structure
    # ------------------------------------------------------------------
    def transpose(self) -> "CirculantMatrix":
        """The transpose, itself circulant with ``w'[k] = w[(-k) mod n]``."""
        w = self._w
        return CirculantMatrix(np.concatenate([w[:1], w[1:][::-1]]))

    @property
    def T(self) -> "CirculantMatrix":
        """Alias for :meth:`transpose`."""
        return self.transpose()

    def inverse(self) -> "CirculantMatrix":
        """The inverse circulant via reciprocal eigenvalues.

        Raises ``np.linalg.LinAlgError`` when any FFT bin of ``w`` is
        (numerically) zero, i.e. the matrix is singular.
        """
        spectrum = self.eigenvalues()
        tiny = np.finfo(np.float64).eps * self.n * np.max(np.abs(spectrum) + 1.0)
        if np.any(np.abs(spectrum) <= tiny):
            raise np.linalg.LinAlgError("circulant matrix is singular")
        return CirculantMatrix(ifft(1.0 / spectrum).real)

    def solve(self, y: np.ndarray) -> np.ndarray:
        """Solve ``C x = y`` in O(n log n) via spectral division."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape[-1] != self.n:
            raise ShapeError(f"rhs length {y.shape[-1]} != {self.n}")
        spectrum = self.eigenvalues()
        tiny = np.finfo(np.float64).eps * self.n * np.max(np.abs(spectrum) + 1.0)
        if np.any(np.abs(spectrum) <= tiny):
            raise np.linalg.LinAlgError("circulant matrix is singular")
        return ifft(fft(y) / spectrum).real

    def determinant(self) -> float:
        """Determinant: product of eigenvalues (real for real ``w``)."""
        return float(np.prod(self.eigenvalues()).real)

    # ------------------------------------------------------------------
    # Arithmetic with other circulants
    # ------------------------------------------------------------------
    def __add__(self, other: "CirculantMatrix") -> "CirculantMatrix":
        if not isinstance(other, CirculantMatrix):
            return NotImplemented
        if other.n != self.n:
            raise ShapeError(f"size mismatch: {self.n} vs {other.n}")
        return CirculantMatrix(self._w + other._w)

    def __sub__(self, other: "CirculantMatrix") -> "CirculantMatrix":
        if not isinstance(other, CirculantMatrix):
            return NotImplemented
        if other.n != self.n:
            raise ShapeError(f"size mismatch: {self.n} vs {other.n}")
        return CirculantMatrix(self._w - other._w)

    def __mul__(self, scalar: float) -> "CirculantMatrix":
        return CirculantMatrix(self._w * float(scalar))

    __rmul__ = __mul__

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize the full ``n x n`` matrix (for testing / display)."""
        n = self.n
        shift = (np.arange(n)[:, None] - np.arange(n)[None, :]) % n
        return self._w[shift]

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "CirculantMatrix":
        """Exact conversion of a dense circulant matrix.

        Raises :class:`ShapeError` when the matrix is not circulant; for a
        least-squares fit of an arbitrary matrix use
        :func:`repro.structured.projection.nearest_circulant`.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ShapeError(f"expected a square matrix, got {matrix.shape}")
        candidate = cls(matrix[:, 0].copy())
        if not np.allclose(candidate.to_dense(), matrix):
            raise ShapeError("matrix is not circulant; use nearest_circulant")
        return candidate

    def __repr__(self) -> str:
        return f"CirculantMatrix(n={self.n})"
