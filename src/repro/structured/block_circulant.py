"""Block-circulant matrix class (paper section IV).

A block-circulant matrix is a grid of circulant blocks.  The paper uses a
single row/column of blocks (``W = [C_1 | C_2 | ... | C_k]^T``); this class
implements the general ``p x q`` grid with block size ``b``, of which the
paper's layout is the one-row/one-column special case.  Ragged logical
shapes are handled by zero padding, per the paper's footnote.

The block size is the knob trading compression against accuracy (paper
section II, contribution (1)): parameters drop from ``m*n`` to ``m*n/b``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..fft import rfft
from .spectral import freq_major
from .ops import (
    block_circulant_forward_batch,
    block_circulant_to_dense,
    block_circulant_transpose_matvec,
    blockify,
    unblockify,
)

__all__ = ["BlockCirculantMatrix"]


class BlockCirculantMatrix:
    """An ``m x n`` matrix represented as a grid of circulant blocks.

    Parameters
    ----------
    block_weights:
        Array of shape ``(p, q, b)``: defining vector of each block.
    rows, cols:
        Logical (possibly unpadded) dimensions; default to ``p*b`` and
        ``q*b``.  Products accept/return vectors of the logical size and
        pad/trim internally.
    """

    def __init__(
        self,
        block_weights: np.ndarray,
        rows: int | None = None,
        cols: int | None = None,
    ):
        # Copy: the matrix owns its defining vectors.  The lazy spectra
        # cache below assumes they never change, so aliasing a caller
        # array that later mutates would silently serve stale products.
        weights = np.array(block_weights, dtype=np.float64)
        if weights.ndim != 3:
            raise ShapeError(
                f"block_weights must have shape (p, q, b), got {weights.shape}"
            )
        p, q, b = weights.shape
        self._weights = weights
        self._spectra: np.ndarray | None = None  # lazy rfft of the grid
        self._spectra_fm: np.ndarray | None = None  # frequency-major copy
        self._rows = p * b if rows is None else int(rows)
        self._cols = q * b if cols is None else int(cols)
        if not (p * b - b < self._rows <= p * b):
            raise ShapeError(
                f"rows={self._rows} inconsistent with {p} blocks of size {b}"
            )
        if not (q * b - b < self._cols <= q * b):
            raise ShapeError(
                f"cols={self._cols} inconsistent with {q} blocks of size {b}"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        rows: int,
        cols: int,
        block_size: int,
        rng: np.random.Generator | None = None,
        scale: float | None = None,
    ) -> "BlockCirculantMatrix":
        """Random block-circulant matrix with Gaussian defining vectors.

        ``scale`` defaults to ``1/sqrt(cols)`` so the dense expansion has
        roughly unit-variance rows — the same criterion layer init uses.
        """
        if rows <= 0 or cols <= 0 or block_size <= 0:
            raise ShapeError(
                f"dimensions must be positive: rows={rows} cols={cols} "
                f"block_size={block_size}"
            )
        rng = rng or np.random.default_rng()
        p = -(-rows // block_size)
        q = -(-cols // block_size)
        if scale is None:
            scale = 1.0 / np.sqrt(cols)
        weights = rng.normal(scale=scale, size=(p, q, block_size))
        return cls(weights, rows=rows, cols=cols)

    @property
    def block_weights(self) -> np.ndarray:
        """The ``(p, q, b)`` grid of defining vectors (copy)."""
        return self._weights.copy()

    @property
    def block_size(self) -> int:
        """Circulant block dimension ``b``."""
        return self._weights.shape[2]

    @property
    def grid(self) -> tuple[int, int]:
        """Number of blocks ``(p, q)``."""
        return self._weights.shape[0], self._weights.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """Logical dense shape ``(rows, cols)``."""
        return (self._rows, self._cols)

    @property
    def padded_shape(self) -> tuple[int, int]:
        """Internal zero-padded shape ``(p*b, q*b)``."""
        p, q, b = self._weights.shape
        return (p * b, q * b)

    @property
    def parameter_count(self) -> int:
        """Stored parameters: ``p * q * b`` (vs ``rows * cols`` dense)."""
        return int(np.prod(self._weights.shape))

    @property
    def compression_ratio(self) -> float:
        """Dense parameter count divided by stored parameter count."""
        return (self._rows * self._cols) / self.parameter_count

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------
    def weight_spectra(self) -> np.ndarray:
        """Half-spectra ``rfft`` of the block grid, computed once.

        The defining vectors of this matrix are immutable, so the spectra
        are transformed lazily on first product and reused by every
        subsequent :meth:`matvec` / :meth:`rmatvec` (section IV-A's
        "keep the FFT result FFT(w_i)").
        """
        if self._spectra is None:
            spectra = rfft(self._weights)
            spectra.setflags(write=False)
            self._spectra = spectra
        return self._spectra

    def _weight_spectra_fm(self) -> np.ndarray:
        """Contiguous frequency-major ``(nb, p, q)`` copy of the spectra."""
        if self._spectra_fm is None:
            fm = freq_major(self.weight_spectra())
            fm.setflags(write=False)
            self._spectra_fm = fm
        return self._spectra_fm

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``W @ x`` for a logical length-``cols`` vector, O(m n log b / b)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self._cols,):
            raise ShapeError(f"expected x of shape ({self._cols},), got {x.shape}")
        padded = blockify(x, self.block_size)
        p, _, b = self._weights.shape
        result = block_circulant_forward_batch(
            self.weight_spectra(),
            padded.reshape(1, -1, b),
            weight_fm=self._weight_spectra_fm(),
        ).reshape(p * b)
        return result[: self._rows]

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``W.T @ y`` for a logical length-``rows`` vector."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (self._rows,):
            raise ShapeError(f"expected y of shape ({self._rows},), got {y.shape}")
        padded = blockify(y, self.block_size).reshape(-1)
        result = block_circulant_transpose_matvec(
            self._weights, padded, weight_spectra=self.weight_spectra()
        )
        return result[: self._cols]

    def __matmul__(self, other):
        other = np.asarray(other, dtype=np.float64)
        if other.ndim == 1:
            return self.matvec(other)
        if other.ndim == 2:
            if other.shape[0] != self._cols:
                raise ShapeError(
                    f"cannot multiply {self.shape} block-circulant by "
                    f"{other.shape}"
                )
            return np.stack(
                [self.matvec(other[:, j]) for j in range(other.shape[1])],
                axis=1,
            )
        raise ShapeError(f"unsupported operand ndim {other.ndim}")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def transpose(self) -> "BlockCirculantMatrix":
        """The transpose, a ``(q, p, b)`` grid of transposed blocks."""
        w = self._weights
        transposed = np.concatenate([w[..., :1], w[..., 1:][..., ::-1]], axis=-1)
        return BlockCirculantMatrix(
            np.swapaxes(transposed, 0, 1), rows=self._cols, cols=self._rows
        )

    @property
    def T(self) -> "BlockCirculantMatrix":
        """Alias for :meth:`transpose`."""
        return self.transpose()

    def to_dense(self) -> np.ndarray:
        """Materialize the logical ``(rows, cols)`` dense matrix."""
        dense = block_circulant_to_dense(self._weights)
        return dense[: self._rows, : self._cols]

    @classmethod
    def from_dense(
        cls, matrix: np.ndarray, block_size: int
    ) -> "BlockCirculantMatrix":
        """Least-squares projection of a dense matrix onto the
        block-circulant set (mean along each block's wrapped diagonals).

        This is how a pre-trained dense layer is converted for fine-tuning.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ShapeError(f"expected a 2-D matrix, got shape {matrix.shape}")
        if block_size <= 0:
            raise ShapeError(f"block_size must be positive, got {block_size}")
        rows, cols = matrix.shape
        p = -(-rows // block_size)
        q = -(-cols // block_size)
        padded = np.zeros((p * block_size, q * block_size))
        padded[:rows, :cols] = matrix
        shift = (
            np.arange(block_size)[:, None] - np.arange(block_size)[None, :]
        ) % block_size
        weights = np.empty((p, q, block_size))
        for i in range(p):
            for j in range(q):
                block = padded[
                    i * block_size : (i + 1) * block_size,
                    j * block_size : (j + 1) * block_size,
                ]
                for k in range(block_size):
                    weights[i, j, k] = block[shift == k].mean()
        return cls(weights, rows=rows, cols=cols)

    def blockify_input(self, x: np.ndarray) -> np.ndarray:
        """Fold a batch of logical input vectors into ``(batch, q, b)``."""
        return blockify(np.asarray(x, dtype=np.float64), self.block_size)

    def unblockify_output(self, y_blocks: np.ndarray) -> np.ndarray:
        """Flatten output blocks ``(batch, p, b)`` to logical vectors."""
        return unblockify(y_blocks, self._rows)

    def __repr__(self) -> str:
        p, q = self.grid
        return (
            f"BlockCirculantMatrix(shape={self.shape}, grid=({p}, {q}), "
            f"block_size={self.block_size})"
        )
