"""Functional kernels for circulant and block-circulant linear algebra.

These functions are the computational heart of the paper: every product
with a (block-)circulant matrix is executed as
``FFT -> component-wise multiplication -> IFFT`` (paper Eqn. 3, Fig. 2),
and the gradients needed by the training algorithm (paper Eqn. 4,
Algorithm 2) are circular correlations computed the same way.

Conventions (also in DESIGN.md section 6):

* ``C(w)`` is the circulant matrix whose **first column** is ``w``;
  ``C(w) @ x == circular_convolve(w, x)``.
* A block-circulant matrix is a ``p x q`` grid of ``b x b`` circulant
  blocks, stored as a ``(p, q, b)`` array of defining vectors.  Logical
  shape is ``(p*b, q*b)``; callers zero-pad ragged operands (the paper's
  footnote: "we can apply zero padding such that the definition of
  block-circulant matrices can be applied").

The batched kernels work directly on half-spectra (``rfft`` outputs) so a
layer can hoist ``FFT(w)`` out of the loop — exactly the deployment trick
of section IV-A.

The frequency-domain contractions are executed as frequency-major batched
``matmul`` — ``(f, p, q) @ (f, q, n)`` — so each frequency bin's block
product runs as one complex GEMM and the whole contraction hits BLAS.
The direct ``np.einsum`` forms are retained as ``*_einsum`` reference
implementations; the equivalence tests pin the fast kernels to them.

**Precision.**  Every kernel follows the dtypes it is handed: complex64
weight spectra plus float32 input blocks keep the whole
FFT -> GEMM -> IFFT pipeline in single precision (cgemm instead of
zgemm, half the memory traffic) because the transforms in
:mod:`repro.fft` are dtype-following.  Mixed inputs promote by numpy's
ordinary rules, so callers wanting a pure fp32 hot path (the
``"fp32"`` :class:`~repro.precision.PrecisionPolicy`) must supply both
operands in single precision — the frozen runtime's plan compiler does.
"""

from __future__ import annotations

import numpy as np

from ..fft import circular_convolve, circular_correlate, irfft, rfft

__all__ = [
    "circulant_matvec",
    "circulant_transpose_matvec",
    "circulant_gradients",
    "blockify",
    "unblockify",
    "block_circulant_matvec",
    "block_circulant_transpose_matvec",
    "block_circulant_forward_batch",
    "block_circulant_forward_batch_einsum",
    "block_circulant_backward_batch",
    "block_circulant_backward_batch_einsum",
    "block_circulant_to_dense",
]


def circulant_matvec(w: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Compute ``C(w) @ x`` in O(n log n) (paper Eqn. 3 with k = 1)."""
    w = np.asarray(w)
    x = np.asarray(x)
    if w.ndim != 1 or x.shape[-1] != w.shape[0]:
        raise ValueError(
            f"incompatible shapes for circulant matvec: w {w.shape}, x {x.shape}"
        )
    return circular_convolve(w, x)


def circulant_transpose_matvec(w: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Compute ``C(w).T @ y`` as a circular correlation in O(n log n)."""
    w = np.asarray(w)
    y = np.asarray(y)
    if w.ndim != 1 or y.shape[-1] != w.shape[0]:
        raise ValueError(
            f"incompatible shapes for transpose matvec: w {w.shape}, y {y.shape}"
        )
    return circular_correlate(w, y)


def circulant_gradients(
    w: np.ndarray, x: np.ndarray, grad_y: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gradients of ``y = C(w) @ x`` given ``grad_y = dL/dy``.

    Returns ``(dL/dw, dL/dx)``; both are circular correlations (the FFT
    form of paper Eqn. 4):

    * ``dL/dw = correlate(x, grad_y)`` because ``dy_i/dw_k = x_{(i-k) % n}``,
    * ``dL/dx = C(w).T grad_y = correlate(w, grad_y)``.
    """
    grad_w = circular_correlate(x, grad_y)
    grad_x = circular_correlate(w, grad_y)
    return grad_w, grad_x


def blockify(x: np.ndarray, block_size: int) -> np.ndarray:
    """Zero-pad the last axis to a multiple of ``block_size`` and fold it.

    ``(..., n)`` becomes ``(..., ceil(n / b), b)``.
    """
    x = np.asarray(x)
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    n = x.shape[-1]
    blocks = -(-n // block_size)
    padded_len = blocks * block_size
    if padded_len != n:
        padded = np.zeros(x.shape[:-1] + (padded_len,), dtype=x.dtype)
        padded[..., :n] = x
        x = padded
    return x.reshape(x.shape[:-1] + (blocks, block_size))


def unblockify(x_blocks: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`blockify`: flatten blocks and trim padding to ``n``."""
    x_blocks = np.asarray(x_blocks)
    if x_blocks.ndim < 2:
        raise ValueError("unblockify expects at least 2 dims (blocks, block)")
    flat = x_blocks.reshape(x_blocks.shape[:-2] + (-1,))
    if n > flat.shape[-1]:
        raise ValueError(
            f"cannot trim to {n}; only {flat.shape[-1]} padded entries exist"
        )
    return flat[..., :n]


def block_circulant_matvec(
    weights: np.ndarray,
    x: np.ndarray,
    weight_spectra: np.ndarray | None = None,
) -> np.ndarray:
    """Compute ``W @ x`` for ``W`` given as a ``(p, q, b)`` block grid.

    ``x`` has length ``q*b``; the result has length ``p*b``.  Each output
    block is ``sum_q C(w[p, q]) x_q`` — the inner loop of paper
    Algorithm 1, executed for all blocks at once in the frequency domain.

    ``weight_spectra`` may carry a precomputed ``rfft`` of the grid (shape
    ``(p, q, b // 2 + 1)``) so repeated products with the same weights skip
    the weight transform entirely (paper section IV-A).
    """
    weights = np.asarray(weights)
    x = np.asarray(x)
    p, q, b = _check_block_grid(weights)
    if x.shape != (q * b,):
        raise ValueError(f"expected x of length {q * b}, got shape {x.shape}")
    if weight_spectra is None:
        weight_spectra = rfft(weights)  # (p, q, nb)
    y_blocks = block_circulant_forward_batch(
        weight_spectra, x.reshape(1, q, b)
    )
    return y_blocks.reshape(p * b)


def block_circulant_transpose_matvec(
    weights: np.ndarray,
    y: np.ndarray,
    weight_spectra: np.ndarray | None = None,
) -> np.ndarray:
    """Compute ``W.T @ y`` for a ``(p, q, b)`` block grid (length ``p*b`` in).

    As with :func:`block_circulant_matvec`, ``weight_spectra`` optionally
    supplies the precomputed weight ``rfft``.
    """
    weights = np.asarray(weights)
    y = np.asarray(y)
    p, q, b = _check_block_grid(weights)
    if y.shape != (p * b,):
        raise ValueError(f"expected y of length {p * b}, got shape {y.shape}")
    if weight_spectra is None:
        weight_spectra = rfft(weights)
    y_spec = rfft(y.reshape(1, p, b))
    x_spec = _contract_grad_x(np.asarray(weight_spectra), y_spec)
    return irfft(x_spec, n=b).reshape(q * b)


def _contract_grad_w(x_spec: np.ndarray, g_spec: np.ndarray) -> np.ndarray:
    """``gw[p, q, f] = sum_n conj(X[n, q, f]) G[n, p, f]`` via batched GEMM."""
    g_f = g_spec.transpose(2, 1, 0)  # (f, p, n)
    x_f = np.conj(x_spec).transpose(2, 0, 1)  # (f, n, q)
    return np.matmul(g_f, x_f).transpose(1, 2, 0)  # (p, q, f)


def _contract_grad_x(
    weight_spectra: np.ndarray, g_spec: np.ndarray
) -> np.ndarray:
    """``gx[n, q, f] = sum_p conj(W[p, q, f]) G[n, p, f]`` via batched GEMM."""
    g_f = g_spec.transpose(2, 0, 1)  # (f, n, p)
    w_f = np.conj(weight_spectra).transpose(2, 0, 1)  # (f, p, q)
    return np.matmul(g_f, w_f).transpose(1, 2, 0)  # (n, q, f)


def block_circulant_forward_batch(
    weight_spectra: np.ndarray,
    x_blocks: np.ndarray,
    weight_fm: np.ndarray | None = None,
    out: np.ndarray | None = None,
    gemm_out: np.ndarray | None = None,
) -> np.ndarray:
    """Batched forward product in the frequency domain.

    ``weight_spectra`` is ``rfft`` of the ``(p, q, b)`` grid (shape
    ``(p, q, nb)``); ``x_blocks`` is ``(batch, q, b)``.  Returns the output
    blocks ``(batch, p, b)``.  This is the inference kernel: the weight
    spectra are precomputed once (paper section IV-A), and the contraction
    ``y[n, p, f] = sum_q W[p, q, f] X[n, q, f]`` runs as frequency-major
    batched ``matmul`` — ``nb`` independent complex ``(p, q) @ (q, batch)``
    GEMMs in one BLAS call.

    ``weight_fm`` optionally supplies the weights already transposed to
    the contiguous frequency-major ``(nb, p, q)`` layout (e.g. from
    :meth:`SpectrumCache.get_pair`); without it ``matmul`` re-buffers the
    strided transpose view on every call, which dominates small-batch
    inference.

    ``out`` (shape ``(batch, p, b)``, the policy's real dtype) receives
    the final output blocks in place; ``gemm_out`` (shape
    ``(nb, p, batch)``, complex) is the destination for the
    frequency-major GEMM.  Both are bitwise-neutral: the same
    floating-point operations run, only into caller-owned buffers — the
    workspace-arena runtime passes preallocated slots here so repeated
    calls stop paying the allocator.
    """
    weight_spectra = np.asarray(weight_spectra)
    x_blocks = np.asarray(x_blocks)
    b = x_blocks.shape[-1]
    x_spec = rfft(x_blocks)  # (batch, q, nb)
    w_f = weight_spectra.transpose(2, 0, 1) if weight_fm is None else weight_fm
    if gemm_out is not None:
        y_fm = np.matmul(w_f, x_spec.transpose(2, 1, 0), out=gemm_out)
    else:
        y_fm = np.matmul(w_f, x_spec.transpose(2, 1, 0))
    y_spec = y_fm.transpose(2, 1, 0)
    return irfft(y_spec, n=b, out=out)


def block_circulant_forward_batch_einsum(
    weight_spectra: np.ndarray, x_blocks: np.ndarray
) -> np.ndarray:
    """Reference einsum form of :func:`block_circulant_forward_batch`.

    Kept as the readable specification of the contraction; the fast kernel
    must match it to round-off (see ``tests/structured``).
    """
    weight_spectra = np.asarray(weight_spectra)
    x_blocks = np.asarray(x_blocks)
    b = x_blocks.shape[-1]
    x_spec = rfft(x_blocks)  # (batch, q, nb)
    y_spec = np.einsum("pqf,nqf->npf", weight_spectra, x_spec)
    return irfft(y_spec, n=b)


def block_circulant_backward_batch(
    weight_spectra: np.ndarray,
    x_blocks: np.ndarray,
    grad_blocks: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched gradients of the block-circulant product (paper Algorithm 2).

    Arguments: precomputed ``rfft`` of the ``(p, q, b)`` weight grid, the
    saved input blocks ``(batch, q, b)``, and the upstream gradient blocks
    ``(batch, p, b)``.  Returns ``(grad_weights, grad_x_blocks)`` in the
    time domain with shapes ``(p, q, b)`` and ``(batch, q, b)``.  Both are
    single frequency-domain contractions — O(n log n) per block versus the
    O(n^2) of dense backprop — executed as frequency-major batched GEMMs.
    """
    weight_spectra = np.asarray(weight_spectra)
    x_blocks = np.asarray(x_blocks)
    grad_blocks = np.asarray(grad_blocks)
    b = x_blocks.shape[-1]
    x_spec = rfft(x_blocks)  # (batch, q, nb)
    g_spec = rfft(grad_blocks)  # (batch, p, nb)
    # dL/dw[p, q] = sum_batch correlate(x_q, g_p): conj(X) * G in frequency.
    grad_w_spec = _contract_grad_w(x_spec, g_spec)
    # dL/dx[q] = sum_p correlate(w_pq, g_p): conj(W) * G in frequency.
    grad_x_spec = _contract_grad_x(weight_spectra, g_spec)
    return irfft(grad_w_spec, n=b), irfft(grad_x_spec, n=b)


def block_circulant_backward_batch_einsum(
    weight_spectra: np.ndarray,
    x_blocks: np.ndarray,
    grad_blocks: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Reference einsum form of :func:`block_circulant_backward_batch`."""
    weight_spectra = np.asarray(weight_spectra)
    x_blocks = np.asarray(x_blocks)
    grad_blocks = np.asarray(grad_blocks)
    b = x_blocks.shape[-1]
    x_spec = rfft(x_blocks)
    g_spec = rfft(grad_blocks)
    grad_w_spec = np.einsum("nqf,npf->pqf", np.conj(x_spec), g_spec)
    grad_x_spec = np.einsum("pqf,npf->nqf", np.conj(weight_spectra), g_spec)
    return irfft(grad_w_spec, n=b), irfft(grad_x_spec, n=b)


def block_circulant_to_dense(weights: np.ndarray) -> np.ndarray:
    """Expand a ``(p, q, b)`` block grid to its dense ``(p*b, q*b)`` matrix."""
    weights = np.asarray(weights)
    p, q, b = _check_block_grid(weights)
    dense = np.zeros((p * b, q * b), dtype=weights.dtype)
    shift = (np.arange(b)[:, None] - np.arange(b)[None, :]) % b
    for i in range(p):
        for j in range(q):
            dense[i * b : (i + 1) * b, j * b : (j + 1) * b] = weights[i, j][shift]
    return dense


def _check_block_grid(weights: np.ndarray) -> tuple[int, int, int]:
    """Validate a ``(p, q, b)`` block grid and return its dimensions."""
    if weights.ndim != 3:
        raise ValueError(
            f"block grid must be 3-D (p, q, block); got shape {weights.shape}"
        )
    p, q, b = weights.shape
    if min(p, q, b) < 1:
        raise ValueError(f"block grid dimensions must be positive: {weights.shape}")
    return p, q, b
