"""Functional kernels for circulant and block-circulant linear algebra.

These functions are the computational heart of the paper: every product
with a (block-)circulant matrix is executed as
``FFT -> component-wise multiplication -> IFFT`` (paper Eqn. 3, Fig. 2),
and the gradients needed by the training algorithm (paper Eqn. 4,
Algorithm 2) are circular correlations computed the same way.

Conventions (also in DESIGN.md section 6):

* ``C(w)`` is the circulant matrix whose **first column** is ``w``;
  ``C(w) @ x == circular_convolve(w, x)``.
* A block-circulant matrix is a ``p x q`` grid of ``b x b`` circulant
  blocks, stored as a ``(p, q, b)`` array of defining vectors.  Logical
  shape is ``(p*b, q*b)``; callers zero-pad ragged operands (the paper's
  footnote: "we can apply zero padding such that the definition of
  block-circulant matrices can be applied").

The batched kernels work directly on half-spectra (``rfft`` outputs) so a
layer can hoist ``FFT(w)`` out of the loop — exactly the deployment trick
of section IV-A.
"""

from __future__ import annotations

import numpy as np

from ..fft import circular_convolve, circular_correlate, irfft, rfft

__all__ = [
    "circulant_matvec",
    "circulant_transpose_matvec",
    "circulant_gradients",
    "blockify",
    "unblockify",
    "block_circulant_matvec",
    "block_circulant_transpose_matvec",
    "block_circulant_forward_batch",
    "block_circulant_backward_batch",
    "block_circulant_to_dense",
]


def circulant_matvec(w: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Compute ``C(w) @ x`` in O(n log n) (paper Eqn. 3 with k = 1)."""
    w = np.asarray(w)
    x = np.asarray(x)
    if w.ndim != 1 or x.shape[-1] != w.shape[0]:
        raise ValueError(
            f"incompatible shapes for circulant matvec: w {w.shape}, x {x.shape}"
        )
    return circular_convolve(w, x)


def circulant_transpose_matvec(w: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Compute ``C(w).T @ y`` as a circular correlation in O(n log n)."""
    w = np.asarray(w)
    y = np.asarray(y)
    if w.ndim != 1 or y.shape[-1] != w.shape[0]:
        raise ValueError(
            f"incompatible shapes for transpose matvec: w {w.shape}, y {y.shape}"
        )
    return circular_correlate(w, y)


def circulant_gradients(
    w: np.ndarray, x: np.ndarray, grad_y: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gradients of ``y = C(w) @ x`` given ``grad_y = dL/dy``.

    Returns ``(dL/dw, dL/dx)``; both are circular correlations (the FFT
    form of paper Eqn. 4):

    * ``dL/dw = correlate(x, grad_y)`` because ``dy_i/dw_k = x_{(i-k) % n}``,
    * ``dL/dx = C(w).T grad_y = correlate(w, grad_y)``.
    """
    grad_w = circular_correlate(x, grad_y)
    grad_x = circular_correlate(w, grad_y)
    return grad_w, grad_x


def blockify(x: np.ndarray, block_size: int) -> np.ndarray:
    """Zero-pad the last axis to a multiple of ``block_size`` and fold it.

    ``(..., n)`` becomes ``(..., ceil(n / b), b)``.
    """
    x = np.asarray(x)
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    n = x.shape[-1]
    blocks = -(-n // block_size)
    padded_len = blocks * block_size
    if padded_len != n:
        padded = np.zeros(x.shape[:-1] + (padded_len,), dtype=x.dtype)
        padded[..., :n] = x
        x = padded
    return x.reshape(x.shape[:-1] + (blocks, block_size))


def unblockify(x_blocks: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`blockify`: flatten blocks and trim padding to ``n``."""
    x_blocks = np.asarray(x_blocks)
    if x_blocks.ndim < 2:
        raise ValueError("unblockify expects at least 2 dims (blocks, block)")
    flat = x_blocks.reshape(x_blocks.shape[:-2] + (-1,))
    if n > flat.shape[-1]:
        raise ValueError(
            f"cannot trim to {n}; only {flat.shape[-1]} padded entries exist"
        )
    return flat[..., :n]


def block_circulant_matvec(weights: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Compute ``W @ x`` for ``W`` given as a ``(p, q, b)`` block grid.

    ``x`` has length ``q*b``; the result has length ``p*b``.  Each output
    block is ``sum_q C(w[p, q]) x_q`` — the inner loop of paper
    Algorithm 1, executed for all blocks at once in the frequency domain.
    """
    weights = np.asarray(weights)
    x = np.asarray(x)
    p, q, b = _check_block_grid(weights)
    if x.shape != (q * b,):
        raise ValueError(f"expected x of length {q * b}, got shape {x.shape}")
    spectra = rfft(weights)  # (p, q, nb)
    x_spec = rfft(x.reshape(q, b))  # (q, nb)
    y_spec = np.einsum("pqf,qf->pf", spectra, x_spec)
    return irfft(y_spec, n=b).reshape(p * b)


def block_circulant_transpose_matvec(
    weights: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Compute ``W.T @ y`` for a ``(p, q, b)`` block grid (length ``p*b`` in)."""
    weights = np.asarray(weights)
    y = np.asarray(y)
    p, q, b = _check_block_grid(weights)
    if y.shape != (p * b,):
        raise ValueError(f"expected y of length {p * b}, got shape {y.shape}")
    spectra = rfft(weights)
    y_spec = rfft(y.reshape(p, b))
    x_spec = np.einsum("pqf,pf->qf", np.conj(spectra), y_spec)
    return irfft(x_spec, n=b).reshape(q * b)


def block_circulant_forward_batch(
    weight_spectra: np.ndarray, x_blocks: np.ndarray
) -> np.ndarray:
    """Batched forward product in the frequency domain.

    ``weight_spectra`` is ``rfft`` of the ``(p, q, b)`` grid (shape
    ``(p, q, nb)``); ``x_blocks`` is ``(batch, q, b)``.  Returns the output
    blocks ``(batch, p, b)``.  This is the inference kernel: the weight
    spectra are precomputed once (paper section IV-A).
    """
    weight_spectra = np.asarray(weight_spectra)
    x_blocks = np.asarray(x_blocks)
    b = x_blocks.shape[-1]
    x_spec = rfft(x_blocks)  # (batch, q, nb)
    y_spec = np.einsum("pqf,nqf->npf", weight_spectra, x_spec)
    return irfft(y_spec, n=b)


def block_circulant_backward_batch(
    weight_spectra: np.ndarray,
    x_blocks: np.ndarray,
    grad_blocks: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched gradients of the block-circulant product (paper Algorithm 2).

    Arguments: precomputed ``rfft`` of the ``(p, q, b)`` weight grid, the
    saved input blocks ``(batch, q, b)``, and the upstream gradient blocks
    ``(batch, p, b)``.  Returns ``(grad_weights, grad_x_blocks)`` in the
    time domain with shapes ``(p, q, b)`` and ``(batch, q, b)``.  Both are
    single frequency-domain contractions — O(n log n) per block versus the
    O(n^2) of dense backprop.
    """
    x_blocks = np.asarray(x_blocks)
    grad_blocks = np.asarray(grad_blocks)
    b = x_blocks.shape[-1]
    x_spec = rfft(x_blocks)  # (batch, q, nb)
    g_spec = rfft(grad_blocks)  # (batch, p, nb)
    # dL/dw[p, q] = sum_batch correlate(x_q, g_p): conj(X) * G in frequency.
    grad_w_spec = np.einsum("nqf,npf->pqf", np.conj(x_spec), g_spec)
    # dL/dx[q] = sum_p correlate(w_pq, g_p): conj(W) * G in frequency.
    grad_x_spec = np.einsum("pqf,npf->nqf", np.conj(weight_spectra), g_spec)
    return irfft(grad_w_spec, n=b), irfft(grad_x_spec, n=b)


def block_circulant_to_dense(weights: np.ndarray) -> np.ndarray:
    """Expand a ``(p, q, b)`` block grid to its dense ``(p*b, q*b)`` matrix."""
    weights = np.asarray(weights)
    p, q, b = _check_block_grid(weights)
    dense = np.zeros((p * b, q * b), dtype=weights.dtype)
    shift = (np.arange(b)[:, None] - np.arange(b)[None, :]) % b
    for i in range(p):
        for j in range(q):
            dense[i * b : (i + 1) * b, j * b : (j + 1) * b] = weights[i, j][shift]
    return dense


def _check_block_grid(weights: np.ndarray) -> tuple[int, int, int]:
    """Validate a ``(p, q, b)`` block grid and return its dimensions."""
    if weights.ndim != 3:
        raise ValueError(
            f"block grid must be 3-D (p, q, block); got shape {weights.shape}"
        )
    p, q, b = weights.shape
    if min(p, q, b) < 1:
        raise ValueError(f"block grid dimensions must be positive: {weights.shape}")
    return p, q, b
