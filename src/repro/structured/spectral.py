"""Version-keyed caching of block-circulant weight spectra.

The paper's deployment trick (section IV-A: "simply keep the FFT result
FFT(w_i)") applies during training too: between two weight updates the
``rfft`` of the ``(p, q, b)`` weight grid is constant, so recomputing it
on every forward call wastes the dominant share of small-batch inference
time.  :class:`SpectrumCache` memoizes the half-spectra of one weight
tensor, keyed on the tensor's monotonic ``version`` counter (see
:class:`repro.nn.tensor.Tensor`): optimizer steps, ``load_state_dict``,
and ``from_dense`` all rebind ``tensor.data`` and thereby advance the
version, which invalidates the cache on the next lookup.

The cached array is marked read-only: every forward/backward pass of a
layer shares the same ndarray, so an accidental in-place write would
corrupt all subsequent calls silently.
"""

from __future__ import annotations

import numpy as np

from ..fft import rfft

__all__ = ["SpectrumCache", "freq_major"]


def freq_major(spectra: np.ndarray) -> np.ndarray:
    """Contiguous frequency-major ``(nb, p, q)`` copy of ``(p, q, nb)`` spectra.

    This is the exact layout the batched-GEMM contraction consumes
    (``weight_fm`` of :func:`~repro.structured.ops.block_circulant_forward_batch`);
    every cache that stores it goes through this helper so the rule lives
    in one place.
    """
    return np.ascontiguousarray(spectra.transpose(2, 0, 1))


class SpectrumCache:
    """Memoized ``rfft`` of a single weight tensor, keyed by its version.

    One instance lives per block-circulant layer.  ``get(weight)`` returns
    the ``(p, q, b // 2 + 1)`` half-spectra of the layer's ``(p, q, b)``
    grid, recomputing only when ``weight.version`` has moved past the
    version the cache was filled at — i.e. once per weight update during
    training and exactly once across an entire inference run.
    """

    __slots__ = (
        "_version", "_data_ref", "_spectra", "_freq_major", "hits", "misses"
    )

    def __init__(self) -> None:
        self._version: int | None = None
        self._data_ref: np.ndarray | None = None
        self._spectra: np.ndarray | None = None
        self._freq_major: np.ndarray | None = None
        self.hits = 0
        self.misses = 0

    def _ensure(self, weight) -> None:
        # Key on the version counter AND the data array's identity: a
        # freshly constructed Parameter starts at version 0 again, so the
        # counter alone cannot tell a swapped-in weight from the cached
        # one.  Holding the array reference also pins its id.
        version = weight.version
        if (
            self._version != version
            or self._data_ref is not weight.data
            or self._spectra is None
        ):
            spectra = rfft(weight.data)
            spectra.setflags(write=False)
            self._spectra = spectra
            self._freq_major = None
            self._version = version
            self._data_ref = weight.data
            self.misses += 1
        else:
            self.hits += 1

    def get(self, weight) -> np.ndarray:
        """Half-spectra of ``weight.data``, cached across calls.

        ``weight`` is any object with ``data`` (real ndarray) and
        ``version`` (int) attributes — in practice a
        :class:`~repro.nn.module.Parameter`.
        """
        self._ensure(weight)
        return self._spectra

    def get_pair(self, weight) -> tuple[np.ndarray, np.ndarray]:
        """``(spectra, freq_major)``: the ``(p, q, nb)`` half-spectra plus
        their contiguous frequency-major ``(nb, p, q)`` transpose.

        The frequency-major copy is what the batched-GEMM contraction
        consumes directly; materializing it once per weight version keeps
        ``matmul`` from re-buffering a strided view on every forward.
        """
        self._ensure(weight)
        if self._freq_major is None:
            fm = freq_major(self._spectra)
            fm.setflags(write=False)
            self._freq_major = fm
        return self._spectra, self._freq_major

    def invalidate(self) -> None:
        """Drop the cached spectra; the next ``get`` recomputes."""
        self._version = None
        self._data_ref = None
        self._spectra = None
        self._freq_major = None
