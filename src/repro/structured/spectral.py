"""Version- and dtype-keyed caching of block-circulant weight spectra.

The paper's deployment trick (section IV-A: "simply keep the FFT result
FFT(w_i)") applies during training too: between two weight updates the
``rfft`` of the ``(p, q, b)`` weight grid is constant, so recomputing it
on every forward call wastes the dominant share of small-batch inference
time.  :class:`SpectrumCache` memoizes the half-spectra of one weight
tensor, keyed on the tensor's monotonic ``version`` counter (see
:class:`repro.nn.tensor.Tensor`): optimizer steps, ``load_state_dict``,
and ``from_dense`` all rebind ``tensor.data`` and thereby advance the
version, which invalidates the cache on the next lookup.

Entries are *additionally keyed on the complex dtype* of the spectra.  A
frozen fp32 session (:class:`repro.precision.PrecisionPolicy`) wants
complex64 spectra while training and fp64 sessions want complex128;
keying on dtype guarantees that switching a session between precisions
can never serve a spectrum of the wrong precision.  The base spectra are
always computed at the weight's native (double) precision and narrower
dtypes are derived by a single rounding, so complex64 spectra are the
correctly-rounded versions of the complex128 ones.

The cached arrays are marked read-only: every forward/backward pass of a
layer shares the same ndarray, so an accidental in-place write would
corrupt all subsequent calls silently.
"""

from __future__ import annotations

import numpy as np

from ..fft import rfft

__all__ = ["SpectrumCache", "freq_major"]


def freq_major(spectra: np.ndarray) -> np.ndarray:
    """Contiguous frequency-major ``(nb, p, q)`` copy of ``(p, q, nb)`` spectra.

    This is the exact layout the batched-GEMM contraction consumes
    (``weight_fm`` of :func:`~repro.structured.ops.block_circulant_forward_batch`);
    every cache that stores it goes through this helper so the rule lives
    in one place.
    """
    return np.ascontiguousarray(spectra.transpose(2, 0, 1))


class SpectrumCache:
    """Memoized ``rfft`` of a single weight tensor, keyed by version and dtype.

    One instance lives per block-circulant layer.  ``get(weight)`` returns
    the ``(p, q, b // 2 + 1)`` half-spectra of the layer's ``(p, q, b)``
    grid, recomputing only when ``weight.version`` has moved past the
    version the cache was filled at — i.e. once per weight update during
    training and exactly once across an entire inference run.  ``get``
    and ``get_pair`` take an optional complex ``dtype`` (default: the
    weight's native spectrum dtype, complex128 for float64 weights); each
    requested dtype is cached independently.
    """

    __slots__ = (
        "_version", "_data_ref", "_base", "_spectra", "_freq_major",
        "hits", "misses",
    )

    def __init__(self) -> None:
        self._version: int | None = None
        self._data_ref: np.ndarray | None = None
        self._base: np.ndarray | None = None
        self._spectra: dict[np.dtype, np.ndarray] = {}
        self._freq_major: dict[np.dtype, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def _ensure(self, weight, dtype) -> np.dtype:
        # Key on the version counter AND the data array's identity: a
        # freshly constructed Parameter starts at version 0 again, so the
        # counter alone cannot tell a swapped-in weight from the cached
        # one.  Holding the array reference also pins its id.
        version = weight.version
        recomputed = False
        if (
            self._version != version
            or self._data_ref is not weight.data
            or self._base is None
        ):
            base = rfft(weight.data)
            base.setflags(write=False)
            self._base = base
            self._spectra = {base.dtype: base}
            self._freq_major = {}
            self._version = version
            self._data_ref = weight.data
            self.misses += 1
            recomputed = True
        dtype = self._base.dtype if dtype is None else np.dtype(dtype)
        if dtype not in self._spectra:
            # Derive narrower (or wider) spectra from the base by one
            # rounding; counts as a miss because real work happened.
            derived = self._base.astype(dtype)
            derived.setflags(write=False)
            self._spectra[dtype] = derived
            if not recomputed:
                self.misses += 1
        elif not recomputed:
            self.hits += 1
        return dtype

    def get(self, weight, dtype=None) -> np.ndarray:
        """Half-spectra of ``weight.data`` at ``dtype``, cached across calls.

        ``weight`` is any object with ``data`` (real ndarray) and
        ``version`` (int) attributes — in practice a
        :class:`~repro.nn.module.Parameter`.  ``dtype=None`` returns the
        weight's native spectrum dtype.
        """
        dtype = self._ensure(weight, dtype)
        return self._spectra[dtype]

    def get_pair(self, weight, dtype=None) -> tuple[np.ndarray, np.ndarray]:
        """``(spectra, freq_major)``: the ``(p, q, nb)`` half-spectra plus
        their contiguous frequency-major ``(nb, p, q)`` transpose, both at
        ``dtype``.

        The frequency-major copy is what the batched-GEMM contraction
        consumes directly; materializing it once per weight version keeps
        ``matmul`` from re-buffering a strided view on every forward.
        """
        dtype = self._ensure(weight, dtype)
        if dtype not in self._freq_major:
            fm = freq_major(self._spectra[dtype])
            fm.setflags(write=False)
            self._freq_major[dtype] = fm
        return self._spectra[dtype], self._freq_major[dtype]

    def invalidate(self) -> None:
        """Drop all cached spectra; the next ``get`` recomputes."""
        self._version = None
        self._data_ref = None
        self._base = None
        self._spectra = {}
        self._freq_major = {}
