"""Analytical runtime model for the paper's two software implementations.

The paper ships the same inference engine twice: through OpenCV's Java API
and through native C++ with the Android NDK (section V).  Each layer's
latency is modeled with a saturating-throughput law:

    time(layer) = flops / (peak * eff),   eff = flops / (flops + ramp)

equivalently ``time = (flops + ramp) / peak``: every kernel launch pays a
fixed ramp-up cost (JNI crossing, Mat allocation, cache warm-up) worth
``ramp`` flop-equivalents, and only layers much larger than ``ramp``
approach the platform's peak throughput.  ``peak`` is
``clock * relative_ipc * SIMD_LANES * peak_factor`` giga-ops/s, where the
``peak_factor`` separates the two software stacks: the C++/NDK build
reaches ~2.4x the sustained throughput of the Java binding (managed heap,
no NEON auto-vectorization across the JNI boundary).

This two-regime behavior is exactly what the paper's tables show: the
MNIST networks are launch-dominated (Arch. 1 is only 2-9% slower than the
half-size Arch. 2) while the CIFAR-10 network is throughput-dominated
(~60x slower despite ~6000x the arithmetic).

Calibration: the five free constants (two peak factors, the shared ramp,
two platform IPC ratios in :mod:`repro.embedded.platform`) were fit by
least squares to the 16 runtime measurements of paper Tables II and III;
the residuals are all within 11% (recorded in EXPERIMENTS.md).  The
battery penalty reproduces the section V-B observation: unplugged, Java
degrades ~14% while C++ is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cost_model import ModelCost
from .platform import PlatformSpec

__all__ = [
    "ImplementationProfile",
    "JAVA",
    "CPP",
    "IMPLEMENTATIONS",
    "SIMD_LANES",
    "estimate_runtime_us",
]

#: Effective NEON fp32 operations per cycle at full issue (4-wide FMA = 8
#: flops/cycle per core, times the 4 primary cores OpenCV parallelizes
#: across).
SIMD_LANES = 32.0


@dataclass(frozen=True)
class ImplementationProfile:
    """Software-stack efficiency parameters (see module docstring)."""

    name: str
    peak_factor: float  # fraction of SIMD peak the stack sustains
    ramp_flops: float  # per-kernel-launch overhead, in flop-equivalents
    battery_penalty: float  # latency multiplier when unplugged

    def __post_init__(self):
        if not 0.0 < self.peak_factor <= 1.0:
            raise ValueError(f"peak_factor must be in (0, 1], got {self.peak_factor}")
        if self.ramp_flops < 0:
            raise ValueError(f"ramp_flops must be >= 0, got {self.ramp_flops}")
        if self.battery_penalty < 1.0:
            raise ValueError(f"battery_penalty must be >= 1, got {self.battery_penalty}")


#: OpenCV through the Java API (JNI per call, managed heap).
JAVA = ImplementationProfile(
    name="Java",
    peak_factor=0.050,
    ramp_flops=2.5e5,
    battery_penalty=1.14,
)

#: OpenCV through native C++ (Android NDK).
CPP = ImplementationProfile(
    name="C++",
    peak_factor=0.122,
    ramp_flops=2.5e5,
    battery_penalty=1.0,
)

IMPLEMENTATIONS: dict[str, ImplementationProfile] = {"java": JAVA, "cpp": CPP}


def estimate_runtime_us(
    cost: ModelCost,
    platform: PlatformSpec,
    implementation: ImplementationProfile,
    battery: bool = False,
) -> float:
    """Predicted per-image inference latency in microseconds."""
    peak_gops = (
        platform.effective_gops * SIMD_LANES * implementation.peak_factor
    )
    total_us = 0.0
    for layer in cost.layers:
        if layer.flops <= 0.0:
            continue  # reshapes and inference no-ops launch no kernel
        total_us += (layer.flops + implementation.ramp_flops) / (peak_gops * 1e3)
    if battery:
        total_us *= implementation.battery_penalty
    return total_us
