"""Deployment artifacts and the standalone inference engine (paper Fig. 4).

The paper's deployment flow stores, for every block-circulant layer, the
*FFT of the defining vectors* rather than the weights themselves
("we can simply keep the FFT result FFT(w_i)", section IV-A).  This module
implements that flow:

* :meth:`DeployedModel.from_model` converts a trained
  :class:`~repro.nn.module.Sequential` into a flat list of layer records
  whose block-circulant weights are ``rfft`` half-spectra (complex64),
* :meth:`DeployedModel.predict_proba` runs pure-numpy inference straight
  from the spectra — no autograd, no weight reconstruction — which is the
  engine whose op counts the runtime simulator prices,
* :meth:`DeployedModel.save` / :meth:`DeployedModel.load` round-trip the
  artifact through a single ``.npz`` file (the "Parameters" file of
  Fig. 4),
* fast/batched/served inference lives behind the
  :class:`~repro.engine.Engine` facade now —
  ``Engine(model=deployed, ...)`` pools frozen sessions per precision
  and serves several named artifacts from one TCP port;
  :meth:`DeployedModel.to_session` and :meth:`DeployedModel.serve`
  remain as thin deprecation shims over it.

Dropout layers vanish at deployment; batch-norm folds into a per-feature
affine transform.
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path

import numpy as np

from ..exceptions import DeploymentError
from ..fft import rfft
from ..nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    Dropout,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from ..nn.module import Sequential
from ..runtime import InferenceSession
from ..runtime.session import iter_batches as _iter_batches
from ..runtime.session import pool_windows as _pool_windows
from ..runtime.session import softmax as _softmax
from ..structured import block_circulant_forward_batch
from ..nn.functional import im2col

__all__ = ["DeployedModel", "FORMAT_VERSION"]

FORMAT_VERSION = 1


class DeployedModel:
    """Frozen inference-only model built from layer records.

    Each record is a dict with a ``kind`` plus kind-specific arrays and
    scalars; construct via :meth:`from_model` or :meth:`load`.
    """

    def __init__(self, records: list[dict]):
        if not records:
            raise DeploymentError("deployed model has no layers")
        self.records = records

    # ------------------------------------------------------------------
    # Conversion from a trained model
    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model: Sequential) -> "DeployedModel":
        """Freeze a trained Sequential into deployment records."""
        records: list[dict] = []
        for layer in model:
            if isinstance(layer, BlockCirculantLinear):
                records.append(
                    {
                        "kind": "bc_linear",
                        "spectra": rfft(layer.weight.data).astype(np.complex64),
                        "bias": None
                        if layer.bias is None
                        else layer.bias.data.astype(np.float32),
                        "in_features": layer.in_features,
                        "out_features": layer.out_features,
                        "block_size": layer.block_size,
                    }
                )
            elif isinstance(layer, Linear):
                records.append(
                    {
                        "kind": "linear",
                        "weight": layer.weight.data.astype(np.float32),
                        "bias": None
                        if layer.bias is None
                        else layer.bias.data.astype(np.float32),
                    }
                )
            elif isinstance(layer, BlockCirculantConv2d):
                records.append(
                    {
                        "kind": "bc_conv",
                        "spectra": rfft(layer.weight.data).astype(np.complex64),
                        "bias": None
                        if layer.bias is None
                        else layer.bias.data.astype(np.float32),
                        "in_channels": layer.in_channels,
                        "out_channels": layer.out_channels,
                        "kernel_size": layer.kernel_size,
                        "block_size": layer.block_size,
                        "stride": layer.stride,
                        "padding": layer.padding,
                        "channel_blocks": layer.channel_blocks,
                    }
                )
            elif isinstance(layer, Conv2d):
                records.append(
                    {
                        "kind": "conv",
                        "weight": layer.weight.data.astype(np.float32),
                        "bias": None
                        if layer.bias is None
                        else layer.bias.data.astype(np.float32),
                        "stride": layer.stride,
                        "padding": layer.padding,
                    }
                )
            elif isinstance(layer, ReLU):
                records.append({"kind": "relu"})
            elif isinstance(layer, LeakyReLU):
                records.append({"kind": "leaky_relu", "slope": layer.negative_slope})
            elif isinstance(layer, Sigmoid):
                records.append({"kind": "sigmoid"})
            elif isinstance(layer, Tanh):
                records.append({"kind": "tanh"})
            elif isinstance(layer, Softmax):
                records.append({"kind": "softmax"})
            elif isinstance(layer, Flatten):
                records.append({"kind": "flatten"})
            elif isinstance(layer, MaxPool2d):
                records.append(
                    {"kind": "maxpool", "kernel": layer.kernel_size,
                     "stride": layer.stride}
                )
            elif isinstance(layer, AvgPool2d):
                records.append(
                    {"kind": "avgpool", "kernel": layer.kernel_size,
                     "stride": layer.stride}
                )
            elif isinstance(layer, Dropout):
                continue  # identity at inference
            elif isinstance(layer, (BatchNorm1d, BatchNorm2d)):
                std = np.sqrt(layer.running_var + layer.eps)
                scale = layer.gamma.data / std
                shift = layer.beta.data - layer.running_mean * scale
                records.append(
                    {
                        "kind": "affine",
                        "scale": scale.astype(np.float32),
                        "shift": shift.astype(np.float32),
                        "per_channel": isinstance(layer, BatchNorm2d),
                    }
                )
            else:
                raise DeploymentError(
                    f"cannot deploy layer type {type(layer).__name__}"
                )
        return cls(records)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _run_layer(self, record: dict, x: np.ndarray) -> np.ndarray:
        kind = record["kind"]
        if kind == "bc_linear":
            spectra = record["spectra"].astype(np.complex128)
            b = record["block_size"]
            batch = x.shape[0]
            q = spectra.shape[1]
            padded = np.zeros((batch, q * b))
            padded[:, : record["in_features"]] = x
            blocks = padded.reshape(batch, q, b)
            out = block_circulant_forward_batch(spectra, blocks)
            out = out.reshape(batch, -1)[:, : record["out_features"]]
            if record["bias"] is not None:
                out = out + record["bias"]
            return out
        if kind == "linear":
            out = x @ record["weight"].astype(np.float64).T
            if record["bias"] is not None:
                out = out + record["bias"]
            return out
        if kind == "conv":
            weight = record["weight"].astype(np.float64)
            out_c, in_c, k, _ = weight.shape
            stride, padding = record["stride"], record["padding"]
            batch, _, height, width = x.shape
            out_h = (height + 2 * padding - k) // stride + 1
            out_w = (width + 2 * padding - k) // stride + 1
            cols = im2col(x, k, stride, padding)
            out = cols @ weight.reshape(out_c, -1).T
            out = out.transpose(0, 2, 1).reshape(batch, out_c, out_h, out_w)
            if record["bias"] is not None:
                out = out + record["bias"].astype(np.float64)[None, :, None, None]
            return out
        if kind == "bc_conv":
            spectra = record["spectra"].astype(np.complex128)
            b = record["block_size"]
            k = record["kernel_size"]
            stride, padding = record["stride"], record["padding"]
            in_c, out_c = record["in_channels"], record["out_channels"]
            channel_blocks = record["channel_blocks"]
            batch, _, height, width = x.shape
            out_h = (height + 2 * padding - k) // stride + 1
            out_w = (width + 2 * padding - k) // stride + 1
            positions = out_h * out_w
            cols = im2col(x, k, stride, padding)
            by_pos = cols.reshape(batch, positions, in_c, k * k).transpose(0, 1, 3, 2)
            padded_c = channel_blocks * b
            if padded_c != in_c:
                padded = np.zeros((batch, positions, k * k, padded_c))
                padded[..., :in_c] = by_pos
                by_pos = padded
            blocks = by_pos.reshape(batch * positions, -1, b)
            out = block_circulant_forward_batch(spectra, blocks)
            out = out.reshape(batch * positions, -1)[:, :out_c]
            out = out.reshape(batch, positions, out_c).transpose(0, 2, 1)
            out = out.reshape(batch, out_c, out_h, out_w)
            if record["bias"] is not None:
                out = out + record["bias"].astype(np.float64)[None, :, None, None]
            return out
        if kind == "relu":
            return np.maximum(x, 0.0)
        if kind == "leaky_relu":
            return np.where(x > 0.0, x, record["slope"] * x)
        if kind == "sigmoid":
            return 1.0 / (1.0 + np.exp(-x))
        if kind == "tanh":
            return np.tanh(x)
        if kind == "softmax":
            return _softmax(x)
        if kind == "flatten":
            return x.reshape(x.shape[0], -1)
        if kind == "maxpool":
            windows, out_h, out_w = _pool_windows(
                x, record["kernel"], record["stride"]
            )
            return windows.max(axis=-1).reshape(
                x.shape[0], x.shape[1], out_h, out_w
            )
        if kind == "avgpool":
            windows, out_h, out_w = _pool_windows(
                x, record["kernel"], record["stride"]
            )
            return windows.mean(axis=-1).reshape(
                x.shape[0], x.shape[1], out_h, out_w
            )
        if kind == "affine":
            scale = record["scale"].astype(np.float64)
            shift = record["shift"].astype(np.float64)
            if record["per_channel"]:
                return x * scale[None, :, None, None] + shift[None, :, None, None]
            return x * scale + shift
        raise DeploymentError(f"unknown layer kind {kind!r}")

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Raw engine output (logits, or probabilities after a softmax
        record) for a batch of inputs."""
        x = np.asarray(inputs, dtype=np.float64)
        if x.ndim == 1:
            x = x[None]
        for record in self.records:
            x = self._run_layer(record, x)
        return x

    def predict_proba(
        self, inputs: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """Class probabilities; applies softmax if the record list does not
        end with one (training-time models output logits).

        ``batch_size`` follows the
        :meth:`~repro.runtime.session.InferenceSession.predict_proba`
        contract exactly: ``None`` (default) runs the whole input as one
        batch; a positive value streams ``batch_size``-row chunks,
        bounding peak activation memory; zero or negative raises
        :class:`ValueError` (it is *not* "no batching" — that is
        ``None``).
        """
        x = np.asarray(inputs, dtype=np.float64)
        if x.ndim == 1:
            x = x[None]
        outputs = []
        for chunk in _iter_batches(x, batch_size):
            out = self.forward(chunk)
            if self.records[-1]["kind"] != "softmax":
                out = _softmax(out)
            outputs.append(out)
        return outputs[0] if len(outputs) == 1 else np.concatenate(outputs)

    def predict(
        self, inputs: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """Predicted integer labels (``batch_size`` as in
        :meth:`predict_proba`)."""
        return self.predict_proba(inputs, batch_size=batch_size).argmax(axis=-1)

    def to_session(
        self,
        precision=None,
        executor=None,
        conv_tile: int | None = None,
        row_shards: int | None = None,
    ) -> InferenceSession:
        """Deprecated: compile the records into a frozen session.

        Use the :class:`~repro.engine.Engine` facade instead —
        ``Engine(model=deployed, precision=...)`` pools one session per
        precision and serves several models from one object::

            engine = Engine(model=deployed, precisions=("fp64", "fp32"))
            engine.predict(x, precision="fp32")

        This shim routes through that facade (bitwise-equal by
        construction — the facade calls the same
        :meth:`InferenceSession.from_deployed` compile), except when
        ``executor`` is a pre-built
        :class:`~repro.runtime.executors.PlanExecutor` instance, which a
        declarative config cannot own — that case compiles directly.
        The caller owns the returned session; close it when done.
        """
        warnings.warn(
            "DeployedModel.to_session() is deprecated; use "
            "repro.engine.Engine(model=deployed, ...).session() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..engine import Engine
        from ..precision import PrecisionPolicy
        from ..runtime.executors import PlanExecutor

        if isinstance(executor, PlanExecutor):
            return InferenceSession.from_deployed(
                self,
                precision=precision,
                executor=executor,
                conv_tile=conv_tile,
                row_shards=row_shards,
            )
        name = PrecisionPolicy.resolve(precision).name
        engine = Engine(
            model=self,
            precisions=(name,),
            executor=executor or "serial",
            conv_tile=conv_tile,
            row_shards=row_shards,
        )
        # The engine object is discarded: ownership of the single pooled
        # session transfers to the caller, exactly as before.
        return engine.session()

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int | None = None,
        precision=None,
        workers: int = 1,
        transport: str = "pipe",
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        conv_tile: int | None = None,
        on_ready=None,
    ) -> None:
        """Deprecated: serve this artifact over TCP (blocking).

        Use the :class:`~repro.engine.Engine` facade instead — it pools
        several precisions and hosts several named models behind one
        server::

            Engine(model=deployed, precisions=("fp64", "fp32")).serve()

        This shim builds exactly that single-model engine (``workers``
        clamped on single-CPU hosts, as before) and blocks in
        :meth:`~repro.engine.Engine.serve`; the banner/``on_ready``
        contract is unchanged.
        """
        warnings.warn(
            "DeployedModel.serve() is deprecated; use "
            "repro.engine.Engine(model=deployed, ...).serve() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..engine import Engine
        from ..precision import PrecisionPolicy
        from ..runtime.executors import effective_workers

        workers = effective_workers(workers)
        engine = Engine(
            model=self,
            precisions=(PrecisionPolicy.resolve(precision).name,),
            executor="sharded" if workers > 1 else "serial",
            workers=workers,
            transport=transport,
            conv_tile=conv_tile,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
        )
        try:
            engine.serve(host=host, port=port, on_ready=on_ready)
        finally:
            engine.close()

    def time_inference(
        self, inputs: np.ndarray, repeats: int = 3
    ) -> float:
        """Host wall-clock microseconds per image (best of ``repeats``).

        This measures *this machine*, complementing the Table I platform
        predictions from :class:`~repro.embedded.profiler.InferenceProfiler`.
        """
        if repeats <= 0:
            raise ValueError(f"repeats must be positive, got {repeats}")
        inputs = np.asarray(inputs)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            self.forward(inputs)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
        count = 1 if inputs.ndim == 1 else inputs.shape[0]
        return best / count * 1e6

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Total bytes of all stored arrays (the deployed model size)."""
        total = 0
        for record in self.records:
            for value in record.values():
                if isinstance(value, np.ndarray):
                    total += value.nbytes
        return total

    def save(self, path: str | Path) -> None:
        """Write the artifact to a single ``.npz`` file."""
        path = Path(path)
        header = []
        arrays: dict[str, np.ndarray] = {}
        for index, record in enumerate(self.records):
            meta = {}
            for key, value in record.items():
                if isinstance(value, np.ndarray):
                    arrays[f"layer{index}_{key}"] = value
                    meta[key] = f"@layer{index}_{key}"
                else:
                    meta[key] = value
            header.append(meta)
        arrays["__header__"] = np.frombuffer(
            json.dumps({"version": FORMAT_VERSION, "layers": header}).encode(),
            dtype=np.uint8,
        )
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "DeployedModel":
        """Read an artifact written by :meth:`save`."""
        path = Path(path)
        with np.load(path) as data:
            if "__header__" not in data:
                raise DeploymentError(f"{path} is not a deployed-model file")
            header = json.loads(bytes(data["__header__"].tobytes()).decode())
            if header.get("version") != FORMAT_VERSION:
                raise DeploymentError(
                    f"unsupported format version {header.get('version')}"
                )
            records = []
            for meta in header["layers"]:
                record = {}
                for key, value in meta.items():
                    if isinstance(value, str) and value.startswith("@"):
                        record[key] = data[value[1:]]
                    else:
                        record[key] = value
                records.append(record)
        return cls(records)
