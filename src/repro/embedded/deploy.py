"""Deployment artifacts and the standalone inference engine (paper Fig. 4).

The paper's deployment flow stores, for every block-circulant layer, the
*FFT of the defining vectors* rather than the weights themselves
("we can simply keep the FFT result FFT(w_i)", section IV-A).  This module
implements that flow:

* :meth:`DeployedModel.from_model` converts a trained
  :class:`~repro.nn.module.Sequential` into a flat list of layer records
  whose block-circulant weights are ``rfft`` half-spectra (complex64),
* :meth:`DeployedModel.predict_proba` runs pure-numpy inference straight
  from the spectra — no autograd, no weight reconstruction — which is the
  engine whose op counts the runtime simulator prices,
* :meth:`DeployedModel.save` / :meth:`DeployedModel.load` round-trip the
  artifact through a single ``.npz`` file (the "Parameters" file of
  Fig. 4).  The on-disk layout is **format v2**: alongside the layer
  arrays, the header carries compression metadata (per-layer block
  size, projection error), quantization metadata (per-layer Q-format,
  with weights stored as fixed-point integer code points and
  dequantized at load), and provenance (pipeline config hash, training
  summary) — see ``docs/pipeline.md``.  Version-1 files written by
  earlier releases still load bitwise; ``save(..., version=1)`` keeps
  writing them for unquantized models,
* fast/batched/served inference lives behind the
  :class:`~repro.engine.Engine` facade now —
  ``Engine(model=deployed, ...)`` pools frozen sessions per precision
  and serves several named artifacts from one TCP port;
  :meth:`DeployedModel.to_session` and :meth:`DeployedModel.serve`
  remain as thin deprecation shims over it.

Dropout layers vanish at deployment; batch-norm folds into a per-feature
affine transform.
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path

import numpy as np

from ..exceptions import DeploymentError
from ..fft import rfft
from ..nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    Dropout,
    FFTLayer1d,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Pointwise1d,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    seq_matmul,
    shift_right,
)
from ..nn.module import Sequential
from ..runtime import InferenceSession
from ..runtime.session import iter_batches as _iter_batches
from ..runtime.session import pool_windows as _pool_windows
from ..runtime.session import softmax as _softmax
from ..structured import block_circulant_forward_batch
from ..nn.functional import im2col

__all__ = ["DeployedModel", "FORMAT_VERSION", "LEGACY_FORMAT_VERSION"]

FORMAT_VERSION = 2
LEGACY_FORMAT_VERSION = 1

#: Record keys whose float arrays are *derived* from the fixed-point
#: code points when a record is quantized: the artifact stores only the
#: integer arrays and the loader rebuilds these (spectra via ``rfft``).
_DERIVED_WHEN_QUANTIZED = {
    "spectra": "weight_q",
    "weight": "weight_q",
    "bias": "bias_q",
}


def _quantize_weight(values: np.ndarray, total_bits: int):
    """(codes, qformat-as-list, relative error, dequantized float64)."""
    from ..quantize.fixed_point import (  # local: avoid a package cycle
        choose_qformat,
        dequantize_ints,
        quantization_error,
        quantize_to_ints,
    )

    fmt = choose_qformat(values, total_bits)
    codes = quantize_to_ints(values, fmt)
    dequantized = dequantize_ints(codes, fmt)
    return (
        codes,
        [fmt.integer_bits, fmt.fraction_bits],
        quantization_error(values, fmt),
        dequantized,
    )


class DeployedModel:
    """Frozen inference-only model built from layer records.

    Each record is a dict with a ``kind`` plus kind-specific arrays and
    scalars; construct via :meth:`from_model` or :meth:`load`.
    Quantized records additionally carry ``weight_q`` / ``bias_q``
    integer code points with their ``qformat`` — the float arrays the
    runtime executes (``spectra`` / ``weight`` / ``bias``) are derived
    from them, and only the integers persist on disk.

    ``metadata`` is the JSON-able format-v2 header payload
    (compression / quantization / provenance sections, see
    ``docs/pipeline.md``); it round-trips through :meth:`save` /
    :meth:`load` and never affects inference.
    """

    def __init__(self, records: list[dict], metadata: dict | None = None):
        if not records:
            raise DeploymentError("deployed model has no layers")
        self.records = records
        self.metadata = dict(metadata or {})
        #: Format version of the file this model was loaded from
        #: (``None`` for models built in memory).
        self.source_version: int | None = None

    # ------------------------------------------------------------------
    # Conversion from a trained model
    # ------------------------------------------------------------------
    @classmethod
    def from_model(
        cls, model: Sequential, quantize_bits: int | None = None
    ) -> "DeployedModel":
        """Freeze a trained Sequential into deployment records.

        With ``quantize_bits`` set, every weight and bias of the compute
        layers (dense and block-circulant, linear and conv) is quantized
        to that fixed-point width with a per-tensor Q-format — the same
        dynamic-range rule as :func:`~repro.quantize.quantize_model` —
        and the records keep the integer code points for format-v2
        storage.  Spectra are computed *from the quantized weights*, so
        artifact inference matches a model quantized in place.
        Batch-norm folds to a float affine either way (its per-feature
        scale/shift are small and precision-critical).
        """
        if quantize_bits is not None and quantize_bits < 2:
            raise DeploymentError(
                f"quantize_bits must be >= 2, got {quantize_bits}"
            )

        def weight_fields(weight, bias, spectral):
            """Shared weight/bias capture, optionally fixed-point.

            ``q_error`` is the layer's *worst* relative quantization
            error across weight and bias — it feeds the documented
            ``10 x max_weight_error`` serving parity bound, so a bias
            that quantizes worse than the weights must not be hidden.
            """
            fields: dict = {}
            if quantize_bits is None:
                weight_f = weight
                bias_f = bias
            else:
                codes, qformat, q_error, weight_f = _quantize_weight(
                    weight, quantize_bits
                )
                fields.update(
                    weight_q=codes, qformat=qformat, q_error=q_error
                )
                bias_f = bias
                if bias is not None:
                    bcodes, bformat, bias_error, bias_f = _quantize_weight(
                        bias, quantize_bits
                    )
                    fields.update(
                        bias_q=bcodes,
                        bias_qformat=bformat,
                        q_error=max(q_error, bias_error),
                    )
            if spectral:
                fields["spectra"] = rfft(weight_f).astype(np.complex64)
            else:
                fields["weight"] = weight_f.astype(np.float32)
            fields["bias"] = (
                None if bias_f is None else bias_f.astype(np.float32)
            )
            return fields

        records: list[dict] = []
        for layer in model:
            if isinstance(layer, BlockCirculantLinear):
                records.append(
                    {
                        "kind": "bc_linear",
                        **weight_fields(
                            layer.weight.data,
                            None if layer.bias is None else layer.bias.data,
                            spectral=True,
                        ),
                        "in_features": layer.in_features,
                        "out_features": layer.out_features,
                        "block_size": layer.block_size,
                    }
                )
            elif isinstance(layer, Linear):
                records.append(
                    {
                        "kind": "linear",
                        **weight_fields(
                            layer.weight.data,
                            None if layer.bias is None else layer.bias.data,
                            spectral=False,
                        ),
                    }
                )
            elif isinstance(layer, BlockCirculantConv2d):
                records.append(
                    {
                        "kind": "bc_conv",
                        **weight_fields(
                            layer.weight.data,
                            None if layer.bias is None else layer.bias.data,
                            spectral=True,
                        ),
                        "in_channels": layer.in_channels,
                        "out_channels": layer.out_channels,
                        "kernel_size": layer.kernel_size,
                        "block_size": layer.block_size,
                        "stride": layer.stride,
                        "padding": layer.padding,
                        "channel_blocks": layer.channel_blocks,
                    }
                )
            elif isinstance(layer, Conv2d):
                records.append(
                    {
                        "kind": "conv",
                        **weight_fields(
                            layer.weight.data,
                            None if layer.bias is None else layer.bias.data,
                            spectral=False,
                        ),
                        "stride": layer.stride,
                        "padding": layer.padding,
                    }
                )
            elif isinstance(layer, FFTLayer1d):
                # Both taps stack into one (2, out, in) weight — [0] is
                # the dilated left tap, [1] the current-sample right tap
                # — so the shared quantization path covers them with a
                # single per-tensor Q-format.
                stacked = np.stack(
                    [layer.weight_l.data, layer.weight_r.data]
                )
                records.append(
                    {
                        "kind": "fft1d",
                        **weight_fields(
                            stacked,
                            None if layer.bias is None else layer.bias.data,
                            spectral=False,
                        ),
                        "in_channels": layer.in_channels,
                        "out_channels": layer.out_channels,
                        "dilation": layer.dilation,
                    }
                )
            elif isinstance(layer, Pointwise1d):
                records.append(
                    {
                        "kind": "pointwise1d",
                        **weight_fields(
                            layer.weight.data,
                            None if layer.bias is None else layer.bias.data,
                            spectral=False,
                        ),
                        "in_channels": layer.in_channels,
                        "out_channels": layer.out_channels,
                    }
                )
            elif isinstance(layer, ReLU):
                records.append({"kind": "relu"})
            elif isinstance(layer, LeakyReLU):
                records.append({"kind": "leaky_relu", "slope": layer.negative_slope})
            elif isinstance(layer, Sigmoid):
                records.append({"kind": "sigmoid"})
            elif isinstance(layer, Tanh):
                records.append({"kind": "tanh"})
            elif isinstance(layer, Softmax):
                records.append({"kind": "softmax"})
            elif isinstance(layer, Flatten):
                records.append({"kind": "flatten"})
            elif isinstance(layer, MaxPool2d):
                records.append(
                    {"kind": "maxpool", "kernel": layer.kernel_size,
                     "stride": layer.stride}
                )
            elif isinstance(layer, AvgPool2d):
                records.append(
                    {"kind": "avgpool", "kernel": layer.kernel_size,
                     "stride": layer.stride}
                )
            elif isinstance(layer, Dropout):
                continue  # identity at inference
            elif isinstance(layer, (BatchNorm1d, BatchNorm2d)):
                std = np.sqrt(layer.running_var + layer.eps)
                scale = layer.gamma.data / std
                shift = layer.beta.data - layer.running_mean * scale
                records.append(
                    {
                        "kind": "affine",
                        "scale": scale.astype(np.float32),
                        "shift": shift.astype(np.float32),
                        "per_channel": isinstance(layer, BatchNorm2d),
                    }
                )
            else:
                raise DeploymentError(
                    f"cannot deploy layer type {type(layer).__name__}"
                )
        return cls(records)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _run_layer(self, record: dict, x: np.ndarray) -> np.ndarray:
        kind = record["kind"]
        if kind == "bc_linear":
            spectra = record["spectra"].astype(np.complex128)
            b = record["block_size"]
            batch = x.shape[0]
            q = spectra.shape[1]
            padded = np.zeros((batch, q * b))
            padded[:, : record["in_features"]] = x
            blocks = padded.reshape(batch, q, b)
            out = block_circulant_forward_batch(spectra, blocks)
            out = out.reshape(batch, -1)[:, : record["out_features"]]
            if record["bias"] is not None:
                out = out + record["bias"]
            return out
        if kind == "linear":
            out = x @ record["weight"].astype(np.float64).T
            if record["bias"] is not None:
                out = out + record["bias"]
            return out
        if kind == "fft1d":
            weight = record["weight"].astype(np.float64)
            in_c, out_c = record["in_channels"], record["out_channels"]
            dilation = record["dilation"]
            batch, steps, _ = x.shape
            xl = shift_right(x, dilation)
            out = seq_matmul(
                x.reshape(-1, in_c), np.ascontiguousarray(weight[1].T)
            )
            out += seq_matmul(
                xl.reshape(-1, in_c), np.ascontiguousarray(weight[0].T)
            )
            if record["bias"] is not None:
                out += record["bias"].astype(np.float64)
            return out.reshape(batch, steps, out_c)
        if kind == "pointwise1d":
            weight = record["weight"].astype(np.float64)
            in_c, out_c = record["in_channels"], record["out_channels"]
            batch, steps, _ = x.shape
            out = seq_matmul(
                x.reshape(-1, in_c), np.ascontiguousarray(weight.T)
            )
            if record["bias"] is not None:
                out += record["bias"].astype(np.float64)
            return out.reshape(batch, steps, out_c)
        if kind == "conv":
            weight = record["weight"].astype(np.float64)
            out_c, in_c, k, _ = weight.shape
            stride, padding = record["stride"], record["padding"]
            batch, _, height, width = x.shape
            out_h = (height + 2 * padding - k) // stride + 1
            out_w = (width + 2 * padding - k) // stride + 1
            cols = im2col(x, k, stride, padding)
            out = cols @ weight.reshape(out_c, -1).T
            out = out.transpose(0, 2, 1).reshape(batch, out_c, out_h, out_w)
            if record["bias"] is not None:
                out = out + record["bias"].astype(np.float64)[None, :, None, None]
            return out
        if kind == "bc_conv":
            spectra = record["spectra"].astype(np.complex128)
            b = record["block_size"]
            k = record["kernel_size"]
            stride, padding = record["stride"], record["padding"]
            in_c, out_c = record["in_channels"], record["out_channels"]
            channel_blocks = record["channel_blocks"]
            batch, _, height, width = x.shape
            out_h = (height + 2 * padding - k) // stride + 1
            out_w = (width + 2 * padding - k) // stride + 1
            positions = out_h * out_w
            cols = im2col(x, k, stride, padding)
            by_pos = cols.reshape(batch, positions, in_c, k * k).transpose(0, 1, 3, 2)
            padded_c = channel_blocks * b
            if padded_c != in_c:
                padded = np.zeros((batch, positions, k * k, padded_c))
                padded[..., :in_c] = by_pos
                by_pos = padded
            blocks = by_pos.reshape(batch * positions, -1, b)
            out = block_circulant_forward_batch(spectra, blocks)
            out = out.reshape(batch * positions, -1)[:, :out_c]
            out = out.reshape(batch, positions, out_c).transpose(0, 2, 1)
            out = out.reshape(batch, out_c, out_h, out_w)
            if record["bias"] is not None:
                out = out + record["bias"].astype(np.float64)[None, :, None, None]
            return out
        if kind == "relu":
            return np.maximum(x, 0.0)
        if kind == "leaky_relu":
            return np.where(x > 0.0, x, record["slope"] * x)
        if kind == "sigmoid":
            return 1.0 / (1.0 + np.exp(-x))
        if kind == "tanh":
            return np.tanh(x)
        if kind == "softmax":
            return _softmax(x)
        if kind == "flatten":
            return x.reshape(x.shape[0], -1)
        if kind == "maxpool":
            windows, out_h, out_w = _pool_windows(
                x, record["kernel"], record["stride"]
            )
            return windows.max(axis=-1).reshape(
                x.shape[0], x.shape[1], out_h, out_w
            )
        if kind == "avgpool":
            windows, out_h, out_w = _pool_windows(
                x, record["kernel"], record["stride"]
            )
            return windows.mean(axis=-1).reshape(
                x.shape[0], x.shape[1], out_h, out_w
            )
        if kind == "affine":
            scale = record["scale"].astype(np.float64)
            shift = record["shift"].astype(np.float64)
            if record["per_channel"]:
                return x * scale[None, :, None, None] + shift[None, :, None, None]
            return x * scale + shift
        raise DeploymentError(f"unknown layer kind {kind!r}")

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Raw engine output (logits, or probabilities after a softmax
        record) for a batch of inputs."""
        x = np.asarray(inputs, dtype=np.float64)
        if x.ndim == 1:
            x = x[None]
        for record in self.records:
            x = self._run_layer(record, x)
        return x

    def predict_proba(
        self, inputs: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """Class probabilities; applies softmax if the record list does not
        end with one (training-time models output logits).

        ``batch_size`` follows the
        :meth:`~repro.runtime.session.InferenceSession.predict_proba`
        contract exactly: ``None`` (default) runs the whole input as one
        batch; a positive value streams ``batch_size``-row chunks,
        bounding peak activation memory; zero or negative raises
        :class:`ValueError` (it is *not* "no batching" — that is
        ``None``).
        """
        x = np.asarray(inputs, dtype=np.float64)
        if x.ndim == 1:
            x = x[None]
        outputs = []
        for chunk in _iter_batches(x, batch_size):
            out = self.forward(chunk)
            if self.records[-1]["kind"] != "softmax":
                out = _softmax(out)
            outputs.append(out)
        return outputs[0] if len(outputs) == 1 else np.concatenate(outputs)

    def predict(
        self, inputs: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """Predicted integer labels (``batch_size`` as in
        :meth:`predict_proba`)."""
        return self.predict_proba(inputs, batch_size=batch_size).argmax(axis=-1)

    def to_session(
        self,
        precision=None,
        executor=None,
        conv_tile: int | None = None,
        row_shards: int | None = None,
    ) -> InferenceSession:
        """Deprecated: compile the records into a frozen session.

        Use the :class:`~repro.engine.Engine` facade instead —
        ``Engine(model=deployed, precision=...)`` pools one session per
        precision and serves several models from one object::

            engine = Engine(model=deployed, precisions=("fp64", "fp32"))
            engine.predict(x, precision="fp32")

        This shim routes through that facade (bitwise-equal by
        construction — the facade calls the same
        :meth:`InferenceSession.from_deployed` compile), except when
        ``executor`` is a pre-built
        :class:`~repro.runtime.executors.PlanExecutor` instance, which a
        declarative config cannot own — that case compiles directly.
        The caller owns the returned session; close it when done.
        """
        warnings.warn(
            "DeployedModel.to_session() is deprecated; use "
            "repro.engine.Engine(model=deployed, ...).session() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..engine import Engine
        from ..precision import PrecisionPolicy
        from ..runtime.executors import PlanExecutor

        if isinstance(executor, PlanExecutor):
            return InferenceSession.from_deployed(
                self,
                precision=precision,
                executor=executor,
                conv_tile=conv_tile,
                row_shards=row_shards,
            )
        name = PrecisionPolicy.resolve(precision).name
        engine = Engine(
            model=self,
            precisions=(name,),
            executor=executor or "serial",
            conv_tile=conv_tile,
            row_shards=row_shards,
        )
        # The engine object is discarded: ownership of the single pooled
        # session transfers to the caller, exactly as before.
        return engine.session()

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int | None = None,
        precision=None,
        workers: int = 1,
        transport: str = "pipe",
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        conv_tile: int | None = None,
        on_ready=None,
    ) -> None:
        """Deprecated: serve this artifact over TCP (blocking).

        Use the :class:`~repro.engine.Engine` facade instead — it pools
        several precisions and hosts several named models behind one
        server::

            Engine(model=deployed, precisions=("fp64", "fp32")).serve()

        This shim builds exactly that single-model engine (``workers``
        clamped on single-CPU hosts, as before) and blocks in
        :meth:`~repro.engine.Engine.serve`; the banner/``on_ready``
        contract is unchanged.
        """
        warnings.warn(
            "DeployedModel.serve() is deprecated; use "
            "repro.engine.Engine(model=deployed, ...).serve() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..engine import Engine
        from ..precision import PrecisionPolicy
        from ..runtime.executors import effective_workers

        workers = effective_workers(workers)
        engine = Engine(
            model=self,
            precisions=(PrecisionPolicy.resolve(precision).name,),
            executor="sharded" if workers > 1 else "serial",
            workers=workers,
            transport=transport,
            conv_tile=conv_tile,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
        )
        try:
            engine.serve(host=host, port=port, on_ready=on_ready)
        finally:
            engine.close()

    def time_inference(
        self, inputs: np.ndarray, repeats: int = 3
    ) -> float:
        """Host wall-clock microseconds per image (best of ``repeats``).

        This measures *this machine*, complementing the Table I platform
        predictions from :class:`~repro.embedded.profiler.InferenceProfiler`.
        """
        if repeats <= 0:
            raise ValueError(f"repeats must be positive, got {repeats}")
        inputs = np.asarray(inputs)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            self.forward(inputs)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
        count = 1 if inputs.ndim == 1 else inputs.shape[0]
        return best / count * 1e6

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def _persisted_items(self, record: dict):
        """``(key, array)`` pairs :meth:`save` writes for one record.

        Quantized records persist their integer code points only; the
        float arrays the runtime executes are derived at load time
        (``spectra = rfft(dequantize(weight_q))``), which is both the
        format's size win and its exactness guarantee — integers
        round-trip bitwise, so the rebuilt floats do too.
        """
        for key, value in record.items():
            if not isinstance(value, np.ndarray):
                continue
            source = _DERIVED_WHEN_QUANTIZED.get(key)
            if source is not None and source in record:
                continue
            yield key, value

    def storage_bytes(self) -> int:
        """Total bytes of the arrays :meth:`save` persists (the deployed
        model size — integer code points, not derived floats, for
        quantized records)."""
        return sum(
            value.nbytes
            for record in self.records
            for _, value in self._persisted_items(record)
        )

    @property
    def quantized(self) -> bool:
        """Whether any record stores fixed-point code points."""
        return any("weight_q" in record for record in self.records)

    def save(self, path: str | Path, version: int | None = None) -> None:
        """Write the artifact to a single ``.npz`` file.

        ``version`` defaults to :data:`FORMAT_VERSION` (2).  Passing
        ``version=1`` writes the legacy layout older loaders read —
        only possible for unquantized models (v1 has no fixed-point
        slot; ``metadata`` is dropped with the header).
        """
        path = Path(path)
        version = FORMAT_VERSION if version is None else version
        if version == LEGACY_FORMAT_VERSION:
            if self.quantized:
                raise DeploymentError(
                    "format v1 cannot store quantized records; "
                    "save with version=2"
                )
        elif version != FORMAT_VERSION:
            raise DeploymentError(
                f"unsupported format version {version}"
            )
        header = []
        arrays: dict[str, np.ndarray] = {}
        for index, record in enumerate(self.records):
            meta = {}
            items = (
                self._persisted_items(record)
                if version >= FORMAT_VERSION
                else (
                    (k, v)
                    for k, v in record.items()
                    if isinstance(v, np.ndarray)
                )
            )
            persisted = set()
            for key, value in items:
                arrays[f"layer{index}_{key}"] = value
                meta[key] = f"@layer{index}_{key}"
                persisted.add(key)
            for key, value in record.items():
                if isinstance(value, np.ndarray) or key in persisted:
                    continue
                meta[key] = value
            header.append(meta)
        payload: dict = {"version": version, "layers": header}
        if version >= FORMAT_VERSION:
            payload["meta"] = self.metadata
        arrays["__header__"] = np.frombuffer(
            json.dumps(payload).encode(), dtype=np.uint8
        )
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "DeployedModel":
        """Read an artifact written by :meth:`save` (format v1 or v2).

        v1 files load exactly as before (float arrays straight from the
        file).  v2 files rebuild the derived float arrays of quantized
        records from their integer code points: ``weight = codes *
        2**-fraction_bits`` and, for block-circulant layers, ``spectra =
        rfft(weight)`` — the identical computation :meth:`from_model`
        ran, so a save/load round trip is bitwise.
        """
        from ..quantize.fixed_point import QFormat, dequantize_ints

        path = Path(path)
        with np.load(path) as data:
            if "__header__" not in data:
                raise DeploymentError(f"{path} is not a deployed-model file")
            header = json.loads(bytes(data["__header__"].tobytes()).decode())
            version = header.get("version")
            if version not in (LEGACY_FORMAT_VERSION, FORMAT_VERSION):
                raise DeploymentError(
                    f"unsupported format version {version}"
                )
            records = []
            for meta in header["layers"]:
                record = {}
                for key, value in meta.items():
                    if isinstance(value, str) and value.startswith("@"):
                        record[key] = data[value[1:]]
                    else:
                        record[key] = value
                if "weight_q" in record:
                    weight = dequantize_ints(
                        record["weight_q"], QFormat(*record["qformat"])
                    )
                    if record["kind"] in ("bc_linear", "bc_conv"):
                        record["spectra"] = rfft(weight).astype(np.complex64)
                    else:
                        record["weight"] = weight.astype(np.float32)
                if "bias_q" in record:
                    record["bias"] = dequantize_ints(
                        record["bias_q"], QFormat(*record["bias_qformat"])
                    ).astype(np.float32)
                elif "bias" not in record:
                    record["bias"] = None
                records.append(record)
            metadata = header.get("meta") or {}
        model = cls(records, metadata=metadata)
        model.source_version = version
        return model

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-able artifact summary (the CLI's ``repro inspect``).

        Per layer: kind, structural scalars, persisted bytes, and the
        quantization Q-format/error when present; plus the metadata
        sections and total size.
        """
        layers = []
        for index, record in enumerate(self.records):
            info: dict = {"index": index, "kind": record["kind"]}
            for key in (
                "in_features", "out_features", "block_size",
                "in_channels", "out_channels", "kernel_size",
                "stride", "padding",
            ):
                if key in record:
                    info[key] = record[key]
            arrays = {
                key: {
                    "shape": list(value.shape),
                    "dtype": str(value.dtype),
                    "bytes": int(value.nbytes),
                }
                for key, value in self._persisted_items(record)
            }
            if arrays:
                info["arrays"] = arrays
            if "qformat" in record:
                integer_bits, fraction_bits = record["qformat"]
                info["qformat"] = f"Q{integer_bits}.{fraction_bits}"
                info["quantization_error"] = float(record["q_error"])
            layers.append(info)
        return {
            "version": self.source_version or FORMAT_VERSION,
            "quantized": self.quantized,
            "storage_bytes": self.storage_bytes(),
            "layers": layers,
            "metadata": self.metadata,
        }

    def quantization_summary(self) -> list[dict]:
        """Per-quantized-record digest for the v2 metadata header.

        ``error`` is the record's worst relative quantization error
        across its weight and bias.
        """
        rows = []
        for index, record in enumerate(self.records):
            if "qformat" not in record:
                continue
            integer_bits, fraction_bits = record["qformat"]
            rows.append(
                {
                    "index": index,
                    "kind": record["kind"],
                    "qformat": [int(integer_bits), int(fraction_bits)],
                    "error": float(record["q_error"]),
                }
            )
        return rows
