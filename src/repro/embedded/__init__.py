"""Embedded-platform simulation and deployment (paper sections V, Fig. 4).

* :data:`PLATFORMS` — the devices of paper Table I,
* :func:`count_model` — per-layer operation counts,
* :class:`InferenceProfiler` — predicted per-image latency per platform
  and implementation (Java / C++), calibrated against Tables II-III,
* :class:`DeployedModel` — the standalone FFT-domain inference engine.
"""

from .cost_model import (
    LayerCost,
    ModelCost,
    complex_fft_ops,
    count_model,
    real_fft_ops,
)
from .deploy import DeployedModel
from .energy import POWER_PROFILES, EnergyEstimate, EnergyModel, PowerProfile
from .memory import MemoryFootprint, estimate_memory, fits_on_platform
from .platform import PLATFORMS, CpuCluster, PlatformSpec, get_platform
from .profiler import InferenceProfiler, ProfileEntry
from .runtime_model import (
    CPP,
    IMPLEMENTATIONS,
    JAVA,
    ImplementationProfile,
    estimate_runtime_us,
)

__all__ = [
    "PLATFORMS",
    "CpuCluster",
    "PlatformSpec",
    "get_platform",
    "LayerCost",
    "ModelCost",
    "count_model",
    "real_fft_ops",
    "complex_fft_ops",
    "ImplementationProfile",
    "JAVA",
    "CPP",
    "IMPLEMENTATIONS",
    "estimate_runtime_us",
    "InferenceProfiler",
    "ProfileEntry",
    "DeployedModel",
    "PowerProfile",
    "POWER_PROFILES",
    "EnergyEstimate",
    "EnergyModel",
    "MemoryFootprint",
    "estimate_memory",
    "fits_on_platform",
]
