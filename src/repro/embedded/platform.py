"""Embedded platform specifications (paper Table I).

The paper evaluates on three Android devices.  Physical hardware is not
available in this reproduction, so each device is described by a
:class:`PlatformSpec` capturing the microarchitectural quantities the
runtime simulator needs: clock, core count, ISA generation, and a relative
single-thread NEON efficiency factor.

The ``relative_ipc`` values encode the paper's observed device ordering
(Honor 6X < XU3 < Nexus 5 in per-image latency despite the Nexus 5 having
the highest clock): the ARMv8-A A53 executes this FFT-heavy workload with
better effective IPC than the older Krait 400 / A15 parts, and is
calibrated against the paper's Table II C++ column.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuCluster", "PlatformSpec", "PLATFORMS", "get_platform"]


@dataclass(frozen=True)
class CpuCluster:
    """One CPU cluster: ``cores`` identical cores at ``clock_ghz``."""

    cores: int
    clock_ghz: float
    microarchitecture: str

    def __post_init__(self):
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")
        if self.clock_ghz <= 0:
            raise ValueError(f"clock must be positive, got {self.clock_ghz}")

    def describe(self) -> str:
        """Human-readable summary, e.g. ``4 x 2.3GHz Krait 400``."""
        return f"{self.cores} x {self.clock_ghz}GHz {self.microarchitecture}"


@dataclass(frozen=True)
class PlatformSpec:
    """A device from the paper's Table I.

    ``relative_ipc`` is the effective NEON operations-per-cycle factor of
    the primary cluster for this workload, normalized so the Krait 400 is
    1.0; it is the single calibrated microarchitectural parameter of the
    simulator.
    """

    name: str
    android_version: str
    primary_cpu: CpuCluster
    companion_cpu: CpuCluster | None
    cpu_architecture: str
    gpu: str
    ram_gb: int
    relative_ipc: float

    def __post_init__(self):
        if self.ram_gb <= 0:
            raise ValueError(f"ram_gb must be positive, got {self.ram_gb}")
        if self.relative_ipc <= 0:
            raise ValueError(f"relative_ipc must be positive, got {self.relative_ipc}")

    @property
    def effective_gops(self) -> float:
        """Effective single-thread billions-of-ops/s for this workload.

        Inference in the paper's implementation is single-image,
        effectively single-threaded OpenCV calls, so only one primary core
        contributes.
        """
        return self.primary_cpu.clock_ghz * self.relative_ipc

    def table_row(self) -> tuple[str, ...]:
        """Row matching the columns of paper Table I."""
        companion = (
            self.companion_cpu.describe() if self.companion_cpu else "-"
        )
        return (
            self.name,
            self.android_version,
            self.primary_cpu.describe(),
            companion,
            self.cpu_architecture,
            self.gpu,
            str(self.ram_gb),
        )


#: The three devices of paper Table I, keyed by short name.
PLATFORMS: dict[str, PlatformSpec] = {
    "nexus5": PlatformSpec(
        name="LG Nexus 5",
        android_version="6 (Marshmallow)",
        primary_cpu=CpuCluster(4, 2.3, "Krait 400"),
        companion_cpu=None,
        cpu_architecture="ARMv7-A",
        gpu="Adreno 330",
        ram_gb=2,
        relative_ipc=1.00,
    ),
    "xu3": PlatformSpec(
        name="Odroid XU3",
        android_version="7 (Nougat)",
        primary_cpu=CpuCluster(4, 2.1, "Cortex-A15"),
        companion_cpu=CpuCluster(4, 1.5, "Cortex-A7"),
        cpu_architecture="ARMv7-A",
        gpu="Mali T628",
        ram_gb=2,
        relative_ipc=1.31,
    ),
    "honor6x": PlatformSpec(
        name="Huawei Honor 6X",
        android_version="7 (Nougat)",
        primary_cpu=CpuCluster(4, 2.1, "Cortex-A53"),
        companion_cpu=CpuCluster(4, 1.7, "Cortex-A53"),
        cpu_architecture="ARMv8-A",
        gpu="Mali T830",
        ram_gb=3,
        relative_ipc=1.52,
    ),
}


def get_platform(key: str) -> PlatformSpec:
    """Look up a platform by short key (``nexus5``, ``xu3``, ``honor6x``)."""
    if key not in PLATFORMS:
        raise KeyError(
            f"unknown platform {key!r}; available: {sorted(PLATFORMS)}"
        )
    return PLATFORMS[key]
