"""Energy model for the Table I platforms.

The paper's introduction motivates embedded deployment with "portability,
versatility, and energy efficiency", and its TrueNorth comparison is
implicitly an energy story (TrueNorth's selling point is mW-scale
inference).  This module extends the runtime simulator with a
first-order race-to-idle energy estimate:

    energy = P_active * t_inference

with per-platform active (and, for reference, idle) power for the
primary cluster.  The power
numbers are representative publicly-documented figures for each SoC
generation (big-core cluster under NEON load), good to tens of percent —
enough for the cross-platform and Java-vs-C++ *ratios*, which is what an
energy comparison needs.

A slower implementation on the same device costs proportionally more
energy (race-to-idle): the Java path burns ~2.4x the Joules of the C++
path for the same prediction, which is the deployment-relevant
conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.module import Sequential
from .cost_model import count_model
from .platform import PlatformSpec, get_platform
from .profiler import InferenceProfiler
from .runtime_model import IMPLEMENTATIONS, ImplementationProfile

__all__ = ["PowerProfile", "POWER_PROFILES", "EnergyEstimate", "EnergyModel"]


@dataclass(frozen=True)
class PowerProfile:
    """Cluster power under sustained NEON load and at idle, in watts."""

    active_watts: float
    idle_watts: float

    def __post_init__(self):
        if self.active_watts <= 0:
            raise ValueError(f"active_watts must be positive, got {self.active_watts}")
        if not 0 <= self.idle_watts < self.active_watts:
            raise ValueError(
                f"idle_watts must be in [0, active): {self.idle_watts} "
                f"vs {self.active_watts}"
            )


#: Representative big-cluster power figures per device (4 cores loaded).
POWER_PROFILES: dict[str, PowerProfile] = {
    # Krait 400 @ 2.3 GHz (28 nm HPM): ~3.5 W cluster under NEON load.
    "nexus5": PowerProfile(active_watts=3.5, idle_watts=0.35),
    # Cortex-A15 @ 2.1 GHz (28 nm): the classically power-hungry big core.
    "xu3": PowerProfile(active_watts=4.5, idle_watts=0.45),
    # Cortex-A53 @ 2.1 GHz (16 nm): the efficiency-oriented ARMv8 core.
    "honor6x": PowerProfile(active_watts=1.8, idle_watts=0.20),
}


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy accounting for one inference."""

    platform: str
    implementation: str
    runtime_us: float
    energy_uj: float

    @property
    def images_per_joule(self) -> float:
        return 1e6 / self.energy_uj


class EnergyModel:
    """Per-inference energy estimates for a model on the paper's devices.

    >>> model = build_arch1()
    >>> EnergyModel(model, (256,)).estimate("honor6x", "cpp").energy_uj
    """

    def __init__(self, model: Sequential, input_shape: tuple[int, ...]):
        self.profiler = InferenceProfiler(model, input_shape)
        self.cost = count_model(model, tuple(input_shape))

    def estimate(
        self,
        platform: str | PlatformSpec,
        implementation: str | ImplementationProfile,
        battery: bool = False,
    ) -> EnergyEstimate:
        """Energy of one inference in microjoules."""
        platform_key = (
            platform if isinstance(platform, str) else _key_for(platform)
        )
        power = POWER_PROFILES.get(platform_key)
        if power is None:
            raise KeyError(
                f"no power profile for platform {platform_key!r}; "
                f"available: {sorted(POWER_PROFILES)}"
            )
        impl_key = (
            implementation
            if isinstance(implementation, str)
            else implementation.name.lower().replace("+", "p")
        )
        runtime_us = self.profiler.runtime_us(platform, implementation, battery)
        energy_uj = power.active_watts * runtime_us  # W * us = uJ
        return EnergyEstimate(
            platform=platform_key,
            implementation=impl_key if isinstance(implementation, str) else impl_key,
            runtime_us=runtime_us,
            energy_uj=energy_uj,
        )

    def sweep(self, battery: bool = False) -> list[EnergyEstimate]:
        """Estimates for every (platform, implementation) pair."""
        return [
            self.estimate(platform, impl, battery)
            for impl in sorted(IMPLEMENTATIONS)
            for platform in sorted(POWER_PROFILES)
        ]

    def most_efficient(self, battery: bool = False) -> EnergyEstimate:
        """The (platform, implementation) pair with the lowest energy."""
        return min(self.sweep(battery), key=lambda e: e.energy_uj)


def _key_for(platform: PlatformSpec) -> str:
    for key in POWER_PROFILES:
        if get_platform(key) is platform:
            return key
    raise KeyError(f"platform {platform.name!r} is not in the power registry")
