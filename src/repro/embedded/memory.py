"""Memory-footprint model for deployment (paper challenges (i) and (ii)).

The paper's introduction names two embedded constraints: the *download
size* of the model (communication bandwidth, challenge (i)) and the
*memory requirement* at inference time (challenge (ii)); its Java-vs-C++
discussion further blames Android's per-app Java heap limits for part of
the Java slowdown.  This module quantifies all three:

* download/storage size of the deployed artifact,
* peak working-set during one inference: resident weights plus the two
  largest adjacent activation buffers (layers execute sequentially, so
  only consecutive input/output activations coexist),
* a check against a platform's RAM and against a Java-heap-style cap.

Estimates are precision-aware: ``precision`` selects the
:class:`~repro.precision.PrecisionPolicy` the frozen runtime would run
at.  The default (``None`` or ``"fp32"``) prices the deployed artifact's
own dtypes — complex64 spectra and float32 activations, exactly what an
fp32 :class:`~repro.runtime.InferenceSession` keeps resident.  ``"fp64"``
prices the widened session (complex128 spectra, float64 activations):
twice every buffer, which is precisely why the fp32 inference mode
exists for RAM-constrained targets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..nn.module import Sequential
from ..precision import PrecisionPolicy
from .cost_model import count_model
from .platform import PlatformSpec, get_platform

__all__ = ["MemoryFootprint", "estimate_memory", "fits_on_platform"]

_FLOAT_BYTES = 4
#: Default Android per-app Java heap cap of the paper's device era (MB).
DEFAULT_JAVA_HEAP_MB = 192.0


@dataclass(frozen=True)
class MemoryFootprint:
    """Memory accounting for one deployed model."""

    weight_bytes: int
    peak_activation_bytes: int
    activation_bytes_per_layer: tuple[int, ...]

    @property
    def total_bytes(self) -> int:
        """Weights + peak pair of adjacent activation buffers."""
        return self.weight_bytes + self.peak_activation_bytes

    @property
    def total_mb(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)


def estimate_memory(
    model: Sequential,
    input_shape: tuple[int, ...],
    batch_size: int = 1,
    precision: str | PrecisionPolicy | None = None,
) -> MemoryFootprint:
    """Estimate the inference working set of ``model`` at ``precision``.

    Activation sizes are traced through the cost model's shape
    propagation; the peak is the largest sum of two consecutive buffers
    (input of a layer + its output), times ``batch_size``.  The cost
    model prices weights at the artifact dtypes (complex64 spectra /
    float32 dense); an fp64 session widens every resident buffer, so
    ``precision="fp64"`` doubles both terms while the default fp32
    numbers match the stored artifact — the complex64 spectra are half
    the fp64 spectrum footprint.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    policy = PrecisionPolicy.resolve(precision if precision is not None else "fp32")
    # Artifact dtypes are single precision; fp64 sessions widen 2x.
    scale = policy.real_itemsize // _FLOAT_BYTES
    element_bytes = _FLOAT_BYTES * scale
    cost = count_model(model, tuple(input_shape))
    activation_sizes = [math.prod(input_shape) * element_bytes * batch_size]
    for layer in cost.layers:
        activation_sizes.append(
            math.prod(layer.output_shape) * element_bytes * batch_size
        )
    peak = max(
        activation_sizes[i] + activation_sizes[i + 1]
        for i in range(len(activation_sizes) - 1)
    )
    return MemoryFootprint(
        weight_bytes=cost.weight_bytes * scale,
        peak_activation_bytes=peak,
        activation_bytes_per_layer=tuple(activation_sizes),
    )


def fits_on_platform(
    footprint: MemoryFootprint,
    platform: str | PlatformSpec,
    java: bool = False,
    java_heap_mb: float = DEFAULT_JAVA_HEAP_MB,
) -> bool:
    """Whether the working set fits the device (and the Java heap cap).

    The C++ path is limited only by device RAM ("applications written in
    C++ have an unlimited heap size", paper section V-B); the Java path
    must additionally fit the per-app heap cap.
    """
    if isinstance(platform, str):
        platform = get_platform(platform)
    ram_bytes = platform.ram_gb * 1024**3
    if footprint.total_bytes > ram_bytes:
        return False
    if java and footprint.total_mb > java_heap_mb:
        return False
    return True
