"""Memory-footprint model for deployment (paper challenges (i) and (ii)).

The paper's introduction names two embedded constraints: the *download
size* of the model (communication bandwidth, challenge (i)) and the
*memory requirement* at inference time (challenge (ii)); its Java-vs-C++
discussion further blames Android's per-app Java heap limits for part of
the Java slowdown.  This module quantifies all three:

* download/storage size of the deployed artifact,
* peak working-set during one inference: resident weights plus the two
  largest adjacent activation buffers (layers execute sequentially, so
  only consecutive input/output activations coexist),
* a check against a platform's RAM and against a Java-heap-style cap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..nn.module import Sequential
from .cost_model import count_model
from .platform import PlatformSpec, get_platform

__all__ = ["MemoryFootprint", "estimate_memory", "fits_on_platform"]

_FLOAT_BYTES = 4
#: Default Android per-app Java heap cap of the paper's device era (MB).
DEFAULT_JAVA_HEAP_MB = 192.0


@dataclass(frozen=True)
class MemoryFootprint:
    """Memory accounting for one deployed model."""

    weight_bytes: int
    peak_activation_bytes: int
    activation_bytes_per_layer: tuple[int, ...]

    @property
    def total_bytes(self) -> int:
        """Weights + peak pair of adjacent activation buffers."""
        return self.weight_bytes + self.peak_activation_bytes

    @property
    def total_mb(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)


def estimate_memory(
    model: Sequential, input_shape: tuple[int, ...], batch_size: int = 1
) -> MemoryFootprint:
    """Estimate the inference working set of ``model``.

    Activation sizes are traced through the cost model's shape
    propagation; the peak is the largest sum of two consecutive buffers
    (input of a layer + its output), times ``batch_size``.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    cost = count_model(model, tuple(input_shape))
    activation_sizes = [math.prod(input_shape) * _FLOAT_BYTES * batch_size]
    for layer in cost.layers:
        activation_sizes.append(
            math.prod(layer.output_shape) * _FLOAT_BYTES * batch_size
        )
    peak = max(
        activation_sizes[i] + activation_sizes[i + 1]
        for i in range(len(activation_sizes) - 1)
    )
    return MemoryFootprint(
        weight_bytes=cost.weight_bytes,
        peak_activation_bytes=peak,
        activation_bytes_per_layer=tuple(activation_sizes),
    )


def fits_on_platform(
    footprint: MemoryFootprint,
    platform: str | PlatformSpec,
    java: bool = False,
    java_heap_mb: float = DEFAULT_JAVA_HEAP_MB,
) -> bool:
    """Whether the working set fits the device (and the Java heap cap).

    The C++ path is limited only by device RAM ("applications written in
    C++ have an unlimited heap size", paper section V-B); the Java path
    must additionally fit the per-app heap cap.
    """
    if isinstance(platform, str):
        platform = get_platform(platform)
    ram_bytes = platform.ram_gb * 1024**3
    if footprint.total_bytes > ram_bytes:
        return False
    if java and footprint.total_mb > java_heap_mb:
        return False
    return True
