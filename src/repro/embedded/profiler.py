"""Inference profiler: model x platform x implementation -> latency.

Combines the operation counts of :mod:`repro.embedded.cost_model` with
the runtime model of :mod:`repro.embedded.runtime_model` to regenerate the
runtime columns of paper Tables II and III, including battery mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.module import Sequential
from .cost_model import ModelCost, count_model
from .platform import PLATFORMS, PlatformSpec, get_platform
from .runtime_model import IMPLEMENTATIONS, ImplementationProfile, estimate_runtime_us

__all__ = ["ProfileEntry", "InferenceProfiler"]


@dataclass(frozen=True)
class ProfileEntry:
    """One predicted latency measurement."""

    platform: str
    implementation: str
    battery: bool
    runtime_us: float


class InferenceProfiler:
    """Predict per-image inference latency of a model on Table I devices.

    >>> profiler = InferenceProfiler(build_arch1(), input_shape=(256,))
    >>> profiler.runtime_us("honor6x", "cpp")
    """

    def __init__(self, model: Sequential, input_shape: tuple[int, ...]):
        self.model = model
        self.input_shape = tuple(input_shape)
        self.cost: ModelCost = count_model(model, self.input_shape)

    def runtime_us(
        self,
        platform: str | PlatformSpec,
        implementation: str | ImplementationProfile,
        battery: bool = False,
    ) -> float:
        """Predicted latency in microseconds per image."""
        if isinstance(platform, str):
            platform = get_platform(platform)
        if isinstance(implementation, str):
            if implementation not in IMPLEMENTATIONS:
                raise KeyError(
                    f"unknown implementation {implementation!r}; "
                    f"available: {sorted(IMPLEMENTATIONS)}"
                )
            implementation = IMPLEMENTATIONS[implementation]
        return estimate_runtime_us(self.cost, platform, implementation, battery)

    def sweep(
        self,
        platforms: list[str] | None = None,
        implementations: list[str] | None = None,
        battery: bool = False,
    ) -> list[ProfileEntry]:
        """Latencies for every (platform, implementation) pair requested."""
        platforms = platforms or sorted(PLATFORMS)
        implementations = implementations or sorted(IMPLEMENTATIONS)
        entries = []
        for impl_key in implementations:
            for platform_key in platforms:
                entries.append(
                    ProfileEntry(
                        platform=platform_key,
                        implementation=impl_key,
                        battery=battery,
                        runtime_us=self.runtime_us(
                            platform_key, impl_key, battery
                        ),
                    )
                )
        return entries

    def speedup(self, platform: str, battery: bool = False) -> float:
        """Java-over-C++ latency ratio on ``platform`` (paper reports
        'C++ is about 60-130% faster')."""
        java = self.runtime_us(platform, "java", battery)
        cpp = self.runtime_us(platform, "cpp", battery)
        return java / cpp
