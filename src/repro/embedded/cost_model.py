"""Per-inference operation counting for every layer type.

The runtime simulator needs, for each layer, how many arithmetic
operations one forward pass costs and how many library calls it issues
(the per-call overhead of OpenCV through Java/JNI vs native C++ turns out
to dominate at the paper's network sizes — see
:mod:`repro.embedded.runtime_model`).

FFT cost conventions (standard split-radix estimates):

* complex FFT of length n: ``5 n log2 n`` real ops,
* real FFT (rfft/irfft): half that, ``2.5 n log2 n``,
* complex multiply: 6 real ops; complex add: 2.

Block-circulant layers are costed per paper Algorithm 1: one rfft per
input block, one spectrum product + accumulation per block pair (weight
spectra are precomputed at deployment, section IV-A), one irfft per
output block.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    Dropout,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from ..nn.module import Module, Sequential

__all__ = ["LayerCost", "ModelCost", "real_fft_ops", "complex_fft_ops", "count_model"]


def complex_fft_ops(n: int) -> float:
    """Real-operation count of one complex FFT of length ``n``."""
    if n <= 0:
        raise ValueError(f"FFT length must be positive, got {n}")
    if n == 1:
        return 0.0
    return 5.0 * n * math.log2(n)


def real_fft_ops(n: int) -> float:
    """Real-operation count of one real-input FFT (or inverse) of length n."""
    return 0.5 * complex_fft_ops(n)


@dataclass
class LayerCost:
    """Cost of one layer's forward pass for a single input sample."""

    name: str
    flops: float  # arithmetic real operations
    library_calls: int  # coarse-grained kernel invocations (OpenCV-style)
    weight_bytes: int  # parameter storage read per inference (float32)
    output_shape: tuple[int, ...]


@dataclass
class ModelCost:
    """Aggregate cost over all layers."""

    layers: list[LayerCost] = field(default_factory=list)

    @property
    def flops(self) -> float:
        return sum(layer.flops for layer in self.layers)

    @property
    def library_calls(self) -> int:
        return sum(layer.library_calls for layer in self.layers)

    @property
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.layers)

    @property
    def output_shape(self) -> tuple[int, ...]:
        if not self.layers:
            raise ValueError("model produced no layers")
        return self.layers[-1].output_shape


_FLOAT_BYTES = 4  # deployed weights are float32 (section V: OpenCV Mats)


def _cost_linear(layer: Linear, shape: tuple[int, ...]) -> LayerCost:
    (n,) = shape
    m = layer.out_features
    flops = 2.0 * m * n + (m if layer.bias is not None else 0)
    return LayerCost(
        name=repr(layer),
        flops=flops,
        library_calls=2,  # gemv + bias add
        weight_bytes=(m * n + (m if layer.bias is not None else 0)) * _FLOAT_BYTES,
        output_shape=(m,),
    )


def _cost_bc_linear(layer: BlockCirculantLinear, shape: tuple[int, ...]) -> LayerCost:
    b = layer.block_size
    p, q = layer.block_rows, layer.block_cols
    bins = b // 2 + 1
    flops = (
        q * real_fft_ops(b)  # FFT(x_i)
        + p * q * 6.0 * bins  # spectrum products
        + p * (q - 1) * 2.0 * bins  # block accumulation
        + p * real_fft_ops(b)  # IFFT per output block
        + (layer.out_features if layer.bias is not None else 0)
    )
    # One FFT call per input block, one fused multiply-accumulate pass per
    # output block, one inverse FFT per output block, plus the bias add.
    calls = q + 2 * p + 1
    # Deployed storage: the rfft spectra (complex64: 8 bytes/bin).
    weight_bytes = p * q * bins * 2 * _FLOAT_BYTES + (
        layer.out_features * _FLOAT_BYTES if layer.bias is not None else 0
    )
    return LayerCost(
        name=repr(layer),
        flops=flops,
        library_calls=calls,
        weight_bytes=weight_bytes,
        output_shape=(layer.out_features,),
    )


def _cost_conv(layer: Conv2d, shape: tuple[int, ...]) -> LayerCost:
    channels, height, width = shape
    out_c, out_h, out_w = layer.output_shape(height, width)
    positions = out_h * out_w
    k = layer.kernel_size
    flops = 2.0 * positions * out_c * channels * k * k + (
        positions * out_c if layer.bias is not None else 0
    )
    weights = out_c * channels * k * k + (out_c if layer.bias is not None else 0)
    return LayerCost(
        name=repr(layer),
        flops=flops,
        library_calls=3,  # im2col + gemm + bias
        weight_bytes=weights * _FLOAT_BYTES,
        output_shape=(out_c, out_h, out_w),
    )


def _cost_bc_conv(layer: BlockCirculantConv2d, shape: tuple[int, ...]) -> LayerCost:
    channels, height, width = shape
    out_c, out_h, out_w = layer.output_shape(height, width)
    positions = out_h * out_w
    b = layer.block_size
    p, q = layer.block_rows, layer.block_cols
    bins = b // 2 + 1
    per_position = (
        q * real_fft_ops(b)
        + p * q * 6.0 * bins
        + p * (q - 1) * 2.0 * bins
        + p * real_fft_ops(b)
    )
    flops = positions * per_position + (
        positions * out_c if layer.bias is not None else 0
    )
    calls = 1 + q + 2 * p + 1  # im2col + batched FFT/MAC/IFFT passes + bias
    weight_bytes = p * q * bins * 2 * _FLOAT_BYTES + (
        out_c * _FLOAT_BYTES if layer.bias is not None else 0
    )
    return LayerCost(
        name=repr(layer),
        flops=flops,
        library_calls=calls,
        weight_bytes=weight_bytes,
        output_shape=(out_c, out_h, out_w),
    )


def _elementwise_cost(
    layer: Module, shape: tuple[int, ...], ops_per_element: float
) -> LayerCost:
    count = math.prod(shape)
    return LayerCost(
        name=repr(layer),
        flops=ops_per_element * count,
        library_calls=1,
        weight_bytes=0,
        output_shape=shape,
    )


def _cost_pool(layer, shape: tuple[int, ...], ops_per_window_element: float) -> LayerCost:
    channels, height, width = shape
    k, s = layer.kernel_size, layer.stride
    out_h = (height - k) // s + 1
    out_w = (width - k) // s + 1
    windows = channels * out_h * out_w
    return LayerCost(
        name=repr(layer),
        flops=windows * k * k * ops_per_window_element,
        library_calls=1,
        weight_bytes=0,
        output_shape=(channels, out_h, out_w),
    )


def _cost_layer(layer: Module, shape: tuple[int, ...]) -> LayerCost:
    if isinstance(layer, BlockCirculantLinear):
        return _cost_bc_linear(layer, shape)
    if isinstance(layer, Linear):
        return _cost_linear(layer, shape)
    if isinstance(layer, BlockCirculantConv2d):
        return _cost_bc_conv(layer, shape)
    if isinstance(layer, Conv2d):
        return _cost_conv(layer, shape)
    if isinstance(layer, (ReLU, LeakyReLU)):
        return _elementwise_cost(layer, shape, 1.0)
    if isinstance(layer, (Sigmoid, Tanh)):
        return _elementwise_cost(layer, shape, 4.0)
    if isinstance(layer, Softmax):
        return _elementwise_cost(layer, shape, 5.0)
    if isinstance(layer, Dropout):
        # Inference no-op: dropout disappears at deployment.
        return LayerCost(repr(layer), 0.0, 0, 0, shape)
    if isinstance(layer, Flatten):
        return LayerCost(repr(layer), 0.0, 0, 0, (math.prod(shape),))
    if isinstance(layer, MaxPool2d):
        return _cost_pool(layer, shape, 1.0)
    if isinstance(layer, AvgPool2d):
        return _cost_pool(layer, shape, 1.0)
    if isinstance(layer, (BatchNorm1d, BatchNorm2d)):
        # Folded scale+shift at inference.
        cost = _elementwise_cost(layer, shape, 2.0)
        cost.weight_bytes = 2 * layer.num_features * _FLOAT_BYTES
        return cost
    raise TypeError(f"no cost model for layer type {type(layer).__name__}")


def count_model(model: Module, input_shape: tuple[int, ...]) -> ModelCost:
    """Per-layer and total single-image inference cost of ``model``.

    ``input_shape`` excludes the batch axis: ``(features,)`` for FC models,
    ``(channels, H, W)`` for CONV models.
    """
    if not isinstance(model, Sequential):
        raise TypeError(
            "count_model requires a Sequential model; wrap custom modules"
        )
    cost = ModelCost()
    shape = tuple(input_shape)
    for layer in model:
        layer_cost = _cost_layer(layer, shape)
        cost.layers.append(layer_cost)
        shape = layer_cost.output_shape
    return cost
