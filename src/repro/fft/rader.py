"""Rader's FFT algorithm for prime transform sizes.

Complements Bluestein: where Bluestein turns *any* size into a chirp
convolution, Rader maps a prime-size-``p`` DFT onto a length-``(p-1)``
circular convolution by reindexing through a primitive root of the
multiplicative group mod ``p``:

    X[g^{-m}] = x[0] + sum_q x[g^q] * W^{g^{q-m}}   (a circular convolution)

The convolution itself is evaluated with zero-padded radix-2 transforms
(wrapped kernel), so the whole transform is O(p log p).  Included as the
classic alternative prime-size kernel; the dispatcher defaults to
Bluestein, and the benchmarks compare the two.
"""

from __future__ import annotations

import functools

import numpy as np

from .cooley_tukey import fft_radix2
from .twiddle import next_power_of_two, smallest_prime_factor

__all__ = ["primitive_root", "fft_rader"]


@functools.lru_cache(maxsize=256)
def primitive_root(p: int) -> int:
    """Smallest primitive root modulo the prime ``p``.

    A generator ``g`` of the multiplicative group (Z/pZ)*: its powers
    enumerate 1..p-1.  Found by checking, for each candidate, that no
    proper prime-quotient power collapses to 1.
    """
    if p < 2 or smallest_prime_factor(p) != p:
        raise ValueError(f"primitive_root requires a prime, got {p}")
    if p == 2:
        return 1
    order = p - 1
    factors = _prime_factors(order)
    for candidate in range(2, p):
        if all(pow(candidate, order // f, p) != 1 for f in factors):
            return candidate
    raise RuntimeError(f"no primitive root found for {p}")  # unreachable


def _prime_factors(n: int) -> tuple[int, ...]:
    factors = []
    remaining = n
    while remaining > 1:
        factor = smallest_prime_factor(remaining)
        factors.append(factor)
        while remaining % factor == 0:
            remaining //= factor
    return tuple(factors)


@functools.lru_cache(maxsize=128)
def _rader_plan(p: int, inverse: bool):
    """Precomputed permutations and kernel spectrum for prime ``p``."""
    g = primitive_root(p)
    order = p - 1
    # forward_idx[m] = g^m mod p ; inverse_idx[m] = g^{-m} mod p.
    forward_idx = np.empty(order, dtype=np.int64)
    value = 1
    for m in range(order):
        forward_idx[m] = value
        value = (value * g) % p
    inverse_idx = np.empty(order, dtype=np.int64)
    g_inv = pow(g, p - 2, p)
    value = 1
    for m in range(order):
        inverse_idx[m] = value
        value = (value * g_inv) % p

    sign = 2j if inverse else -2j
    kernel = np.exp(sign * np.pi * inverse_idx / p)  # W^{g^{-m}}

    # Wrapped kernel spectrum for a length-(p-1) circular convolution
    # realized inside a power-of-two transform.
    m_size = order if _is_pow2(order) else next_power_of_two(2 * order - 1)
    padded_kernel = np.zeros(m_size, dtype=np.complex128)
    if m_size == order:
        padded_kernel[:] = kernel
    else:
        padded_kernel[:order] = kernel
        padded_kernel[m_size - order + 1 :] = kernel[1:]
    spectrum = fft_radix2(padded_kernel)
    spectrum.setflags(write=False)
    forward_idx.setflags(write=False)
    inverse_idx.setflags(write=False)
    return forward_idx, inverse_idx, spectrum, m_size


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def fft_rader(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """DFT of prime length along the last axis via Rader's reindexing.

    No ``1/n`` normalization is applied for ``inverse=True``, matching
    the other kernel-level functions.
    """
    x = np.asarray(x, dtype=np.complex128)
    p = x.shape[-1]
    if p == 1:
        return x.copy()
    if p == 2:
        return np.stack(
            [x[..., 0] + x[..., 1], x[..., 0] - x[..., 1]], axis=-1
        )
    if smallest_prime_factor(p) != p:
        raise ValueError(f"Rader's algorithm requires a prime length, got {p}")

    forward_idx, inverse_idx, kernel_spectrum, m_size = _rader_plan(p, inverse)
    order = p - 1

    a = x[..., forward_idx]  # x[g^m]
    padded = np.zeros(x.shape[:-1] + (m_size,), dtype=np.complex128)
    padded[..., :order] = a
    conv_spectrum = fft_radix2(padded) * kernel_spectrum
    convolved = np.conj(fft_radix2(np.conj(conv_spectrum))) / m_size
    convolved = convolved[..., :order]

    out = np.empty_like(x)
    out[..., 0] = x.sum(axis=-1)
    out[..., inverse_idx] = x[..., :1] + convolved
    return out
