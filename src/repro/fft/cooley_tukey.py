"""Cooley-Tukey FFT kernels (paper section III-B, Fig. 1).

Two variants are provided:

* :func:`fft_radix2` — the iterative decimation-in-time radix-2 algorithm
  illustrated in the paper's Fig. 1: bit-reversal reordering followed by
  ``log2(n)`` butterfly stages, each combining half-size DFTs with twiddle
  factors ``W^0 .. W^{N/2-1}``.
* :func:`fft_mixed_radix` — the general recursive Cooley-Tukey split
  ``N = N1 * N2`` for composite sizes, falling back to the O(n^2) DFT for
  prime factors (prime lengths themselves are better served by Bluestein,
  see :mod:`repro.fft.bluestein`).

Both operate along the last axis and accept arbitrary leading batch axes;
the butterfly arithmetic itself is the textbook algorithm, expressed with
vectorized elementwise numpy operations.
"""

from __future__ import annotations

import numpy as np

from .dft import naive_dft
from .twiddle import (
    bit_reversal_permutation,
    is_power_of_two,
    smallest_prime_factor,
    twiddle_factors,
)

__all__ = ["fft_radix2", "ifft_radix2", "fft_mixed_radix"]


def fft_radix2(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Iterative radix-2 decimation-in-time FFT along the last axis.

    ``x.shape[-1]`` must be a power of two.  With ``inverse=True`` the
    conjugate-twiddle transform is computed *without* the ``1/n``
    normalization; callers are expected to divide by ``n`` themselves
    (as :func:`ifft_radix2` does).

    The butterflies run in place on a single work buffer: the bit-reversal
    gather (cached permutation table) produces the buffer, and every stage
    updates its two wings through strided views with one half-size scratch
    array for the twiddled odd wing.  The per-stage ``reshape`` +
    ``concatenate`` of the textbook formulation would copy the full array
    ``log2(n)`` times; here only the scratch (n/2 elements) is written per
    stage, which is what makes the pure backend usable in the layer hot
    path.

    The kernel follows its input precision: ``float32`` / ``complex64``
    input runs every butterfly natively in ``complex64`` (half the memory
    traffic — the embedded fp32 inference mode), everything else widens
    to ``complex128`` as before.
    """
    x = np.asarray(x)
    dtype = (
        np.complex64
        if x.dtype in (np.float32, np.complex64)
        else np.complex128
    )
    x = x.astype(dtype, copy=False)
    n = x.shape[-1]
    if not is_power_of_two(n):
        raise ValueError(f"radix-2 FFT requires power-of-two length, got {n}")
    if n == 1:
        return x.copy()

    # Stage 0: permute input into bit-reversed order so every butterfly
    # stage can operate on contiguous halves.  Fancy indexing materializes
    # the one work buffer all stages mutate in place.
    out = x[..., bit_reversal_permutation(n)]
    scratch = np.empty(x.shape[:-1] + (n // 2,), dtype=dtype)

    # Stages 1..log2(n): combine DFTs of size `half` into size `size`.
    size = 2
    while size <= n:
        half = size // 2
        # Twiddles W_size^k for k in [0, half): the factors on the lower
        # wing of each butterfly in Fig. 1.
        twiddles = twiddle_factors(size, inverse=inverse, dtype=dtype.__name__)[:half]
        grouped = out.reshape(x.shape[:-1] + (n // size, size))
        even = grouped[..., :half]
        odd = grouped[..., half:]
        t = scratch.reshape(x.shape[:-1] + (n // size, half))
        np.multiply(odd, twiddles, out=t)
        np.subtract(even, t, out=odd)
        np.add(even, t, out=even)
        size *= 2
    return out


def ifft_radix2(x: np.ndarray) -> np.ndarray:
    """Inverse radix-2 FFT along the last axis, including 1/n scaling."""
    n = np.asarray(x).shape[-1]
    return fft_radix2(x, inverse=True) / n


def fft_mixed_radix(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Recursive Cooley-Tukey FFT for arbitrary composite lengths.

    Splits ``N = N1 * N2`` with ``N1`` the smallest prime factor, computes
    ``N1`` interleaved transforms of length ``N2`` recursively, then
    recombines with twiddle factors.  Prime lengths degrade to the O(n^2)
    reference DFT, which keeps this function exact for every ``n`` while the
    dispatcher in :mod:`repro.fft.core` routes large primes to Bluestein
    instead.  No normalization is applied for ``inverse=True``.
    """
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[-1]
    if n == 1:
        return x.copy()
    if is_power_of_two(n):
        return fft_radix2(x, inverse=inverse)

    radix = smallest_prime_factor(n)
    if radix == n:
        # Prime length: direct DFT (conjugate trick for the inverse sign).
        if inverse:
            return np.conj(naive_dft(np.conj(x)))
        return naive_dft(x)

    n2 = n // radix
    # Decimate in time: sub-transform r collects x[r], x[r+radix], ...
    sub = np.stack(
        [fft_mixed_radix(x[..., r::radix], inverse=inverse) for r in range(radix)],
        axis=-2,
    )  # shape (..., radix, n2)

    twiddles = twiddle_factors(n, inverse=inverse)
    k2 = np.arange(n2)
    out = np.empty(x.shape[:-1] + (n,), dtype=np.complex128)
    for q in range(radix):
        # Output bin k = q*n2 + k2; sum over the radix sub-transforms with
        # twiddle W_n^{r*k} = W_n^{r*(q*n2 + k2)}.
        k = q * n2 + k2
        acc = np.zeros(x.shape[:-1] + (n2,), dtype=np.complex128)
        for r in range(radix):
            acc += sub[..., r, :] * twiddles[(r * k) % n]
        out[..., k] = acc
    return out
