"""Twiddle-factor and bit-reversal utilities shared by the FFT kernels.

The Cooley-Tukey butterflies repeatedly need the primitive roots of unity
``W_N^k = exp(-2*pi*i*k/N)`` (paper Fig. 1 labels them ``W^0 .. W^{N/2-1}``).
Recomputing them per call dominates the cost of small transforms, so this
module memoizes them per transform size, which is the software analogue of
an FFT "plan".
"""

from __future__ import annotations

import functools

import numpy as np

__all__ = [
    "twiddle_factors",
    "bit_reversal_permutation",
    "is_power_of_two",
    "next_power_of_two",
    "smallest_prime_factor",
]


@functools.lru_cache(maxsize=256)
def twiddle_factors(
    n: int, inverse: bool = False, dtype: str = "complex128"
) -> np.ndarray:
    """Return the length-``n`` vector ``exp(sign * 2j*pi*k/n)`` for k in [0, n).

    ``inverse=False`` gives the forward-transform sign (-), ``inverse=True``
    the inverse-transform sign (+).  ``dtype`` selects the precision the
    factors are *delivered* at (they are always computed in double and
    rounded once, so complex64 twiddles carry no extra phase error beyond
    the final rounding).  Results are cached because layers call the FFT
    with a small set of fixed block sizes; the key is hashable, so pass
    the dtype as a string or ``np.dtype`` name.
    """
    if n <= 0:
        raise ValueError(f"twiddle factor count must be positive, got {n}")
    sign = 2j if inverse else -2j
    k = np.arange(n)
    factors = np.exp(sign * np.pi * k / n).astype(dtype, copy=False)
    factors.setflags(write=False)
    return factors


@functools.lru_cache(maxsize=256)
def bit_reversal_permutation(n: int) -> np.ndarray:
    """Return the bit-reversal index permutation for a power-of-two ``n``.

    The iterative radix-2 decimation-in-time FFT consumes its input in
    bit-reversed order; applying this permutation up front lets the
    butterfly stages write results in natural order.
    """
    if not is_power_of_two(n):
        raise ValueError(f"bit reversal requires a power-of-two size, got {n}")
    bits = n.bit_length() - 1
    indices = np.arange(n, dtype=np.int64)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        reversed_indices = (reversed_indices << 1) | (indices & 1)
        indices >>= 1
    reversed_indices.setflags(write=False)
    return reversed_indices


def is_power_of_two(n: int) -> bool:
    """Return True when ``n`` is a positive integral power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Return the smallest power of two that is >= ``n``."""
    if n <= 0:
        raise ValueError(f"next_power_of_two requires a positive size, got {n}")
    return 1 << (n - 1).bit_length()


def smallest_prime_factor(n: int) -> int:
    """Return the smallest prime factor of ``n`` (``n`` itself when prime)."""
    if n < 2:
        raise ValueError(f"smallest_prime_factor requires n >= 2, got {n}")
    if n % 2 == 0:
        return 2
    factor = 3
    while factor * factor <= n:
        if n % factor == 0:
            return factor
        factor += 2
    return n
