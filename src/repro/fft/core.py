"""Public FFT entry points with size/axis handling and backend dispatch.

These are the only transform functions the rest of the package calls.  The
pure backend routes power-of-two lengths to the iterative radix-2
Cooley-Tukey kernel (paper Fig. 1) and everything else to Bluestein's
chirp-z algorithm, so every length runs in O(n log n).

**Precision.**  All four transforms follow their input dtype: float64 /
complex128 input produces complex128 spectra (the historical behaviour),
while float32 / complex64 input produces complex64 spectra and float32
inverse transforms — the contract the fp32 inference mode
(:class:`repro.precision.PrecisionPolicy`) relies on.  The pure backend
runs its butterflies, chirps and packed real transforms *natively* in
single precision (half the memory traffic); ``numpy.fft`` computes
internally in double regardless, so the numpy backend rounds its result
once on the way out — same dtype contract, double-precision arithmetic.

**Destination buffers.**  :func:`rfft` and :func:`irfft` accept an
``out=`` array shaped and typed like the result (with the transformed
axis wherever ``axis`` says).  The workspace-arena execution path uses
this for buffer-stable results: on the pure backend the packed real
paths write their final unpack stage straight into ``out``; the numpy
backend cannot hand ``numpy.fft`` a destination, so the result is
computed normally and copied into ``out`` once.  Either way the returned
array *is* ``out`` and the values are bitwise-identical to the
``out=None`` call.
"""

from __future__ import annotations

import numpy as np

from .backend import get_backend
from .bluestein import fft_bluestein
from .cooley_tukey import fft_radix2
from .twiddle import is_power_of_two, twiddle_factors

__all__ = ["fft", "ifft", "rfft", "irfft"]


def _is_single(dtype: np.dtype) -> bool:
    """True for the single-precision real/complex dtypes."""
    return dtype == np.float32 or dtype == np.complex64


def _prepare(x: np.ndarray, n: int | None, axis: int) -> np.ndarray:
    """Move ``axis`` last and zero-pad or truncate it to length ``n``."""
    x = np.asarray(x)
    moved = np.moveaxis(x, axis, -1)
    if n is None:
        return moved
    if n <= 0:
        raise ValueError(f"transform length must be positive, got {n}")
    current = moved.shape[-1]
    if current == n:
        return moved
    if current > n:
        return moved[..., :n]
    padded = np.zeros(moved.shape[:-1] + (n,), dtype=moved.dtype)
    padded[..., :current] = moved
    return padded


def _pure_fft(x: np.ndarray, inverse: bool) -> np.ndarray:
    """Unnormalized pure-backend transform along the last axis."""
    if is_power_of_two(x.shape[-1]):
        return fft_radix2(x, inverse=inverse)
    return fft_bluestein(x, inverse=inverse)


def _resolve_out(out, shape: tuple[int, ...], dtype, axis: int) -> np.ndarray:
    """Validate an ``out=`` buffer and return it with ``axis`` moved last.

    ``shape``/``dtype`` describe the result in the *moved* layout (axis
    last).  The caller passed ``out`` in its own orientation, so move
    the same axis before checking.  ``casting="no"`` semantics: the
    dtype must match the result exactly — a silent cast would break the
    precision contract the arena path relies on.
    """
    out = np.asarray(out)
    moved = np.moveaxis(out, axis, -1)
    if moved.shape != shape:
        raise ValueError(
            f"out has shape {moved.shape} (axis moved last), "
            f"expected {shape}"
        )
    if moved.dtype != np.dtype(dtype):
        raise ValueError(
            f"out has dtype {moved.dtype}, expected {np.dtype(dtype)}"
        )
    if not moved.flags.writeable:
        raise ValueError("out buffer is not writeable")
    return moved


def _pure_rfft(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Pure-backend real FFT via the two-for-one packing.

    For even ``n`` the real signal is packed into a length-``n/2`` complex
    sequence ``z[k] = x[2k] + i x[2k+1]`` and one half-length transform is
    unpacked into the ``n // 2 + 1`` non-redundant bins — half the
    butterfly work of transform-then-truncate.  Odd lengths fall back to
    the full complex transform.  float32 input keeps the packing, the
    half-length transform and the unpacking entirely in complex64.
    """
    n = x.shape[-1]
    cdtype = np.complex64 if _is_single(x.dtype) else np.complex128
    if n < 2 or n % 2:
        result = _pure_fft(x.astype(cdtype), inverse=False)[..., : n // 2 + 1]
        if out is not None:
            np.copyto(out, result)
            return out
        return result
    m = n // 2
    z = x[..., 0::2] + 1j * x[..., 1::2]
    zf = _pure_fft(z.astype(cdtype, copy=False), inverse=False)  # (..., m)
    # Bins 0..m of Z with wraparound Z[m] = Z[0], and conj(Z[m-k]).
    zf_ext = np.concatenate([zf, zf[..., :1]], axis=-1)
    zf_rev = np.conj(zf_ext[..., ::-1])
    even = 0.5 * (zf_ext + zf_rev)  # FFT of x[0::2]
    odd = -0.5j * (zf_ext - zf_rev)  # FFT of x[1::2]
    twiddles = twiddle_factors(n, dtype=np.dtype(cdtype).name)[: m + 1]
    if out is not None:
        # Final unpack writes straight into the caller's buffer; float
        # addition is commutative bit-for-bit, so odd*t + even matches
        # even + t*odd exactly.
        np.multiply(twiddles, odd, out=out)
        out += even
        return out
    return even + twiddles * odd


def _pure_irfft(
    x: np.ndarray, n: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Pure-backend inverse real FFT (two-for-one unpacking for even ``n``).

    Inverts :func:`_pure_rfft`: the half spectrum is repacked into the
    length-``n/2`` complex spectrum of the interleaved sequence, one
    half-length inverse transform runs, and real/imaginary parts fan back
    out to the even/odd samples.  Odd lengths rebuild the full Hermitian
    spectrum and inverse-transform at length ``n``.  complex64 input
    yields a float32 signal with no intermediate widening.
    """
    cdtype = np.complex64 if _is_single(x.dtype) else np.complex128
    rdtype = np.float32 if cdtype == np.complex64 else np.float64
    x = x.astype(cdtype, copy=False)
    bins = n // 2 + 1
    if n < 2 or n % 2:
        full = np.zeros(x.shape[:-1] + (n,), dtype=cdtype)
        full[..., :bins] = x
        if n > 1:
            tail = np.conj(x[..., 1 : (n + 1) // 2])
            full[..., n - tail.shape[-1] :] = tail[..., ::-1]
        result = _pure_fft(full, inverse=True).real / n
        if out is not None:
            np.copyto(out, result.astype(rdtype, copy=False))
            return out
        return result
    m = n // 2
    # numpy's irfft convention: the DC and Nyquist bins are taken as real
    # (their imaginary parts are discarded); match it before unpacking.
    xk = x[..., :m].copy()  # bins 0..m-1
    xk[..., 0] = xk[..., 0].real
    x_rev = np.conj(x[..., m:0:-1]).copy()  # conj(X[m-k]) for k in 0..m-1
    x_rev[..., 0] = x[..., m].real
    even = 0.5 * (xk + x_rev)
    twiddles = twiddle_factors(n, inverse=True, dtype=np.dtype(cdtype).name)
    odd = 0.5 * (xk - x_rev) * twiddles[:m]
    z = even + 1j * odd
    zt = _pure_fft(z.astype(cdtype, copy=False), inverse=True) / m
    if out is None:
        out = np.empty(x.shape[:-1] + (n,), dtype=rdtype)
    out[..., 0::2] = zt.real
    out[..., 1::2] = zt.imag
    return out


def fft(x: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """Discrete Fourier transform of ``x`` along ``axis``.

    ``n`` zero-pads or truncates the transformed axis first, matching the
    ``numpy.fft`` convention.  Returns complex128, or complex64 for
    float32/complex64 input (see the module docstring).
    """
    moved = _prepare(x, n, axis)
    single = _is_single(moved.dtype)
    if get_backend() == "numpy":
        result = np.fft.fft(moved, axis=-1)
        if single:
            result = result.astype(np.complex64)
    else:
        cdtype = np.complex64 if single else np.complex128
        result = _pure_fft(np.asarray(moved, dtype=cdtype), inverse=False)
    return np.moveaxis(result, -1, axis)


def ifft(x: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """Inverse DFT of ``x`` along ``axis`` (with ``1/n`` normalization)."""
    moved = _prepare(x, n, axis)
    single = _is_single(moved.dtype)
    if get_backend() == "numpy":
        result = np.fft.ifft(moved, axis=-1)
        if single:
            result = result.astype(np.complex64)
    else:
        length = moved.shape[-1]
        cdtype = np.complex64 if single else np.complex128
        result = _pure_fft(np.asarray(moved, dtype=cdtype), inverse=True)
        result = result / length
    return np.moveaxis(result, -1, axis)


def rfft(
    x: np.ndarray,
    n: int | None = None,
    axis: int = -1,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """FFT of real input, returning the ``n // 2 + 1`` non-redundant bins.

    This is the transform the deployment format stores for each circulant
    block (paper section IV-A: "simply keep the FFT result FFT(w_i)"),
    halving both storage and per-inference multiply count.  float32 input
    produces complex64 spectra.  ``out`` receives the result in place
    (see the module docstring) and must match its shape and dtype.
    """
    moved = _prepare(x, n, axis)
    if np.iscomplexobj(moved):
        raise TypeError("rfft requires real input; use fft for complex data")
    single = _is_single(moved.dtype)
    cdtype = np.complex64 if single else np.complex128
    bins = moved.shape[-1] // 2 + 1
    out_moved = None
    if out is not None:
        out_moved = _resolve_out(
            out, moved.shape[:-1] + (bins,), cdtype, axis
        )
    if get_backend() == "numpy":
        result = np.fft.rfft(moved, axis=-1)
        if single:
            result = result.astype(np.complex64)
        if out_moved is not None:
            np.copyto(out_moved, result)
            return out
    else:
        rdtype = np.float32 if single else np.float64
        result = _pure_rfft(np.asarray(moved, dtype=rdtype), out=out_moved)
        if out_moved is not None:
            return out
    return np.moveaxis(result, -1, axis)


def irfft(
    x: np.ndarray,
    n: int,
    axis: int = -1,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Inverse of :func:`rfft`: half-spectrum back to a length-``n`` real signal.

    ``n`` is required because both even and odd lengths map to the same
    half-spectrum size.  complex64 input produces a float32 signal.
    ``out`` receives the result in place (see the module docstring) and
    must match its shape and dtype.
    """
    x = np.asarray(x)
    if n <= 0:
        raise ValueError(f"output length must be positive, got {n}")
    expected_bins = n // 2 + 1
    moved = np.moveaxis(x, axis, -1)
    if moved.shape[-1] != expected_bins:
        raise ValueError(
            f"irfft expected {expected_bins} bins for n={n}, "
            f"got {moved.shape[-1]}"
        )
    single = _is_single(moved.dtype)
    rdtype = np.float32 if single else np.float64
    out_moved = None
    if out is not None:
        out_moved = _resolve_out(
            out, moved.shape[:-1] + (n,), rdtype, axis
        )
    if get_backend() == "numpy":
        result = np.fft.irfft(moved, n=n, axis=-1)
        if single:
            result = result.astype(np.float32)
        if out_moved is not None:
            np.copyto(out_moved, result)
            return out
    else:
        result = _pure_irfft(moved, n, out=out_moved)
        if out_moved is not None:
            return out
    return np.moveaxis(result, -1, axis)
