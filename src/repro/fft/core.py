"""Public FFT entry points with size/axis handling and backend dispatch.

These are the only transform functions the rest of the package calls.  The
pure backend routes power-of-two lengths to the iterative radix-2
Cooley-Tukey kernel (paper Fig. 1) and everything else to Bluestein's
chirp-z algorithm, so every length runs in O(n log n).
"""

from __future__ import annotations

import numpy as np

from .backend import get_backend
from .bluestein import fft_bluestein
from .cooley_tukey import fft_radix2
from .twiddle import is_power_of_two

__all__ = ["fft", "ifft", "rfft", "irfft"]


def _prepare(x: np.ndarray, n: int | None, axis: int) -> np.ndarray:
    """Move ``axis`` last and zero-pad or truncate it to length ``n``."""
    x = np.asarray(x)
    moved = np.moveaxis(x, axis, -1)
    if n is None:
        return moved
    if n <= 0:
        raise ValueError(f"transform length must be positive, got {n}")
    current = moved.shape[-1]
    if current == n:
        return moved
    if current > n:
        return moved[..., :n]
    padded = np.zeros(moved.shape[:-1] + (n,), dtype=moved.dtype)
    padded[..., :current] = moved
    return padded


def _pure_fft(x: np.ndarray, inverse: bool) -> np.ndarray:
    """Unnormalized pure-backend transform along the last axis."""
    if is_power_of_two(x.shape[-1]):
        return fft_radix2(x, inverse=inverse)
    return fft_bluestein(x, inverse=inverse)


def fft(x: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """Discrete Fourier transform of ``x`` along ``axis``.

    ``n`` zero-pads or truncates the transformed axis first, matching the
    ``numpy.fft`` convention.  Returns ``complex128``.
    """
    moved = _prepare(x, n, axis)
    if get_backend() == "numpy":
        result = np.fft.fft(moved, axis=-1)
    else:
        result = _pure_fft(np.asarray(moved, dtype=np.complex128), inverse=False)
    return np.moveaxis(result, -1, axis)


def ifft(x: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """Inverse DFT of ``x`` along ``axis`` (with ``1/n`` normalization)."""
    moved = _prepare(x, n, axis)
    if get_backend() == "numpy":
        result = np.fft.ifft(moved, axis=-1)
    else:
        length = moved.shape[-1]
        result = _pure_fft(np.asarray(moved, dtype=np.complex128), inverse=True)
        result = result / length
    return np.moveaxis(result, -1, axis)


def rfft(x: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """FFT of real input, returning the ``n // 2 + 1`` non-redundant bins.

    This is the transform the deployment format stores for each circulant
    block (paper section IV-A: "simply keep the FFT result FFT(w_i)"),
    halving both storage and per-inference multiply count.
    """
    moved = _prepare(x, n, axis)
    if np.iscomplexobj(moved):
        raise TypeError("rfft requires real input; use fft for complex data")
    length = moved.shape[-1]
    if get_backend() == "numpy":
        result = np.fft.rfft(moved, axis=-1)
    else:
        result = _pure_fft(moved.astype(np.complex128), inverse=False)
        result = result[..., : length // 2 + 1]
    return np.moveaxis(result, -1, axis)


def irfft(x: np.ndarray, n: int, axis: int = -1) -> np.ndarray:
    """Inverse of :func:`rfft`: half-spectrum back to a length-``n`` real signal.

    ``n`` is required because both even and odd lengths map to the same
    half-spectrum size.
    """
    x = np.asarray(x)
    if n <= 0:
        raise ValueError(f"output length must be positive, got {n}")
    expected_bins = n // 2 + 1
    moved = np.moveaxis(x, axis, -1)
    if moved.shape[-1] != expected_bins:
        raise ValueError(
            f"irfft expected {expected_bins} bins for n={n}, "
            f"got {moved.shape[-1]}"
        )
    if get_backend() == "numpy":
        result = np.fft.irfft(moved, n=n, axis=-1)
    else:
        # Rebuild the full Hermitian spectrum, inverse-transform, take the
        # real part (the imaginary residue is round-off only).
        full = np.zeros(moved.shape[:-1] + (n,), dtype=np.complex128)
        full[..., :expected_bins] = moved
        if n > 1:
            tail = np.conj(moved[..., 1 : (n + 1) // 2])
            full[..., n - tail.shape[-1] :] = tail[..., ::-1]
        result = _pure_fft(full, inverse=True).real / n
    return np.moveaxis(result, -1, axis)
