"""Convolution and correlation via the circular convolution theorem.

This module is the bridge between the FFT kernel and the structured-matrix
layer algebra: the paper's central identity (Eqn. 3)

    C(w) @ x = IFFT(FFT(w) o FFT(x))

is exactly :func:`circular_convolve`, and the backward-pass identities
(Eqn. 4 in FFT form, derived in DESIGN.md section 6) are
:func:`circular_correlate`.  Direct O(n^2) reference implementations are
included for testing and for the complexity benchmarks.

Conventions (stated once, used everywhere):

* ``circular_convolve(a, b)[k] = sum_j a[j] * b[(k - j) mod n]``
* ``circular_correlate(a, b)[k] = sum_j a[j] * b[(j + k) mod n]``
  (real inputs; for complex inputs ``a`` is conjugated, matching the usual
  cross-correlation definition)
"""

from __future__ import annotations

import numpy as np

from .core import fft, ifft, irfft, rfft

__all__ = [
    "circular_convolve",
    "circular_convolve_direct",
    "circular_correlate",
    "circular_correlate_direct",
    "linear_convolve",
    "linear_convolve_direct",
    "overlap_add_convolve",
    "convolve2d",
    "convolve2d_direct",
]


def _common_length(a: np.ndarray, b: np.ndarray, n: int | None) -> int:
    """Resolve the circular length shared by ``a`` and ``b``."""
    if n is not None:
        if n <= 0:
            raise ValueError(f"circular length must be positive, got {n}")
        return n
    if a.shape[-1] != b.shape[-1]:
        raise ValueError(
            "circular operations need equal lengths (or explicit n); got "
            f"{a.shape[-1]} and {b.shape[-1]}"
        )
    return a.shape[-1]


def circular_convolve(
    a: np.ndarray, b: np.ndarray, n: int | None = None
) -> np.ndarray:
    """Circular convolution along the last axis via FFT -> o -> IFFT.

    Real inputs produce real output through the rfft path (half-spectrum
    pointwise product), which is the deployed inference kernel.  Leading
    axes broadcast.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    length = _common_length(a, b, n)
    if np.iscomplexobj(a) or np.iscomplexobj(b):
        return ifft(fft(a, n=length) * fft(b, n=length))
    return irfft(rfft(a, n=length) * rfft(b, n=length), n=length)


def circular_convolve_direct(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """O(n^2) reference circular convolution (last axis, equal lengths)."""
    a = np.asarray(a)
    b = np.asarray(b)
    n = _common_length(a, b, None)
    out = np.zeros(np.broadcast_shapes(a.shape, b.shape), dtype=np.result_type(a, b))
    for k in range(n):
        for j in range(n):
            out[..., k] = out[..., k] + a[..., j] * b[..., (k - j) % n]
    return out


def circular_correlate(
    a: np.ndarray, b: np.ndarray, n: int | None = None
) -> np.ndarray:
    """Circular cross-correlation along the last axis via conj(FFT) product.

    ``result[k] = sum_j conj(a[j]) * b[(j + k) mod n]``.  This realizes the
    transposed-circulant products in the training algorithm: for real
    ``w, g``: ``C(w)^T g = circular_correlate(w, g)``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    length = _common_length(a, b, n)
    if np.iscomplexobj(a) or np.iscomplexobj(b):
        return ifft(np.conj(fft(a, n=length)) * fft(b, n=length))
    return irfft(np.conj(rfft(a, n=length)) * rfft(b, n=length), n=length)


def circular_correlate_direct(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """O(n^2) reference circular correlation (last axis, equal lengths)."""
    a = np.asarray(a)
    b = np.asarray(b)
    n = _common_length(a, b, None)
    out = np.zeros(np.broadcast_shapes(a.shape, b.shape), dtype=np.result_type(a, b))
    for k in range(n):
        for j in range(n):
            out[..., k] = out[..., k] + np.conj(a[..., j]) * b[..., (j + k) % n]
    return out


def linear_convolve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Full linear convolution along the last axis via zero-padded FFT."""
    a = np.asarray(a)
    b = np.asarray(b)
    n = a.shape[-1] + b.shape[-1] - 1
    return circular_convolve(a, b, n=n)


def linear_convolve_direct(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """O(n*m) reference linear convolution along the last axis."""
    a = np.asarray(a)
    b = np.asarray(b)
    la, lb = a.shape[-1], b.shape[-1]
    shape = np.broadcast_shapes(a.shape[:-1], b.shape[:-1]) + (la + lb - 1,)
    out = np.zeros(shape, dtype=np.result_type(a, b))
    for i in range(la):
        out[..., i : i + lb] = out[..., i : i + lb] + a[..., i : i + 1] * b
    return out


def overlap_add_convolve(
    signal: np.ndarray, kernel: np.ndarray, block_size: int | None = None
) -> np.ndarray:
    """Linear convolution of a long signal by overlap-add of FFT blocks.

    Splits ``signal`` into chunks of ``block_size`` samples, convolves each
    chunk with ``kernel`` in the frequency domain, and overlap-adds the
    tails — the standard streaming embedded-DSP formulation.  Defaults to a
    block size of roughly 4x the kernel length.
    """
    signal = np.asarray(signal)
    kernel = np.asarray(kernel)
    if signal.ndim != 1 or kernel.ndim != 1:
        raise ValueError("overlap_add_convolve expects 1-D signal and kernel")
    if kernel.shape[0] == 0 or signal.shape[0] == 0:
        raise ValueError("overlap_add_convolve requires non-empty inputs")
    if block_size is None:
        block_size = max(4 * kernel.shape[0], 16)
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")

    total = signal.shape[0] + kernel.shape[0] - 1
    out = np.zeros(total, dtype=np.result_type(signal, kernel, np.float64))
    segment_out = block_size + kernel.shape[0] - 1
    for start in range(0, signal.shape[0], block_size):
        chunk = signal[start : start + block_size]
        chunk_conv = circular_convolve(chunk, kernel, n=segment_out)
        stop = min(start + chunk.shape[0] + kernel.shape[0] - 1, total)
        out[start:stop] += chunk_conv[: stop - start]
    return out


def convolve2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """'Valid' 2-D cross-correlation via zero-padded 2-D FFT.

    Matches the paper's CONV-layer definition (Eqn. 2): the kernel is slid
    without flipping, output size ``(H - r + 1, W - r + 1)``.
    """
    from .fft2 import fft2, ifft2

    image = np.asarray(image, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    if image.ndim != 2 or kernel.ndim != 2:
        raise ValueError("convolve2d expects 2-D image and kernel")
    h, w = image.shape
    r1, r2 = kernel.shape
    if r1 > h or r2 > w:
        raise ValueError(f"kernel {kernel.shape} larger than image {image.shape}")
    # Cross-correlation == convolution with the doubly-flipped kernel.
    flipped = kernel[::-1, ::-1]
    spectrum = fft2(image, shape=(h, w)) * fft2(flipped, shape=(h, w))
    full = ifft2(spectrum).real
    # The 'valid' region of the linear result sits at offset (r-1) once the
    # circular wrap-around rows/columns are discarded.
    return full[r1 - 1 : h, r2 - 1 : w]


def convolve2d_direct(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """O(H*W*r^2) reference 'valid' 2-D cross-correlation (paper Eqn. 2)."""
    image = np.asarray(image, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    if image.ndim != 2 or kernel.ndim != 2:
        raise ValueError("convolve2d_direct expects 2-D image and kernel")
    h, w = image.shape
    r1, r2 = kernel.shape
    out = np.zeros((h - r1 + 1, w - r2 + 1))
    for i in range(out.shape[0]):
        for j in range(out.shape[1]):
            out[i, j] = np.sum(image[i : i + r1, j : j + r2] * kernel)
    return out
