"""Pluggable FFT backend selection.

The paper's computing kernel is the FFT; everything above it (structured
matrices, layers, deployment) only calls the four transforms exposed by
:mod:`repro.fft`.  Two interchangeable backends are provided:

* ``"pure"``   — the package's own Cooley-Tukey / Bluestein kernels
  (the reproduction of the algorithm itself),
* ``"numpy"``  — ``numpy.fft`` (a fast path for training-scale runs).

Both produce identical results to floating-point accuracy; the parity is
checked by tests and by ``benchmarks/bench_fft_backends.py`` (E12).
The default is ``"numpy"`` so model training stays fast, while kernels and
algorithm benchmarks explicitly request ``"pure"``.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator

from ..exceptions import BackendError

__all__ = ["available_backends", "get_backend", "set_backend", "use_backend"]

_VALID_BACKENDS = ("numpy", "pure")

_state = threading.local()


def available_backends() -> tuple[str, ...]:
    """Return the names of the selectable FFT backends."""
    return _VALID_BACKENDS


def get_backend() -> str:
    """Return the name of the currently active FFT backend."""
    return getattr(_state, "backend", "numpy")


def set_backend(name: str) -> None:
    """Select the FFT backend used by all transforms in :mod:`repro.fft`."""
    if name not in _VALID_BACKENDS:
        raise BackendError(
            f"unknown FFT backend {name!r}; expected one of {_VALID_BACKENDS}"
        )
    _state.backend = name


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily switch the FFT backend within a ``with`` block."""
    previous = get_backend()
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)
