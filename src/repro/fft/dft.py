"""Reference O(n^2) discrete Fourier transform.

This is the ground truth every fast algorithm in :mod:`repro.fft` is tested
against, and the baseline for the Fig. 1 / section III-B complexity
benchmark (``benchmarks/bench_fig1_fft_scaling.py``).  It implements the DFT
definition directly via the full ``n x n`` DFT matrix.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dft_matrix", "naive_dft", "naive_idft"]


def dft_matrix(n: int, inverse: bool = False) -> np.ndarray:
    """Return the dense ``n x n`` DFT matrix ``W[j, k] = exp(-2i*pi*j*k/n)``.

    With ``inverse=True`` the conjugate matrix is returned *without* the
    ``1/n`` normalization (applied by :func:`naive_idft`).
    """
    if n <= 0:
        raise ValueError(f"DFT size must be positive, got {n}")
    sign = 2j if inverse else -2j
    indices = np.arange(n)
    return np.exp(sign * np.pi * np.outer(indices, indices) / n)


def naive_dft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Compute the DFT of ``x`` along ``axis`` by direct matrix multiply.

    Complexity is O(n^2) per transform, which is exactly what the paper's
    FFT kernel is designed to beat.
    """
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[axis]
    moved = np.moveaxis(x, axis, -1)
    result = moved @ dft_matrix(n).T
    return np.moveaxis(result, -1, axis)


def naive_idft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Compute the inverse DFT of ``x`` along ``axis`` (O(n^2) reference)."""
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[axis]
    moved = np.moveaxis(x, axis, -1)
    result = (moved @ dft_matrix(n, inverse=True).T) / n
    return np.moveaxis(result, -1, axis)
