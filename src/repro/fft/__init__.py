"""FFT computing kernel (paper section III-B).

Public surface:

* :func:`fft` / :func:`ifft` / :func:`rfft` / :func:`irfft` — 1-D
  transforms with backend dispatch,
* :func:`fft2` / :func:`ifft2` — 2-D transforms,
* convolution / correlation helpers implementing the circular convolution
  theorem (paper Eqn. 3),
* algorithm kernels (:func:`fft_radix2`, :func:`fft_mixed_radix`,
  :func:`fft_bluestein`, :func:`naive_dft`) for benchmarking,
* backend selection (:func:`set_backend`, :func:`use_backend`).
"""

from .backend import available_backends, get_backend, set_backend, use_backend
from .bluestein import fft_bluestein
from .convolution import (
    circular_convolve,
    circular_convolve_direct,
    circular_correlate,
    circular_correlate_direct,
    convolve2d,
    convolve2d_direct,
    linear_convolve,
    linear_convolve_direct,
    overlap_add_convolve,
)
from .cooley_tukey import fft_mixed_radix, fft_radix2, ifft_radix2
from .core import fft, ifft, irfft, rfft
from .dft import dft_matrix, naive_dft, naive_idft
from .fft2 import fft2, ifft2
from .rader import fft_rader, primitive_root
from .twiddle import (
    bit_reversal_permutation,
    is_power_of_two,
    next_power_of_two,
    smallest_prime_factor,
    twiddle_factors,
)

__all__ = [
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "fft",
    "ifft",
    "rfft",
    "irfft",
    "fft2",
    "ifft2",
    "fft_radix2",
    "ifft_radix2",
    "fft_mixed_radix",
    "fft_bluestein",
    "fft_rader",
    "primitive_root",
    "dft_matrix",
    "naive_dft",
    "naive_idft",
    "circular_convolve",
    "circular_convolve_direct",
    "circular_correlate",
    "circular_correlate_direct",
    "linear_convolve",
    "linear_convolve_direct",
    "overlap_add_convolve",
    "convolve2d",
    "convolve2d_direct",
    "bit_reversal_permutation",
    "is_power_of_two",
    "next_power_of_two",
    "smallest_prime_factor",
    "twiddle_factors",
]
