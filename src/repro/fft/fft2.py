"""Two-dimensional transforms, built by row-column decomposition.

A 2-D DFT factors into 1-D DFTs along each axis; these helpers exist for
the CONV-layer experiments and for validating the im2col reformulation
(paper Fig. 3) against frequency-domain 2-D convolution.
"""

from __future__ import annotations

import numpy as np

from .core import fft, ifft

__all__ = ["fft2", "ifft2"]


def fft2(
    x: np.ndarray,
    shape: tuple[int, int] | None = None,
    axes: tuple[int, int] = (-2, -1),
) -> np.ndarray:
    """2-D DFT over ``axes``, optionally zero-padding to ``shape`` first."""
    if len(axes) != 2 or axes[0] == axes[1]:
        raise ValueError(f"fft2 requires two distinct axes, got {axes}")
    sizes = (None, None) if shape is None else shape
    result = fft(x, n=sizes[0], axis=axes[0])
    return fft(result, n=sizes[1], axis=axes[1])


def ifft2(
    x: np.ndarray,
    shape: tuple[int, int] | None = None,
    axes: tuple[int, int] = (-2, -1),
) -> np.ndarray:
    """Inverse 2-D DFT over ``axes`` (with full ``1/(n1*n2)`` scaling)."""
    if len(axes) != 2 or axes[0] == axes[1]:
        raise ValueError(f"ifft2 requires two distinct axes, got {axes}")
    sizes = (None, None) if shape is None else shape
    result = ifft(x, n=sizes[0], axis=axes[0])
    return ifft(result, n=sizes[1], axis=axes[1])
