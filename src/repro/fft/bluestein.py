"""Bluestein chirp-z FFT for arbitrary (including prime) lengths.

The block sizes used by block-circulant layers are not always powers of two
(e.g. the paper's Arch. 2 uses 121-dimensional inputs), so the pure backend
needs an O(n log n) transform for every ``n``.  Bluestein's algorithm
re-expresses a length-``n`` DFT as a length-``m`` circular convolution with
``m >= 2n - 1`` a power of two, which the radix-2 kernel handles.
"""

from __future__ import annotations

import functools

import numpy as np

from .cooley_tukey import fft_radix2
from .twiddle import next_power_of_two

__all__ = ["fft_bluestein"]


@functools.lru_cache(maxsize=128)
def _chirp(n: int, inverse: bool, dtype: str = "complex128") -> np.ndarray:
    """Return the chirp sequence ``exp(sign * i*pi*k^2/n)`` for k in [0, n).

    Always computed in double precision and rounded once to ``dtype``, so
    complex64 chirps carry only the final rounding error.
    """
    sign = 1j if inverse else -1j
    k = np.arange(n, dtype=np.float64)
    # k^2 mod 2n keeps the argument small and the chirp numerically exact.
    exponent = (k * k) % (2.0 * n)
    chirp = np.exp(sign * np.pi * exponent / n).astype(dtype, copy=False)
    chirp.setflags(write=False)
    return chirp


@functools.lru_cache(maxsize=128)
def _kernel_spectrum(
    n: int, m: int, inverse: bool, dtype: str = "complex128"
) -> np.ndarray:
    """Radix-2 spectrum of the length-``m`` wrapped conjugate chirp kernel."""
    chirp = _chirp(n, inverse, dtype)
    kernel = np.zeros(m, dtype=dtype)
    kernel[:n] = np.conj(chirp)
    # Wrap the tail so the circular convolution of length m realizes the
    # linear convolution of the two length-n chirped sequences.
    kernel[m - n + 1:] = np.conj(chirp[1:][::-1])
    spectrum = fft_radix2(kernel)
    spectrum.setflags(write=False)
    return spectrum


def fft_bluestein(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Compute the DFT of ``x`` along the last axis for any length.

    Uses the identity ``j*k = (j^2 + k^2 - (k-j)^2) / 2`` to turn the DFT
    into a convolution.  No ``1/n`` normalization is applied for
    ``inverse=True`` (the dispatcher applies it).  Follows the input
    precision: float32/complex64 input keeps the whole chirp-z pipeline
    (and the radix-2 convolution inside it) in complex64.
    """
    x = np.asarray(x)
    dtype = (
        np.complex64
        if x.dtype in (np.float32, np.complex64)
        else np.complex128
    )
    x = x.astype(dtype, copy=False)
    n = x.shape[-1]
    if n == 1:
        return x.copy()
    m = next_power_of_two(2 * n - 1)

    chirp = _chirp(n, inverse, dtype.__name__)
    padded = np.zeros(x.shape[:-1] + (m,), dtype=dtype)
    padded[..., :n] = x * chirp

    spectrum = fft_radix2(padded) * _kernel_spectrum(n, m, inverse, dtype.__name__)
    convolved = np.conj(fft_radix2(np.conj(spectrum))) / m
    return convolved[..., :n] * chirp
