"""The per-precision session pool behind the :class:`Engine` facade.

One frozen :class:`~repro.runtime.session.InferenceSession` exists per
``(model, precision)`` pair, at most.  Sessions are frozen *lazily* —
the first request for a pair pays the compile + warm-up cost, every
later request reuses the pooled session — and freezing the same model
at a second precision shares the already-computed weight spectra:

* live :class:`~repro.nn.module.Sequential` sources share the layers'
  dtype-keyed :class:`~repro.structured.spectral.SpectrumCache` (the
  complex128 base spectrum is computed once; narrower precisions round
  it, never re-transform),
* artifact sources (:class:`~repro.embedded.deploy.DeployedModel`) are
  loaded from disk once and their stored complex64 spectra are
  materialized per precision from the same arrays.

The pool is thread-safe: the serving front-end freezes sessions from
its inference thread while the event loop routes requests, so ``get``
holds a lock around the freeze.  ``close`` is idempotent and releases
every *owned* session (adopted sessions — see :meth:`adopt` — stay
open, their owner closes them).
"""

from __future__ import annotations

import threading
from typing import Callable

from ..exceptions import ConfigurationError
from ..runtime.session import InferenceSession

__all__ = ["SessionPool"]


class SessionPool:
    """Lazily-frozen sessions keyed by ``(model_name, precision)``.

    ``freeze`` is the factory the pool calls on a miss:
    ``freeze(model_name, precision) -> InferenceSession``; the
    :class:`~repro.engine.core.Engine` supplies one that resolves the
    model source and executor policy.  Sessions are warmed
    (:meth:`~repro.runtime.session.InferenceSession.warm_up`) as they
    enter the pool, so a sharded executor forks its worker pool exactly
    once, on first use.
    """

    def __init__(self, freeze: Callable[[str, str], InferenceSession]):
        self._freeze = freeze
        self._sessions: dict[tuple[str, str], InferenceSession] = {}
        self._owned: set[tuple[str, str]] = set()
        #: guards the dict only — held for microseconds, so readers
        #: (``snapshot`` on the serving event loop) never wait out a
        #: compile.  ``_freeze_lock`` serializes the freezes themselves.
        self._lock = threading.Lock()
        self._freeze_lock = threading.Lock()
        self._closed = False

    def get(self, model: str, precision: str) -> InferenceSession:
        """The pooled session for ``(model, precision)``, frozen on miss.

        Double-checked locking: the expensive ``freeze().warm_up()``
        runs *outside* the dict lock, so introspection (``snapshot``)
        and other routes' lookups never block behind a plan compile or
        a worker-pool fork.
        """
        key = (model, precision)
        with self._lock:
            if self._closed:
                raise ConfigurationError("session pool is closed")
            session = self._sessions.get(key)
        if session is not None:
            return session
        with self._freeze_lock:
            with self._lock:
                if self._closed:
                    raise ConfigurationError("session pool is closed")
                session = self._sessions.get(key)
            if session is not None:  # lost the race to another freezer
                return session
            session = self._freeze(model, precision).warm_up()
            with self._lock:
                if self._closed:
                    # The pool closed mid-freeze: don't leak the pool
                    # workers of a session nobody will ever serve.
                    session.close()
                    raise ConfigurationError("session pool is closed")
                self._sessions[key] = session
                self._owned.add(key)
            return session

    def adopt(
        self, model: str, precision: str, session: InferenceSession
    ) -> InferenceSession:
        """Seed the pool with an externally-owned, already-bound session.

        Used by the deprecation shims: the caller built (and keeps
        ownership of) the session; the pool serves it but :meth:`close`
        will not touch it.
        """
        key = (model, precision)
        with self._lock:
            if self._closed:
                raise ConfigurationError("session pool is closed")
            if key in self._sessions:
                raise ConfigurationError(
                    f"pool already holds a session for {key}"
                )
            self._sessions[key] = session
            return session

    def snapshot(self) -> dict:
        """A consistent ``{(model, precision): session}`` copy.

        Taken under the pool lock, so a concurrent :meth:`close` (or
        freeze) cannot tear the view mid-iteration — introspection
        callers (the server's ``info`` op) iterate the copy safely.
        """
        with self._lock:
            return dict(self._sessions)

    def __len__(self) -> int:
        return len(self._sessions)

    def close(self) -> None:
        """Close every owned session; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions, self._sessions = self._sessions, {}
            owned, self._owned = self._owned, set()
        for key, session in sessions.items():
            if key in owned:
                session.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        return (
            f"SessionPool(sessions={sorted(self._sessions)}, "
            f"closed={self._closed})"
        )
