"""Declarative, validated configuration for the :class:`Engine` facade.

An :class:`EngineConfig` says *what to run* — which models, at which
precisions, under which executor/transport/batching policy — while the
:class:`~repro.engine.core.Engine` decides *how* (pooled sessions,
lazy freezing, per-request routing).  Every field is validated at
construction, so a typo'd precision or an unknown transport fails at
config time instead of on the first request.

Model sources are deliberately permissive: a registry value may be

* a path (``str`` / :class:`~pathlib.Path`) to a deployment artifact —
  ``repro deploy`` (format v1) or ``repro build`` (format v2, possibly
  quantized with fixed-point weight storage; see ``docs/pipeline.md``)
  — loaded lazily, once, and shared across all precisions,
* a :class:`~repro.embedded.deploy.DeployedModel` instance,
* a live (trained) :class:`~repro.nn.module.Sequential` — frozen
  directly, sharing the layers' dtype-keyed spectrum caches across the
  per-precision sessions.

``priority_classes`` names the request priority levels from lowest to
highest; requests may carry either a class name or its integer index
(see :meth:`EngineConfig.resolve_priority`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from ..exceptions import ConfigurationError
from ..precision import PrecisionPolicy
from ..runtime.executors import effective_cpu_count
from ..runtime.session import InferenceSession

__all__ = ["EngineConfig", "DEFAULT_MODEL_NAME"]

#: Registry key used when a single anonymous model source is configured.
DEFAULT_MODEL_NAME = "default"

_EXECUTORS = ("auto", "serial", "threaded", "sharded")
_TRANSPORTS = ("pipe", "shm")
_SHARD_MODES = ("auto", "batch", "rows")


def _resolve_precision_name(spec) -> str:
    """Precision spec -> name, as a :class:`ConfigurationError` on junk.

    :meth:`PrecisionPolicy.resolve` raises a plain :class:`ValueError`;
    the engine's contract is that every invalid request/config field
    surfaces as ``ConfigurationError`` (which the serving front-end
    answers as a clean error frame, not an "internal error").
    """
    try:
        return PrecisionPolicy.resolve(spec).name
    except ConfigurationError:
        raise
    except ValueError as exc:
        raise ConfigurationError(str(exc)) from None


def _is_model_source(source) -> bool:
    """A path, a records-holder (DeployedModel), a live Sequential, or an
    already-bound session (adopted as-is, at its own precision)."""
    if isinstance(source, (str, Path, InferenceSession)):
        return True
    if hasattr(source, "records"):  # DeployedModel duck type
        return True
    return callable(getattr(source, "parameters", None))  # Sequential


@dataclass(frozen=True)
class EngineConfig:
    """One declarative description of an inference engine.

    Parameters
    ----------
    model:
        Shorthand for ``models={"default": model}``; mutually exclusive
        with ``models``.
    models:
        Mapping of model name -> source (artifact path,
        :class:`~repro.embedded.deploy.DeployedModel`, or trained
        :class:`~repro.nn.module.Sequential`).
    default_model:
        Name served when a request names no model.  Defaults to the only
        registered model, or ``"default"`` when several are registered
        and one is named that.
    precisions:
        Precision names the session pool may freeze (``"fp64"`` /
        ``"fp32"``).  One session per (model, precision) pair exists at
        most; requests asking for a precision outside this tuple are
        rejected.
    precision:
        Default precision for requests that name none; must be a member
        of ``precisions`` (defaults to the first).
    executor:
        ``"serial"`` (in-process, op by op), ``"threaded"``
        (in-process thread pool — the GIL-releasing numpy kernels
        overlap on real cores with zero serialization), ``"sharded"``
        (fork pool + transport), or ``"auto"`` (threaded on multi-core
        hosts, serial on single-core, and serial below a small row
        threshold — fork only when explicitly requested).  ``None``
        (the default) reads the ``REPRO_EXECUTOR`` environment
        variable, falling back to ``"serial"``.  Whatever the kind,
        **one shared worker pool serves every (model, precision)
        route**: plans register with the pool by id, so an engine with
        M models × P precisions still holds ``workers`` processes (or
        ``threads`` threads), not ``M * P`` pools.  See
        ``docs/performance.md`` for the selection guide.
    workers, transport, shard_mode:
        Pool policy: ``workers`` sizes the shared fork pool (``None``
        means ``os.cpu_count()``) and is the threaded fallback size
        when ``threads`` is unset; ``transport`` and ``shard_mode``
        apply to the fork/threaded paths respectively and are ignored
        for ``executor="serial"``.
    threads:
        Thread count for ``executor="threaded"``/``"auto"``; ``None``
        falls back to ``workers``, then to the effective core count
        (``sched_getaffinity``, container-aware).
    profile:
        Arm per-op-kind timing on every route's executor; cumulative
        per-kind nanoseconds surface via the serving ``info`` op
        (``routes[...]["op_stats"]``) and ``repro predict --profile``.
    conv_tile, row_shards:
        Plan-compilation knobs passed through to
        :meth:`~repro.runtime.session.InferenceSession.freeze`.
    arena:
        Give every route's executor threads / fork workers a per-plan
        workspace arena of reusable batch-bucketed buffers, making the
        steady-state hot path allocation-free (default on;
        bitwise-neutral).  Disable to fall back to fresh-buffer
        execution, e.g. for memory-constrained many-route deployments.
    batch_buckets:
        Strictly increasing batch sizes the arena rounds up to
        (``None`` uses
        :data:`~repro.runtime.workspace.DEFAULT_BATCH_BUCKETS`).
        Batches beyond the largest bucket get exact-size buffers.
    fuse:
        Run the :func:`~repro.runtime.plan.fuse_plan` compile pass on
        every frozen plan, folding affine / flatten / activation chains
        into their producing compute op (default on; bitwise-neutral).
    max_batch, max_wait_ms:
        Micro-batching limits for the serving front-end.
    priority_classes:
        Request priority levels, lowest first.  Requests carry a class
        name or integer index; higher classes flush first.
    default_priority:
        Class applied to requests that name none.
    max_payload:
        Per-request wire payload bound for the serving front-end.
    max_queue_rows:
        Admission bound: total rows a route may hold in flight (queued
        plus running) before further requests are shed with a typed
        ``overloaded`` error.
    queue_class_caps:
        Optional per-priority-class row caps (class name -> rows), each
        tighter than ``max_queue_rows``; keeps a low-priority flood from
        occupying the whole queue.  Keys must name ``priority_classes``
        members.
    max_streams:
        Open-stream cap for the serving front-end: ``stream_open``
        beyond it is shed with a typed ``overloaded`` error.  Unlike a
        request, an open stream holds per-layer activation history
        between pushes, so the cap bounds resident memory, not just
        concurrency.
    max_stream_state_bytes:
        Optional total budget for all open streams' resident history
        (``None`` = bounded by ``max_streams`` alone).  A plan's
        per-stream state size is fixed at compile time, so admission is
        exact — no stream is ever admitted that could later exceed the
        budget.
    rate_limit_rps:
        Optional global requests-per-second admission limit for the
        serving front-end (token bucket; ``None`` = unlimited).
    rate_burst:
        Token-bucket burst capacity (``None`` = ``max(1, rate)``).
    fault_timeout_s:
        Sharded-executor per-task deadline in seconds; a pool task with
        no result by then counts as a worker fault and triggers
        recovery (respawn once, then degrade to serial).  ``None``
        disables the timeout backstop.
    """

    model: object | None = None
    models: Mapping[str, object] = field(default_factory=dict)
    default_model: str | None = None
    precisions: tuple[str, ...] = ("fp64",)
    precision: str | None = None
    executor: str | None = None
    workers: int | None = None
    threads: int | None = None
    profile: bool = False
    transport: str = "pipe"
    shard_mode: str = "auto"
    conv_tile: int | None = None
    row_shards: int | None = None
    arena: bool = True
    batch_buckets: tuple[int, ...] | None = None
    fuse: bool = True
    max_batch: int = 32
    max_wait_ms: float = 2.0
    priority_classes: tuple[str, ...] = ("batch", "normal", "interactive")
    default_priority: str = "normal"
    max_payload: int = 1 << 28
    max_queue_rows: int = 1024
    queue_class_caps: Mapping[str, int] = field(default_factory=dict)
    max_streams: int = 64
    max_stream_state_bytes: int | None = None
    rate_limit_rps: float | None = None
    rate_burst: int | None = None
    fault_timeout_s: float | None = 60.0

    def __post_init__(self):
        # --- model registry -------------------------------------------
        if self.model is not None and self.models:
            raise ConfigurationError(
                "pass either `model` (single anonymous source) or "
                "`models` (named registry), not both"
            )
        models = dict(self.models)
        if self.model is not None:
            models = {DEFAULT_MODEL_NAME: self.model}
        for name, source in models.items():
            if not isinstance(name, str) or not name:
                raise ConfigurationError(
                    f"model names must be non-empty strings, got {name!r}"
                )
            if not _is_model_source(source):
                raise ConfigurationError(
                    f"model {name!r}: expected an artifact path, a "
                    f"DeployedModel, or a Sequential, got {type(source).__name__}"
                )
        object.__setattr__(self, "models", models)
        object.__setattr__(self, "model", None)
        default_model = self.default_model
        if default_model is None and models:
            default_model = (
                next(iter(models))
                if len(models) == 1
                else DEFAULT_MODEL_NAME if DEFAULT_MODEL_NAME in models else None
            )
            if default_model is None:
                raise ConfigurationError(
                    "several models are registered; set default_model "
                    f"to one of {sorted(models)}"
                )
        if default_model is not None and default_model not in models:
            raise ConfigurationError(
                f"default_model {default_model!r} is not registered "
                f"(have {sorted(models)})"
            )
        object.__setattr__(self, "default_model", default_model)

        # --- precisions -----------------------------------------------
        if not self.precisions:
            raise ConfigurationError("precisions must name at least one policy")
        precisions = tuple(
            _resolve_precision_name(p) for p in self.precisions
        )
        if len(set(precisions)) != len(precisions):
            raise ConfigurationError(
                f"duplicate entries in precisions {precisions}"
            )
        object.__setattr__(self, "precisions", precisions)
        precision = self.precision or precisions[0]
        precision = _resolve_precision_name(precision)
        if precision not in precisions:
            raise ConfigurationError(
                f"default precision {precision!r} is not in the pool "
                f"{precisions}"
            )
        object.__setattr__(self, "precision", precision)

        # --- executor policy ------------------------------------------
        executor = self.executor
        if executor is None:
            executor = os.environ.get("REPRO_EXECUTOR") or "serial"
        if executor not in _EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {_EXECUTORS}, got {executor!r}"
            )
        object.__setattr__(self, "executor", executor)
        if self.transport not in _TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {_TRANSPORTS}, got {self.transport!r}"
            )
        if self.shard_mode not in _SHARD_MODES:
            raise ConfigurationError(
                f"shard_mode must be one of {_SHARD_MODES}, "
                f"got {self.shard_mode!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.threads is not None and self.threads < 1:
            raise ConfigurationError(
                f"threads must be >= 1, got {self.threads}"
            )
        for knob in ("conv_tile", "row_shards"):
            value = getattr(self, knob)
            if value is not None and value < 1:
                raise ConfigurationError(f"{knob} must be >= 1, got {value}")
        if self.batch_buckets is not None:
            buckets = tuple(self.batch_buckets)
            if not buckets:
                raise ConfigurationError(
                    "batch_buckets must be None or a non-empty sequence"
                )
            for b in buckets:
                if not isinstance(b, int) or isinstance(b, bool) or b < 1:
                    raise ConfigurationError(
                        f"batch_buckets entries must be positive integers, "
                        f"got {b!r}"
                    )
            if list(buckets) != sorted(set(buckets)):
                raise ConfigurationError(
                    f"batch_buckets must be strictly increasing, "
                    f"got {buckets}"
                )
            object.__setattr__(self, "batch_buckets", buckets)
        if self.batch_buckets is not None and not self.arena:
            raise ConfigurationError(
                "batch_buckets was set but arena=False; the buckets "
                "would be ignored"
            )

        # --- batching + priorities ------------------------------------
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.max_payload < 1:
            raise ConfigurationError(
                f"max_payload must be >= 1, got {self.max_payload}"
            )
        classes = tuple(self.priority_classes)
        if not classes or len(set(classes)) != len(classes):
            raise ConfigurationError(
                f"priority_classes must be distinct and non-empty, "
                f"got {classes}"
            )
        object.__setattr__(self, "priority_classes", classes)
        self.resolve_priority(self.default_priority)

        # --- admission + fault policy ---------------------------------
        if self.max_queue_rows < 1:
            raise ConfigurationError(
                f"max_queue_rows must be >= 1, got {self.max_queue_rows}"
            )
        caps = dict(self.queue_class_caps)
        for name, cap in caps.items():
            if name not in classes:
                raise ConfigurationError(
                    f"queue_class_caps names unknown priority class "
                    f"{name!r}; expected one of {classes}"
                )
            if not isinstance(cap, int) or isinstance(cap, bool) or cap < 1:
                raise ConfigurationError(
                    f"queue_class_caps[{name!r}] must be a positive "
                    f"integer, got {cap!r}"
                )
            if cap > self.max_queue_rows:
                raise ConfigurationError(
                    f"queue_class_caps[{name!r}]={cap} exceeds "
                    f"max_queue_rows={self.max_queue_rows}"
                )
        object.__setattr__(self, "queue_class_caps", caps)
        if self.max_streams < 1:
            raise ConfigurationError(
                f"max_streams must be >= 1, got {self.max_streams}"
            )
        if (
            self.max_stream_state_bytes is not None
            and self.max_stream_state_bytes < 1
        ):
            raise ConfigurationError(
                f"max_stream_state_bytes must be >= 1 or None, "
                f"got {self.max_stream_state_bytes}"
            )
        if self.rate_limit_rps is not None and self.rate_limit_rps <= 0:
            raise ConfigurationError(
                f"rate_limit_rps must be positive, got {self.rate_limit_rps}"
            )
        if self.rate_burst is not None:
            if self.rate_limit_rps is None:
                raise ConfigurationError(
                    "rate_burst requires rate_limit_rps to be set"
                )
            if self.rate_burst < 1:
                raise ConfigurationError(
                    f"rate_burst must be >= 1, got {self.rate_burst}"
                )
        if self.fault_timeout_s is not None and self.fault_timeout_s <= 0:
            raise ConfigurationError(
                f"fault_timeout_s must be positive or None, "
                f"got {self.fault_timeout_s}"
            )

    # ------------------------------------------------------------------
    # Resolution helpers (the single place request fields are validated)
    # ------------------------------------------------------------------
    def resolve_model(self, name: str | None) -> str:
        """Normalize a request's model name against the registry."""
        if name is None:
            if self.default_model is None:
                raise ConfigurationError("engine has no models registered")
            return self.default_model
        if name not in self.models:
            raise ConfigurationError(
                f"unknown model {name!r}; registered: {sorted(self.models)}"
            )
        return name

    def resolve_executor(self) -> str:
        """The concrete executor kind ``"auto"`` resolves to on this host.

        ``"auto"`` picks ``"threaded"`` when the process can schedule
        on more than one core (``sched_getaffinity``-aware, so a 1-CPU
        container resolves serial even on a big host) and ``"serial"``
        otherwise; it never picks the fork pool — IPC sharding is an
        explicit opt-in.  Every other kind resolves to itself.
        """
        if self.executor != "auto":
            return self.executor
        return "threaded" if effective_cpu_count() > 1 else "serial"

    def resolve_threads(self) -> int:
        """Thread-pool size for the threaded executor: ``threads``,
        else ``workers``, else the effective core count."""
        if self.threads is not None:
            return self.threads
        if self.workers is not None:
            return self.workers
        return effective_cpu_count()

    def resolve_precision(self, spec) -> str:
        """Normalize a request's precision against the pool."""
        if spec is None:
            return self.precision
        name = _resolve_precision_name(spec)
        if name not in self.precisions:
            raise ConfigurationError(
                f"precision {name!r} is not pooled by this engine "
                f"(have {self.precisions})"
            )
        return name

    def resolve_priority(self, spec) -> int:
        """Normalize a priority class name or index to an integer level."""
        if spec is None:
            spec = self.default_priority
        if isinstance(spec, str):
            try:
                return self.priority_classes.index(spec)
            except ValueError:
                raise ConfigurationError(
                    f"unknown priority class {spec!r}; "
                    f"expected one of {self.priority_classes} "
                    f"or an index 0..{len(self.priority_classes) - 1}"
                ) from None
        try:
            level = int(spec)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"priority must be a class name or integer index, "
                f"got {spec!r}"
            ) from None
        if not 0 <= level < len(self.priority_classes):
            raise ConfigurationError(
                f"priority index {level} out of range "
                f"0..{len(self.priority_classes) - 1}"
            )
        return level

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-able summary (model sources shown by type, not value)."""
        return {
            "models": {
                name: (
                    str(source)
                    if isinstance(source, (str, Path))
                    else type(source).__name__
                )
                for name, source in self.models.items()
            },
            "default_model": self.default_model,
            "precisions": list(self.precisions),
            "precision": self.precision,
            "executor": self.executor,
            "resolved_executor": self.resolve_executor(),
            "workers": self.workers,
            "threads": self.threads,
            "profile": self.profile,
            "transport": self.transport,
            "shard_mode": self.shard_mode,
            "conv_tile": self.conv_tile,
            "row_shards": self.row_shards,
            "arena": self.arena,
            "batch_buckets": (
                list(self.batch_buckets)
                if self.batch_buckets is not None
                else None
            ),
            "fuse": self.fuse,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "priority_classes": list(self.priority_classes),
            "default_priority": self.default_priority,
            "max_payload": self.max_payload,
            "max_queue_rows": self.max_queue_rows,
            "queue_class_caps": dict(self.queue_class_caps),
            "max_streams": self.max_streams,
            "max_stream_state_bytes": self.max_stream_state_bytes,
            "rate_limit_rps": self.rate_limit_rps,
            "rate_burst": self.rate_burst,
            "fault_timeout_s": self.fault_timeout_s,
        }
