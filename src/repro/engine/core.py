"""The :class:`Engine` facade — the one public door to the runtime.

Motivation: the reproduction grew four overlapping entry points to the
same frozen block-circulant runtime (``InferenceSession.freeze``,
``DeployedModel.to_session``, ``DeployedModel.serve``, and the
``InferenceServer`` constructor), each single-model, single-session,
and configured by its own kwargs.  The engine separates *what to run*
(a declarative :class:`~repro.engine.config.EngineConfig`: model
registry, pooled precisions, executor/transport/batching policy) from
*how it runs* (a lazily-frozen per-precision
:class:`~repro.engine.pool.SessionPool`), and gives every consumer —
direct calls, the serving front-end, the CLI — the same typed
:class:`~repro.engine.types.InferenceRequest` /
:class:`~repro.engine.types.InferenceResult` API.

Quickstart::

    from repro.engine import Engine

    with Engine(model="arch1.npz", precisions=("fp64", "fp32")) as engine:
        labels = engine.predict(rows)                     # default route
        fast = engine.predict(rows, precision="fp32")     # pooled session
        engine.serve(port=0)                              # TCP front door

The legacy entry points still work but are deprecation shims over this
facade; see ``docs/engine.md`` for the migration table.
"""

from __future__ import annotations

import threading
import time
import warnings
from pathlib import Path

import numpy as np

from ..exceptions import ConfigurationError
from ..runtime.executors import (
    AUTO_MIN_ROWS,
    ForkWorkerPool,
    SerialExecutor,
    ShardedExecutor,
    ThreadWorkerPool,
    ThreadedExecutor,
)
from ..runtime.session import InferenceSession
from .config import EngineConfig
from .pool import SessionPool
from .types import InferenceRequest, InferenceResult

__all__ = ["Engine"]


class Engine:
    """Multi-model, multi-precision inference facade over pooled sessions.

    Construct from a config, or from config fields directly::

        Engine(EngineConfig(model="arch1.npz"))
        Engine(model="arch1.npz", precisions=("fp64", "fp32"))
        Engine(models={"mnist": "arch1.npz", "cifar": "arch3.npz"},
               default_model="mnist", executor="sharded", workers=4)

    Sessions freeze lazily on first use, one per (model, precision)
    pair, and are reused for every later call (see
    :class:`~repro.engine.pool.SessionPool`).  ``close`` releases every
    pooled session (idempotent); the engine is a context manager.
    """

    def __init__(self, config: EngineConfig | None = None, **fields):
        if config is not None and fields:
            raise ConfigurationError(
                "pass either an EngineConfig or config fields, not both"
            )
        self.config = config if config is not None else EngineConfig(**fields)
        self._pool = SessionPool(self._freeze)
        self._artifacts: dict[str, object] = {}
        self._stream_plans: dict[tuple[str, str], object] = {}
        self._stream_lock = threading.Lock()
        self._closed = False
        # One shared worker pool for the whole route grid: every pooled
        # session's executor registers its plan here by id, so M models
        # × P precisions share `workers` processes (or `threads`
        # threads) instead of holding a pool each.  Construction is
        # cheap — nothing forks or spawns until the first parallel call
        # (or warm_up()).
        kind = self.config.resolve_executor()
        if kind == "sharded":
            self._workpool = ForkWorkerPool(
                workers=self.config.workers,
                transport=self.config.transport,
                task_timeout=self.config.fault_timeout_s,
            )
        elif kind == "threaded":
            self._workpool = ThreadWorkerPool(
                threads=self.config.resolve_threads()
            )
        else:
            self._workpool = None
        # Pre-adopt sources that are already-frozen sessions (the shim
        # path): the pool serves them, their owner closes them.
        for name, source in self.config.models.items():
            if isinstance(source, InferenceSession):
                self._adopt(name, source)

    def _check_adoptable(self, name: str, session: InferenceSession) -> None:
        """The one adoption rule: the session's precision must be pooled
        (anything else would be unreachable at every route)."""
        if session.precision not in self.config.precisions:
            raise ConfigurationError(
                f"adopted session for {name!r} is {session.precision}; "
                f"pooled precisions are {self.config.precisions}"
            )

    def _adopt(self, name: str, session: InferenceSession) -> None:
        """Seed the pool with an externally-owned session, validated."""
        self._check_adoptable(name, session)
        self._pool.adopt(name, session.precision, session)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_session(
        cls, session: InferenceSession, name: str = "default"
    ) -> "Engine":
        """Wrap one externally-owned bound session as a single-route engine.

        The deprecation shim for ``InferenceServer(session)`` uses this;
        the caller keeps ownership of the session (``engine.close()``
        will not close it).
        """
        return cls(
            models={name: session},
            precisions=(session.precision,),
        )

    def register(self, name: str, source) -> "Engine":
        """Add a model to the registry after construction.

        ``source`` is anything :class:`EngineConfig` accepts (path,
        artifact, live model, or bound session).  Returns ``self`` for
        chaining.
        """
        merged = dict(self.config.models)
        if name in merged:
            raise ConfigurationError(f"model {name!r} is already registered")
        if self.config.resolve_executor() == "sharded" and len(self._pool):
            # Existing routes already forked their pools — this process
            # may have serving threads by now, and the new route's pool
            # would fork lazily from a threaded process (inherited-lock
            # hazard).  Register the full grid before serving instead.
            warnings.warn(
                f"registering {name!r} on a sharded engine that already "
                "froze sessions: its worker pool will fork lazily, "
                "possibly after threads exist — register every model "
                "before serving (or call warm_up() from a thread-free "
                "process) to avoid the fork-with-threads hazard",
                RuntimeWarning,
                stacklevel=2,
            )
        merged[name] = source
        from dataclasses import replace

        # Validate before committing anything: a rejected session must
        # enter neither the registry nor the pool.
        if isinstance(source, InferenceSession):
            self._check_adoptable(name, source)
        self.config = replace(
            self.config,
            models=merged,
            default_model=self.config.default_model or name,
        )
        if isinstance(source, InferenceSession):
            self._adopt(name, source)
        return self

    # ------------------------------------------------------------------
    # Session pool
    # ------------------------------------------------------------------
    def _make_executor(self):
        """A fresh per-route executor attached to the shared pool."""
        kind = self.config.resolve_executor()
        if kind == "sharded":
            return ShardedExecutor(
                mode=self.config.shard_mode,
                pool=self._workpool,
                profile=self.config.profile,
            )
        if kind == "threaded":
            return ThreadedExecutor(
                mode=self.config.shard_mode,
                pool=self._workpool,
                min_rows=AUTO_MIN_ROWS if self.config.executor == "auto" else 0,
                profile=self.config.profile,
            )
        if self.config.profile:
            return SerialExecutor(profile=True)
        return None

    def _source(self, name: str):
        """The registry source for ``name``; artifact paths load once."""
        source = self.config.models[name]
        if isinstance(source, (str, Path)):
            artifact = self._artifacts.get(name)
            if artifact is None:
                from ..embedded.deploy import DeployedModel

                artifact = DeployedModel.load(source)
                self._artifacts[name] = artifact
            return artifact
        return source

    def _freeze(self, name: str, precision: str) -> InferenceSession:
        """Pool factory: freeze one (model, precision) session."""
        source = self._source(name)
        if isinstance(source, InferenceSession):
            raise ConfigurationError(
                f"model {name!r} is an adopted {source.precision} session; "
                f"it cannot be re-frozen at {precision}"
            )
        kwargs = dict(
            precision=precision,
            executor=self._make_executor(),
            conv_tile=self.config.conv_tile,
            row_shards=self.config.row_shards,
            arena=self.config.arena,
            batch_buckets=self.config.batch_buckets,
            fuse=self.config.fuse,
        )
        if hasattr(source, "records"):  # DeployedModel artifact
            return InferenceSession.from_deployed(source, **kwargs)
        return InferenceSession.freeze(source, **kwargs)

    def session(
        self, model: str | None = None, precision=None
    ) -> InferenceSession:
        """The pooled session for a route (frozen + warmed on first use).

        The engine retains ownership — do not close the returned
        session; close the engine.
        """
        if self._closed:
            raise ConfigurationError("engine is closed")
        return self._pool.get(
            self.config.resolve_model(model),
            self.config.resolve_precision(precision),
        )

    def stream_plan(self, model: str | None = None, precision=None):
        """The pooled :class:`~repro.streaming.StreamPlan` for a route.

        Compiled lazily from the same registry source the batch session
        pool uses, one plan per (model, precision) pair, shared by every
        stream on the route (the plan is immutable; all per-stream state
        lives in the :class:`~repro.streaming.StreamState` objects it
        opens).  Raises :class:`~repro.exceptions.DeploymentError` when
        the model's layers are not streamable and
        :class:`~repro.exceptions.ConfigurationError` for adopted bare
        sessions (a frozen batch plan cannot be re-derived into an
        incremental one).
        """
        if self._closed:
            raise ConfigurationError("engine is closed")
        model = self.config.resolve_model(model)
        precision = self.config.resolve_precision(precision)
        key = (model, precision)
        with self._stream_lock:
            plan = self._stream_plans.get(key)
            if plan is None:
                from ..precision import PrecisionPolicy
                from ..streaming import compile_stream_plan

                source = self._source(model)
                if isinstance(source, InferenceSession):
                    raise ConfigurationError(
                        f"model {model!r} is an adopted frozen session; "
                        "streaming needs the model or its artifact records"
                    )
                plan = compile_stream_plan(
                    source, PrecisionPolicy.resolve(precision)
                )
                self._stream_plans[key] = plan
        return plan

    def load_sources(self) -> "Engine":
        """Resolve every registered source now; fail fast on bad paths.

        Artifact paths are loaded from disk (and cached, so the pooled
        sessions share the arrays); in-memory sources are no-ops.
        Session *freezing* stays lazy — this only front-loads the I/O
        and its errors.  The serving front-end calls this before
        announcing readiness, so a typo'd artifact path kills the
        server at startup instead of leaving a healthy-looking port
        that answers every request with an error frame.
        """
        for name in self.config.models:
            self._source(name)
        return self

    def warm_up(self, model: str | None = None, precision=None) -> "Engine":
        """Freeze + warm sessions ahead of traffic.

        With no arguments warms the full grid (every registered model ×
        every pooled precision) — the serving front-end does this before
        starting its inference thread so sharded executors fork from a
        thread-free process.
        """
        models = (
            [self.config.resolve_model(model)]
            if model is not None
            else list(self.config.models)
        )
        precisions = (
            [self.config.resolve_precision(precision)]
            if precision is not None
            else list(self.config.precisions)
        )
        for name in models:
            source = self.config.models.get(name)
            for prec in precisions:
                if isinstance(source, InferenceSession):
                    # Adopted sessions exist at exactly one precision.
                    if prec == source.precision:
                        source.warm_up()
                    continue
                self._pool.get(name, prec)
        return self

    # ------------------------------------------------------------------
    # Typed request API
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest) -> InferenceResult:
        """Run one typed request synchronously through its pooled session.

        Routing fields are resolved against the config (unknown models /
        precisions / priorities raise
        :class:`~repro.exceptions.ConfigurationError`).  ``deadline_ms``
        is advisory on this direct path — the call runs immediately;
        ``result.extra["deadline_exceeded"]`` reports whether it made
        it.  Under the serving front-end the same field is enforced by
        the micro-batcher (expired requests error instead of running).
        """
        model = self.config.resolve_model(request.model)
        precision = self.config.resolve_precision(request.precision)
        priority = self.config.resolve_priority(request.priority)
        session = self.session(model, precision)
        start = time.perf_counter()
        if request.proba:
            output = session.predict_proba(
                request.rows, batch_size=request.batch_size
            )
        else:
            output = session.predict(
                request.rows, batch_size=request.batch_size
            )
        latency_ms = (time.perf_counter() - start) * 1e3
        extra = {}
        if request.deadline_ms is not None:
            extra["deadline_exceeded"] = latency_ms > request.deadline_ms
        return InferenceResult(
            output=output,
            model=model,
            precision=precision,
            priority=priority,
            rows=int(request.rows.shape[0]),
            latency_ms=latency_ms,
            proba=request.proba,
            extra=extra,
        )

    # ------------------------------------------------------------------
    # Convenience calls (thin wrappers over submit's routing)
    # ------------------------------------------------------------------
    def predict_proba(
        self,
        rows: np.ndarray,
        model: str | None = None,
        precision=None,
        batch_size: int | None = None,
    ) -> np.ndarray:
        """Class probabilities via the pooled session for the route."""
        return self.session(model, precision).predict_proba(
            rows, batch_size=batch_size
        )

    def predict(
        self,
        rows: np.ndarray,
        model: str | None = None,
        precision=None,
        batch_size: int | None = None,
    ) -> np.ndarray:
        """Predicted labels via the pooled session for the route."""
        return self.session(model, precision).predict(
            rows, batch_size=batch_size
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(
        self,
        host: str = "127.0.0.1",
        port: int | None = None,
        max_batch: int | None = None,
        max_wait_ms: float | None = None,
        on_ready=None,
    ) -> None:
        """Serve this engine as a micro-batching TCP service (blocking).

        Every registered model × pooled precision is reachable
        per-request (header ``model`` / ``precision`` fields); batching
        limits default to the config's.  The first stdout line is the
        machine-readable ``serving on host:port`` banner;
        ``on_ready(server)`` fires right after it.  Runs until
        interrupted; the engine stays open afterwards (close it
        yourself, or use the engine as a context manager).

        ``SIGTERM`` and ``SIGINT`` trigger a *drain*: the server stops
        admitting work, flushes every in-flight micro-batch and sends
        its responses, then exits cleanly (see
        :meth:`~repro.serving.server.InferenceServer.begin_drain`) — so
        an orchestrator's stop signal never discards accepted requests.
        """
        import asyncio
        import signal as _signal

        from ..serving import DEFAULT_PORT, InferenceServer
        from ..serving.protocol import format_banner

        server = InferenceServer(
            self,
            host=host,
            port=DEFAULT_PORT if port is None else port,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
        )

        async def _serve() -> None:
            await server.start()
            loop = asyncio.get_running_loop()
            for sig in (_signal.SIGTERM, _signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, server.begin_drain)
                except (NotImplementedError, RuntimeError):
                    break  # platform without signal support: Ctrl-C path
            print(format_banner(server.host, server.port), flush=True)
            if on_ready is not None:
                on_ready(server)
            try:
                await server.serve_forever()
            finally:
                await server.stop()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            pass

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every pooled session and the shared pool; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._pool.close()
        if self._workpool is not None:
            self._workpool.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def describe(self) -> dict:
        """Config plus live pool state (JSON-able; the server's ``info``)."""
        return {
            "config": self.config.describe(),
            "pooled": [
                {"model": m, "precision": p}
                for m, p in sorted(self._pool.snapshot())
            ],
            "closed": self._closed,
        }

    def health(self) -> dict:
        """Fault posture of the shared pool and pooled executors (JSON-able).

        ``degraded`` is True when the shared worker pool (or any pooled
        session's executor) has exhausted its respawn and fallen back
        to serial execution; ``executors`` carries each sharded route's
        fault counters and ``pool`` the shared pool's summary (kind,
        size, started, attached plans).  The serving ``info`` op embeds
        this.
        """
        degraded = False
        executors: dict = {}
        for (model, precision), session in sorted(
            self._pool.snapshot().items()
        ):
            stats = getattr(session.executor, "fault_stats", None)
            if stats is not None:
                executors[f"{model}/{precision}"] = dict(stats)
            if getattr(session.executor, "degraded", False):
                degraded = True
        pool = None
        if self._workpool is not None:
            pool = self._workpool.describe()
            degraded = degraded or self._workpool.degraded
        return {"degraded": degraded, "executors": executors, "pool": pool}

    def executor_info(self) -> dict:
        """What's actually executing: kind, parallelism, shared pool.

        ``requested`` is the config's executor field (``"auto"`` stays
        ``"auto"``); ``kind`` is what it resolved to on this host.  The
        serving banner and the ``info`` op surface this — before it,
        you couldn't tell what was serving.
        """
        pool = self._workpool
        return {
            "requested": self.config.executor,
            "kind": self.config.resolve_executor(),
            "workers": pool.workers if pool is not None else 1,
            "shared_pool": pool.describe() if pool is not None else None,
            "profile": self.config.profile,
        }

    def describe_routes(self) -> dict:
        """Per pooled route: plan ops, executor, scheduler (JSON-able).

        Snapshots the pool under its lock, so racing a concurrent
        ``close()`` yields a consistent (possibly empty) view instead
        of an error — the serving ``info`` op relies on this.
        """
        routes: dict = {}
        for (model, precision), session in sorted(
            self._pool.snapshot().items()
        ):
            route = {
                "ops": session.describe(),
                "executor": repr(session.executor),
                "arena": session.executor.arena_info(),
            }
            scheduler = getattr(session.executor, "scheduler", None)
            if scheduler is not None:
                route["scheduler"] = scheduler.describe()
            if getattr(session.executor, "profile", False):
                route["op_stats"] = session.executor.op_stats()
            routes[f"{model}/{precision}"] = route
        return routes

    def __repr__(self) -> str:
        return (
            f"Engine(models={sorted(self.config.models)}, "
            f"precisions={self.config.precisions}, "
            f"pooled={len(self._pool)}, closed={self._closed})"
        )
