"""Typed request/result dataclasses for the engine facade.

These are the end-to-end currency of the serving stack: an
:class:`InferenceRequest` names *what* to run (rows, model, precision)
and *how urgently* (priority class, deadline), and an
:class:`InferenceResult` carries the output back with the routing
fields echoed, so a caller holding several engines or models apart
never has to correlate by position.

The same fields ride the wire protocol as optional header keys
(``model``, ``precision``, ``priority``, ``deadline_ms``) — a frame
without them behaves exactly like the pre-engine protocol: default
model, default precision, default priority, no deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["InferenceRequest", "InferenceResult"]


@dataclass
class InferenceRequest:
    """One inference call, fully described.

    Attributes
    ----------
    rows:
        Input rows, ``(batch, features...)``; a single 1-D row is
        promoted to a batch of one.
    model:
        Registry name, or ``None`` for the engine's default model.
    precision:
        ``"fp64"`` / ``"fp32"`` /
        :class:`~repro.precision.PrecisionPolicy`, or ``None`` for the
        engine's default.
    priority:
        Priority class name or integer index into the engine's
        ``priority_classes`` (``None`` = engine default).  Higher
        classes flush first under a saturated batcher.
    deadline_ms:
        Milliseconds from submission after which the answer is useless;
        an expired request gets an error instead of occupying
        fused-batch rows.  ``None`` = no deadline.
    proba:
        ``True`` returns class probabilities, ``False`` integer labels.
    batch_size:
        Streaming chunk size for large row counts (``None`` = one shot).
    """

    rows: np.ndarray
    model: str | None = None
    precision: object | None = None
    priority: object | None = None
    deadline_ms: float | None = None
    proba: bool = True
    batch_size: int | None = None

    def __post_init__(self):
        rows = np.asarray(self.rows)
        if rows.ndim == 1:
            rows = rows[None]
        if rows.ndim < 2 or rows.shape[0] < 1:
            raise ConfigurationError(
                f"request needs at least one row, got shape {rows.shape}"
            )
        self.rows = rows
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ConfigurationError(
                f"deadline_ms must be >= 0, got {self.deadline_ms}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1 or None, got {self.batch_size}"
            )


@dataclass
class InferenceResult:
    """The outcome of one :class:`InferenceRequest`.

    ``model`` / ``precision`` / ``priority`` echo the *resolved* routing
    (defaults filled in), not the raw request fields; ``output`` is
    probabilities or labels depending on the request's ``proba``.
    """

    output: np.ndarray
    model: str
    precision: str
    priority: int
    rows: int
    latency_ms: float
    proba: bool = True
    extra: dict = field(default_factory=dict)

    def argmax(self) -> np.ndarray:
        """Labels view of a probability result (identity for labels)."""
        if not self.proba:
            return self.output
        return self.output.argmax(axis=-1)
