"""``repro.engine`` — the declarative inference facade.

One public API for everything the frozen runtime can do:

* :class:`EngineConfig` — *what to run*: a validated, declarative
  description (model registry, pooled precisions, executor/transport/
  shard policy, batching limits, priority classes),
* :class:`Engine` — *how it runs*: a per-precision
  :class:`~repro.engine.pool.SessionPool` of lazily-frozen
  :class:`~repro.runtime.session.InferenceSession`\\ s behind a
  multi-model registry, with typed
  :class:`InferenceRequest` / :class:`InferenceResult` calls, direct
  ``predict`` / ``predict_proba`` convenience, and a blocking
  :meth:`~Engine.serve` that exposes the whole registry over TCP with
  per-request model/precision routing, priorities and deadlines.

The pre-engine entry points (``DeployedModel.to_session`` /
``DeployedModel.serve`` / ``InferenceServer(session)``) remain as thin
deprecation shims over this facade; ``docs/engine.md`` has the
migration table.
"""

from .config import DEFAULT_MODEL_NAME, EngineConfig
from .core import Engine
from .pool import SessionPool
from .types import InferenceRequest, InferenceResult

__all__ = [
    "DEFAULT_MODEL_NAME",
    "Engine",
    "EngineConfig",
    "InferenceRequest",
    "InferenceResult",
    "SessionPool",
]
