"""The :class:`Pipeline` runner — train → compress → quantize → package.

One declarative :class:`~repro.pipeline.config.PipelineConfig` in, one
format-v2 artifact out.  The four stages run in order with typed
results (:mod:`repro.pipeline.types`); each stage is also callable
individually and *resumable* — calling :meth:`Pipeline.quantize` on a
fresh pipeline first runs ``train`` and ``compress``, and re-calling a
completed stage returns its cached result (``force=True`` re-runs it
and invalidates everything downstream).

Quickstart::

    from repro.pipeline import Pipeline, PipelineConfig

    config = PipelineConfig(
        architecture="arch1", epochs=5, quantize_bits=12,
        out="arch1_q12.npz", precisions=("fp64", "fp32"),
    )
    result = Pipeline(config).run()
    print(result.quantize.accuracy_delta, result.package.storage_bytes)

The produced artifact serves unchanged through the consumption facade::

    from repro.engine import Engine

    with Engine(model="arch1_q12.npz", precisions=("fp64", "fp32")) as e:
        labels = e.predict(rows)

Parity contract: the served outputs equal the packaged artifact's own
records bitwise (same spectra, same plan compiler), and differ from the
float model only by the quantization the config asked for — the
quantize stage measures that delta and the artifact metadata records
it.  See ``docs/pipeline.md``.
"""

from __future__ import annotations

import time

import numpy as np

from ..data import ArrayDataset, DataLoader
from ..exceptions import PipelineError
from ..nn import Adam, CrossEntropyLoss, Sequential, Trainer
from ..nn.convert import conversion_rows_from, convert_to_block_circulant
from ..nn.metrics import accuracy
from ..nn.trainer import TrainingHistory, predict_in_batches
from .config import PipelineConfig, shape_compatible
from .types import (
    CompressResult,
    PackageResult,
    PipelineResult,
    QuantizeResult,
    TrainResult,
)

__all__ = ["Pipeline"]

_STAGES = ("train", "compress", "quantize", "package")


class Pipeline:
    """Stage runner over one :class:`PipelineConfig`.

    Construct from a config or from config fields directly::

        Pipeline(PipelineConfig(architecture="arch1"))
        Pipeline(architecture="arch1", epochs=2, quantize_bits=12)

    ``pipeline.model`` is the live model after the latest completed
    stage; ``pipeline.results`` maps stage name -> result for the
    stages run so far.
    """

    def __init__(self, config: PipelineConfig | None = None, **fields):
        if config is not None and fields:
            raise PipelineError(
                "pass either a PipelineConfig or config fields, not both"
            )
        self.config = (
            config if config is not None else PipelineConfig(**fields)
        )
        self._results: dict[str, object] = {}
        # Per-stage live models: "train" holds the trained model,
        # "compress" the converted one.  Kept separately so re-running
        # a stage (force=True) starts from its *predecessor's* model,
        # not from its own previous output.
        self._models: dict[str, Sequential] = {}
        self._data: tuple | None = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def results(self) -> dict:
        """Stage name -> typed result, for the stages run so far."""
        return dict(self._results)

    @property
    def model(self) -> Sequential | None:
        """The live model after the latest completed stage."""
        for stage in ("compress", "train"):
            if stage in self._models:
                return self._models[stage]
        return None

    def _invalidate_after(self, stage: str) -> None:
        """Drop cached results of every stage downstream of ``stage``."""
        for later in _STAGES[_STAGES.index(stage) + 1:]:
            self._results.pop(later, None)
            self._models.pop(later, None)

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def _prepare_data(self) -> tuple:
        """(train_x, train_y, test_x, test_y) per the config's dataset."""
        if self._data is not None:
            return self._data
        config = self.config
        shape = config.input_shape
        if config.dataset == "synthetic_mnist":
            import math

            from ..data import (
                bilinear_resize,
                flatten_images,
                load_synthetic_mnist,
            )

            kwargs = {} if config.noise is None else {"noise": config.noise}
            train, test = load_synthetic_mnist(
                train_size=config.train_size,
                test_size=config.test_size,
                seed=config.seed,
                **kwargs,
            )
            side = math.isqrt(shape[0])

            def preprocess(images):
                return flatten_images(bilinear_resize(images, side, side))

            self._data = (
                preprocess(train.inputs), train.labels,
                preprocess(test.inputs), test.labels,
            )
        elif config.dataset == "synthetic_cifar":
            from ..data import load_synthetic_cifar

            kwargs = {} if config.noise is None else {"noise": config.noise}
            train, test = load_synthetic_cifar(
                train_size=config.train_size,
                test_size=config.test_size,
                seed=config.seed,
                **kwargs,
            )
            self._data = (
                train.inputs, train.labels, test.inputs, test.labels,
            )
        elif config.dataset == "synthetic_wave":
            from ..data import load_synthetic_wave

            kwargs = {} if config.noise is None else {"noise": config.noise}
            train, test = load_synthetic_wave(
                train_size=config.train_size,
                test_size=config.test_size,
                seed=config.seed,
                **kwargs,
            )
            self._data = (
                train.inputs, train.labels, test.inputs, test.labels,
            )
        else:
            from ..data import train_test_split
            from ..io import load_inputs

            inputs, labels = load_inputs(config.dataset)
            if labels is None:
                raise PipelineError(
                    f"dataset bundle {config.dataset} has no labels; "
                    "the pipeline trains and evaluates supervised"
                )
            if not shape_compatible(tuple(shape), tuple(inputs.shape[1:])):
                raise PipelineError(
                    f"dataset bundle {config.dataset} has per-sample "
                    f"shape {tuple(inputs.shape[1:])}; the architecture "
                    f"expects {tuple(shape)} (None = any)"
                )
            train, test = train_test_split(
                ArrayDataset(inputs, labels),
                config.test_fraction,
                rng=np.random.default_rng(config.seed),
            )
            self._data = (
                train.inputs, train.labels, test.inputs, test.labels,
            )
        return self._data

    def _evaluate(self, model: Sequential) -> float:
        """Test-set accuracy of a live model (eval mode, batched)."""
        _, _, test_x, test_y = self._prepare_data()
        model.eval()
        return float(accuracy(predict_in_batches(model, test_x), test_y))

    def _build_model(self) -> Sequential:
        config = self.config
        arch = config.architecture
        if isinstance(arch, Sequential):
            # Deep-copy so the pipeline owns what it trains/fine-tunes:
            # the caller's model is never mutated, and train(force=True)
            # restarts from the weights the config was built with —
            # the same restart semantics zoo/string architectures get
            # from reseeding their builder.
            import copy

            return copy.deepcopy(arch)
        rng = np.random.default_rng(config.seed)
        from .. import zoo

        if arch in zoo.names():
            return zoo.get(arch, rng=rng, **config.arch_options)
        from ..io import build_model_from_string

        return build_model_from_string(arch, rng=rng)

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def train(self, force: bool = False) -> TrainResult:
        """Stage 1: build the model and train it on the dataset.

        ``epochs=0`` skips the fit (a pre-trained ``Sequential`` is
        packaged as-is) but still measures test accuracy, so downstream
        stages always have a float baseline.
        """
        if "train" in self._results and not force:
            return self._results["train"]
        self._invalidate_after("train")
        config = self.config
        start = time.perf_counter()
        model = self._build_model()
        train_x, train_y, _, _ = self._prepare_data()
        history = TrainingHistory()
        if config.epochs > 0:
            loader = DataLoader(
                ArrayDataset(train_x, train_y),
                batch_size=config.batch_size,
                shuffle=True,
                seed=config.seed,
            )
            trainer = Trainer(
                model,
                CrossEntropyLoss(),
                Adam(model.parameters(), lr=config.lr),
            )
            history = trainer.fit(loader, epochs=config.epochs)
        model.eval()
        train_accuracy = (
            history.final.train_accuracy if history.epochs else float(
                accuracy(predict_in_batches(model, train_x), train_y)
            )
        )
        result = TrainResult(
            history=history,
            train_accuracy=train_accuracy,
            test_accuracy=self._evaluate(model),
            epochs=config.epochs,
            seconds=time.perf_counter() - start,
            skipped=config.epochs == 0,
        )
        self._models["train"] = model
        self._results["train"] = result
        return result

    def _check_layer_indices(self, model: Sequential) -> None:
        """A typo'd compression-policy index must not silently no-op.

        Validated here, against the *actual* model, because a live
        ``Sequential``'s layer list isn't available at config time.
        ``skip_layers`` entries are range-checked; ``layer_block_sizes``
        must additionally target convertible dense layers.
        """
        from ..nn.layers import Conv2d, Linear

        config = self.config
        for index in sorted(
            set(config.skip_layers) | set(config.layer_block_sizes)
        ):
            if not 0 <= index < len(model):
                raise PipelineError(
                    f"compression policy names layer {index}, but the "
                    f"model has layers 0..{len(model) - 1}"
                )
        for index in sorted(config.layer_block_sizes):
            layer = model[index]
            if not isinstance(layer, (Linear, Conv2d)):
                raise PipelineError(
                    f"layer_block_sizes[{index}] targets "
                    f"{type(layer).__name__}, which is not a convertible "
                    "dense layer"
                )

    def compress(self, force: bool = False) -> CompressResult:
        """Stage 2: project dense layers to block-circulant + fine-tune.

        Skipped (with the float accuracy passed through) when the
        config sets no ``block_size`` — zoo architectures are already
        block-circulant by construction.
        """
        if "compress" in self._results and not force:
            return self._results["compress"]
        train_result = self.train()
        self._invalidate_after("compress")
        config = self.config
        if config.block_size is None:
            result = CompressResult(
                block_size=None,
                test_accuracy=train_result.test_accuracy,
                accuracy_before=train_result.test_accuracy,
                skipped=True,
            )
            self._results["compress"] = result
            return result
        start = time.perf_counter()
        model = self._models["train"]
        self._check_layer_indices(model)
        converted = convert_to_block_circulant(
            model,
            config.block_size,
            skip=config.skip_layers,
            overrides=config.layer_block_sizes,
        )
        # Diagnostics from the conversion that just ran — large models
        # project once, not once more for the report.
        report = conversion_rows_from(
            model,
            converted,
            skip=config.skip_layers,
            quantize_bits=config.quantize_bits,
        )
        if config.fine_tune_epochs > 0:
            train_x, train_y, _, _ = self._prepare_data()
            loader = DataLoader(
                ArrayDataset(train_x, train_y),
                batch_size=config.batch_size,
                shuffle=True,
                seed=config.seed + 1,
            )
            Trainer(
                converted,
                CrossEntropyLoss(),
                Adam(converted.parameters(), lr=config.lr),
            ).fit(loader, epochs=config.fine_tune_epochs)
        converted.eval()
        result = CompressResult(
            block_size=config.block_size,
            report=report,
            accuracy_before=train_result.test_accuracy,
            test_accuracy=self._evaluate(converted),
            fine_tune_epochs=config.fine_tune_epochs,
            seconds=time.perf_counter() - start,
        )
        self._models["compress"] = converted
        self._results["compress"] = result
        return result

    def quantize(self, force: bool = False) -> QuantizeResult:
        """Stage 3: fixed-point quantization, measured on the artifact.

        Builds the quantized deployment records
        (:meth:`DeployedModel.from_model` with the config's bit width —
        the live model is *not* mutated) and measures test accuracy of
        the quantized artifact against the float model's, which is
        exactly what a serving consumer of the packaged artifact will
        see.
        """
        if "quantize" in self._results and not force:
            return self._results["quantize"]
        compress_result = self.compress()
        self._invalidate_after("quantize")
        config = self.config
        if config.quantize_bits is None:
            result = QuantizeResult(
                total_bits=None,
                float_accuracy=compress_result.test_accuracy,
                test_accuracy=compress_result.test_accuracy,
                skipped=True,
            )
            self._results["quantize"] = result
            return result
        from ..embedded.deploy import DeployedModel

        start = time.perf_counter()
        _, _, test_x, test_y = self._prepare_data()
        deployed = DeployedModel.from_model(
            self.model, quantize_bits=config.quantize_bits
        )
        quantized_accuracy = float(
            np.mean(deployed.predict(test_x) == test_y)
        )
        result = QuantizeResult(
            total_bits=config.quantize_bits,
            layers=deployed.quantization_summary(),
            test_accuracy=quantized_accuracy,
            float_accuracy=compress_result.test_accuracy,
            seconds=time.perf_counter() - start,
        )
        self._quantized_deployed = deployed
        self._results["quantize"] = result
        return result

    def package(self, force: bool = False) -> PackageResult:
        """Stage 4: write the format-v2 artifact with full metadata.

        Reuses the quantize stage's records when quantization ran;
        composes the compression / quantization / provenance metadata
        sections from the earlier stage results; writes ``config.out``
        when set (the artifact is returned in memory either way).
        """
        if "package" in self._results and not force:
            return self._results["package"]
        quantize_result = self.quantize()
        self._invalidate_after("package")
        config = self.config
        from ..embedded.deploy import FORMAT_VERSION, DeployedModel

        start = time.perf_counter()
        if quantize_result.skipped:
            deployed = DeployedModel.from_model(self.model)
        else:
            deployed = self._quantized_deployed
        deployed.metadata = self._compose_metadata(deployed)
        path = config.out
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            deployed.save(path)
        result = PackageResult(
            deployed=deployed,
            version=FORMAT_VERSION,
            storage_bytes=deployed.storage_bytes(),
            path=path,
            metadata=deployed.metadata,
            seconds=time.perf_counter() - start,
        )
        self._results["package"] = result
        return result

    def _compose_metadata(self, deployed) -> dict:
        """The format-v2 header sections, from the stage results."""
        import repro

        train_result: TrainResult = self._results["train"]
        compress_result: CompressResult = self._results["compress"]
        quantize_result: QuantizeResult = self._results["quantize"]
        block_sizes = [
            {"index": i, "kind": r["kind"], "block_size": r["block_size"]}
            for i, r in enumerate(deployed.records)
            if "block_size" in r
        ]
        compression: dict = {"layers": block_sizes}
        if not compress_result.skipped:
            compression["block_size"] = compress_result.block_size
            compression["projection"] = [
                {
                    "index": row.index,
                    "relative_error": row.relative_error,
                    "compression": row.compression,
                }
                for row in compress_result.report
            ]
        quantization = None
        if not quantize_result.skipped:
            quantization = {
                "total_bits": quantize_result.total_bits,
                "accuracy_delta": quantize_result.accuracy_delta,
                "max_weight_error": quantize_result.max_weight_error,
                "layers": quantize_result.layers,
            }
        return {
            "compression": compression,
            "quantization": quantization,
            "provenance": {
                "config": self.config.describe(),
                "config_hash": self.config.config_hash(),
                "training": train_result.history.summary(),
                "test_accuracy": quantize_result.test_accuracy,
                "repro_version": repro.__version__,
            },
            "precisions": list(self.config.precisions),
        }

    # ------------------------------------------------------------------
    # Whole run
    # ------------------------------------------------------------------
    def run(self) -> PipelineResult:
        """Run every stage in order (resuming from cached ones)."""
        self.package()
        return PipelineResult(
            train=self._results["train"],
            compress=self._results["compress"],
            quantize=self._results["quantize"],
            package=self._results["package"],
        )

    def __repr__(self) -> str:
        done = [s for s in _STAGES if s in self._results]
        return (
            f"Pipeline(architecture={self.config.architecture_label()!r}, "
            f"done={done})"
        )
