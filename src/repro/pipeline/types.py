"""Typed per-stage results of the build pipeline.

Each stage of :class:`~repro.pipeline.core.Pipeline` returns one of
these frozen dataclasses; the full run returns a
:class:`PipelineResult` aggregating all four.  Every result carries a
``summary()`` returning JSON-able data — the pipeline composes these
into the artifact's format-v2 provenance/compression/quantization
metadata, so what ``repro inspect`` prints is exactly what the stages
reported.

A stage that the config disables (no ``block_size`` -> no compression,
no ``quantize_bits`` -> no quantization) still yields a result with
``skipped=True``, keeping the stage sequence uniform for callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..nn.convert import ConversionRow
from ..nn.trainer import TrainingHistory

__all__ = [
    "TrainResult",
    "CompressResult",
    "QuantizeResult",
    "PackageResult",
    "PipelineResult",
]


@dataclass(frozen=True)
class TrainResult:
    """Outcome of the training stage."""

    history: TrainingHistory
    train_accuracy: float
    test_accuracy: float
    epochs: int
    seconds: float
    skipped: bool = False

    def summary(self) -> dict:
        return {
            "skipped": self.skipped,
            "epochs": self.epochs,
            "train_accuracy": self.train_accuracy,
            "test_accuracy": self.test_accuracy,
            "seconds": self.seconds,
            "history": self.history.summary(),
        }


@dataclass(frozen=True)
class CompressResult:
    """Outcome of the block-circulant compression stage.

    ``report`` rows are the per-layer projection diagnostics (with the
    quantization-error column filled when the config also quantizes);
    ``test_accuracy`` is measured after projection + fine-tuning.
    """

    block_size: int | None
    report: list[ConversionRow] = field(default_factory=list)
    test_accuracy: float | None = None
    accuracy_before: float | None = None
    fine_tune_epochs: int = 0
    seconds: float = 0.0
    skipped: bool = False

    def summary(self) -> dict:
        return {
            "skipped": self.skipped,
            "block_size": self.block_size,
            "fine_tune_epochs": self.fine_tune_epochs,
            "accuracy_before": self.accuracy_before,
            "test_accuracy": self.test_accuracy,
            "seconds": self.seconds,
            "layers": [
                {
                    "index": row.index,
                    "layer": row.layer,
                    "relative_error": row.relative_error,
                    "compression": row.compression,
                    "quantization_error": row.quantization_error,
                }
                for row in self.report
            ],
        }


@dataclass(frozen=True)
class QuantizeResult:
    """Outcome of the fixed-point quantization stage.

    ``layers`` comes from
    :meth:`~repro.embedded.deploy.DeployedModel.quantization_summary`
    (per-layer Q-format and relative weight error);
    ``accuracy_delta`` is quantized minus float test accuracy —
    negative means quantization cost accuracy.
    """

    total_bits: int | None
    layers: list[dict] = field(default_factory=list)
    test_accuracy: float | None = None
    float_accuracy: float | None = None
    seconds: float = 0.0
    skipped: bool = False

    @property
    def accuracy_delta(self) -> float | None:
        if self.test_accuracy is None or self.float_accuracy is None:
            return None
        return self.test_accuracy - self.float_accuracy

    @property
    def max_weight_error(self) -> float:
        """Worst per-layer relative quantization error (0.0 if skipped)."""
        return max((row["error"] for row in self.layers), default=0.0)

    def summary(self) -> dict:
        return {
            "skipped": self.skipped,
            "total_bits": self.total_bits,
            "test_accuracy": self.test_accuracy,
            "float_accuracy": self.float_accuracy,
            "accuracy_delta": self.accuracy_delta,
            "max_weight_error": self.max_weight_error,
            "seconds": self.seconds,
            "layers": self.layers,
        }


@dataclass(frozen=True)
class PackageResult:
    """Outcome of the packaging stage: the artifact itself.

    ``deployed`` is the in-memory artifact (quantized when the config
    asked for it); ``path`` is ``None`` when the config set no output
    path (the artifact was still built and is servable in memory).
    """

    deployed: object
    version: int
    storage_bytes: int
    path: Path | None = None
    metadata: dict = field(default_factory=dict)
    seconds: float = 0.0

    def summary(self) -> dict:
        return {
            "path": None if self.path is None else str(self.path),
            "version": self.version,
            "storage_bytes": self.storage_bytes,
            "quantized": bool(getattr(self.deployed, "quantized", False)),
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class PipelineResult:
    """All four stage results of one full ``pipeline.run()``."""

    train: TrainResult
    compress: CompressResult
    quantize: QuantizeResult
    package: PackageResult

    def summary(self) -> dict:
        return {
            "train": self.train.summary(),
            "compress": self.compress.summary(),
            "quantize": self.quantize.summary(),
            "package": self.package.summary(),
        }
