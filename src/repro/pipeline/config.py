"""Declarative, validated configuration for the build pipeline.

A :class:`PipelineConfig` says *what to build* — architecture, dataset,
training budget, compression and quantization policy, output artifact —
while :class:`~repro.pipeline.core.Pipeline` decides *how* (stage
ordering, resumption, metadata composition).  It is the production-side
twin of :class:`~repro.engine.config.EngineConfig`: every field is
validated at construction, so a typo'd architecture name or an
impossible bit width fails at config time, not three training epochs
in.

Architecture sources are declarative first:

* a **zoo name** (``"arch1"``, ``"arch3_reduced"``, ... — see
  :func:`repro.zoo.names`), optionally parameterized via
  ``arch_options`` (``block_size``, ``width``, ...),
* an **architecture string** in the Fig. 4 grammar
  (``"121-64CFb32-64CFb32-10F"``),
* a live (possibly pre-trained) :class:`~repro.nn.module.Sequential` —
  set ``epochs=0`` to package it as-is.

The dataset defaults from the architecture (zoo entries know their
paper dataset; FC string architectures imply the MNIST stand-in, CONV
ones the CIFAR stand-in) and may be a ``.npz`` bundle path instead.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from ..exceptions import ConfigurationError, ParseError
from ..nn.module import Sequential
from ..precision import PrecisionPolicy

__all__ = ["PipelineConfig"]

_SYNTHETIC_DATASETS = ("synthetic_mnist", "synthetic_cifar", "synthetic_wave")


def shape_compatible(
    expected: tuple, actual: tuple[int, ...]
) -> bool:
    """Whether a concrete per-sample shape satisfies an expected one.

    ``None`` entries in ``expected`` are wildcards — a live CONV
    ``Sequential`` pins its channel count but not its spatial size.
    """
    return len(expected) == len(actual) and all(
        e is None or e == a for e, a in zip(expected, actual)
    )


def _infer_input_shape(architecture, arch_options: Mapping) -> tuple:
    """Per-sample input shape for any architecture source.

    May contain ``None`` wildcards (see :func:`shape_compatible`) when
    the source is a live CONV ``Sequential``, whose spatial size is
    dataset-defined.
    """
    from .. import zoo

    if isinstance(architecture, str):
        if architecture in zoo.names():
            return zoo.entry(architecture).input_shape
        from ..io import parse_architecture

        return tuple(parse_architecture(architecture).input_shape)
    # Live Sequential: the first weight layer pins the interface.
    for layer in architecture:
        in_features = getattr(layer, "in_features", None)
        if in_features is not None:
            return (int(in_features),)
        in_channels = getattr(layer, "in_channels", None)
        if in_channels is not None:
            if getattr(layer, "sequence_layer", False):
                # Time-major sequence layers: (T, channels), any length.
                return (None, int(in_channels))
            return (int(in_channels), None, None)
    raise ConfigurationError(
        "cannot infer the input shape of the given Sequential "
        "(no Linear/Conv-like layer found); pass a zoo name or an "
        "architecture string instead"
    )


@dataclass(frozen=True)
class PipelineConfig:
    """One declarative description of a train→compress→quantize→package
    build.

    Parameters
    ----------
    architecture:
        Zoo name, architecture string, or live ``Sequential``.
    arch_options:
        Keyword arguments for the zoo builder (``block_size``,
        ``width``, ...); only valid with a zoo name.
    dataset:
        ``"synthetic_mnist"`` / ``"synthetic_cifar"`` or a path to an
        ``.npz`` bundle with ``inputs`` + ``labels``.  Defaults from
        the architecture (zoo entry dataset; FC strings -> MNIST,
        CONV strings -> CIFAR).
    train_size, test_size, noise:
        Synthetic dataset shape (ignored for bundle paths; ``noise``
        ``None`` keeps each generator's default).
    test_fraction:
        Held-out fraction when ``dataset`` is a bundle path.
    epochs, batch_size, lr, seed:
        Training budget.  ``epochs=0`` skips training (packaging a
        pre-trained ``Sequential``).
    block_size:
        Block-circulant compression policy: project every dense weight
        layer to this block size after training.  ``None`` skips the
        compress stage (zoo architectures are already block-circulant).
    layer_block_sizes:
        Per-layer-index overrides of ``block_size`` (the "policy per
        layer group" knob: e.g. ``{10: 64}`` compresses layer 10 harder).
    skip_layers:
        Layer indices left dense by the compress stage.
    fine_tune_epochs:
        Post-projection fine-tuning epochs (compress stage).
    quantize_bits:
        Fixed-point width for weights/biases (>= 2); ``None`` skips the
        quantize stage.
    out:
        Artifact output path; ``None`` builds the artifact in memory
        only.
    precisions:
        Target serving precisions, recorded in artifact provenance and
        used by the quickstart/CI parity checks (the artifact itself is
        precision-agnostic — sessions freeze it at any pooled
        precision).
    """

    architecture: object = None
    arch_options: Mapping = field(default_factory=dict)
    dataset: str | Path | None = None
    train_size: int = 1000
    test_size: int = 200
    noise: float | None = None
    test_fraction: float = 0.2
    epochs: int = 5
    batch_size: int = 64
    lr: float = 3e-3
    seed: int = 0
    block_size: int | None = None
    layer_block_sizes: Mapping = field(default_factory=dict)
    skip_layers: tuple = ()
    fine_tune_epochs: int = 0
    quantize_bits: int | None = None
    out: str | Path | None = None
    precisions: tuple = ("fp64",)

    def __post_init__(self):
        # --- architecture ---------------------------------------------
        arch = self.architecture
        if arch is None:
            raise ConfigurationError(
                "architecture is required: a zoo name, an architecture "
                "string, or a Sequential"
            )
        if not isinstance(arch, (str, Sequential)):
            raise ConfigurationError(
                "architecture must be a zoo name, an architecture "
                f"string, or a Sequential, got {type(arch).__name__}"
            )
        options = dict(self.arch_options)
        if options:
            if not self._is_zoo_name():
                raise ConfigurationError(
                    "arch_options only apply to zoo-name architectures"
                )
            self._validate_arch_options(arch, options)
        object.__setattr__(self, "arch_options", options)
        try:
            input_shape = _infer_input_shape(arch, options)
        except ParseError as exc:
            raise ConfigurationError(
                f"architecture {arch!r} is neither a registered zoo "
                f"name nor a valid architecture string: {exc}"
            ) from None

        # --- dataset ---------------------------------------------------
        dataset = self.dataset
        if dataset is None:
            from .. import zoo

            if isinstance(arch, str) and arch in zoo.names():
                dataset = zoo.entry(arch).dataset
            else:
                dataset = (
                    "synthetic_mnist" if len(input_shape) == 1
                    else "synthetic_cifar"
                )
        if isinstance(dataset, Path):
            dataset = str(dataset)
        # .npy is deliberately absent: it is a bare input array with no
        # label slot, so a pipeline built on it is guaranteed to fail
        # at the supervised train stage — reject it at config time.
        if dataset not in _SYNTHETIC_DATASETS and not str(
            dataset
        ).endswith((".npz", ".csv")):
            raise ConfigurationError(
                f"dataset must be one of {_SYNTHETIC_DATASETS} or a "
                f"labeled .npz/.csv bundle path, got {dataset!r}"
            )
        object.__setattr__(self, "dataset", dataset)
        if dataset == "synthetic_mnist":
            if len(input_shape) != 1:
                raise ConfigurationError(
                    "synthetic_mnist feeds flat FC inputs; architecture "
                    f"expects shape {input_shape}"
                )
            side = math.isqrt(input_shape[0])
            if side * side != input_shape[0]:
                raise ConfigurationError(
                    f"cannot resize MNIST to {input_shape[0]} features "
                    "(not a perfect square)"
                )
        if dataset == "synthetic_cifar" and not shape_compatible(
            input_shape, (3, 32, 32)
        ):
            raise ConfigurationError(
                "synthetic_cifar feeds (3, 32, 32) images; architecture "
                f"expects shape {input_shape}"
            )
        if dataset == "synthetic_wave":
            from ..data.synthetic_wave import WAVE_LENGTH

            if not shape_compatible(input_shape, (WAVE_LENGTH, 1)):
                raise ConfigurationError(
                    f"synthetic_wave feeds time-major ({WAVE_LENGTH}, 1) "
                    f"sequences; architecture expects shape {input_shape}"
                )

        # --- budgets and policies -------------------------------------
        for name, minimum in (
            ("train_size", 1), ("test_size", 1), ("batch_size", 1),
        ):
            if getattr(self, name) < minimum:
                raise ConfigurationError(
                    f"{name} must be >= {minimum}, got {getattr(self, name)}"
                )
        if self.epochs < 0 or self.fine_tune_epochs < 0:
            raise ConfigurationError("epoch counts must be >= 0")
        if not 0.0 < self.test_fraction < 1.0:
            raise ConfigurationError(
                f"test_fraction must be in (0, 1), got {self.test_fraction}"
            )
        if self.noise is not None and self.noise < 0:
            raise ConfigurationError(f"noise must be >= 0, got {self.noise}")
        if self.lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {self.lr}")
        if self.block_size is not None and self.block_size < 1:
            raise ConfigurationError(
                f"block_size must be >= 1, got {self.block_size}"
            )
        overrides = {int(k): int(v) for k, v in dict(
            self.layer_block_sizes
        ).items()}
        if overrides and self.block_size is None:
            raise ConfigurationError(
                "layer_block_sizes requires block_size (the compress "
                "stage is disabled without one)"
            )
        if any(v < 1 for v in overrides.values()):
            raise ConfigurationError("layer_block_sizes values must be >= 1")
        object.__setattr__(self, "layer_block_sizes", overrides)
        skip = tuple(int(i) for i in self.skip_layers)
        object.__setattr__(self, "skip_layers", skip)
        if self.quantize_bits is not None and self.quantize_bits < 2:
            raise ConfigurationError(
                f"quantize_bits must be >= 2, got {self.quantize_bits}"
            )
        if not self.precisions:
            raise ConfigurationError(
                "precisions must name at least one policy"
            )
        resolved = []
        for spec in self.precisions:
            try:
                resolved.append(PrecisionPolicy.resolve(spec).name)
            except ValueError as exc:
                raise ConfigurationError(str(exc)) from None
        if len(set(resolved)) != len(resolved):
            raise ConfigurationError(
                f"duplicate entries in precisions {tuple(resolved)}"
            )
        object.__setattr__(self, "precisions", tuple(resolved))
        if self.out is not None:
            object.__setattr__(self, "out", Path(self.out))
        object.__setattr__(self, "_input_shape", input_shape)

    @staticmethod
    def _validate_arch_options(arch: str, options: dict) -> None:
        """Fail at config time on options the zoo builder cannot take.

        ``rng`` is reserved (the pipeline seeds it from ``seed``);
        unknown keyword names would otherwise raise ``TypeError`` deep
        inside the train stage, and non-JSON-able values would break
        ``describe()``/``config_hash()`` at package time.
        """
        import inspect

        from .. import zoo

        if "rng" in options:
            raise ConfigurationError(
                "arch_options may not set 'rng'; the pipeline seeds the "
                "builder from the config's `seed`"
            )
        parameters = inspect.signature(
            zoo.entry(arch).builder
        ).parameters
        takes_kwargs = any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in parameters.values()
        )
        if not takes_kwargs:
            unknown = sorted(set(options) - set(parameters))
            if unknown:
                accepted = sorted(set(parameters) - {"rng"})
                raise ConfigurationError(
                    f"arch_options {unknown} are not accepted by "
                    f"{arch!r} (builder takes {accepted})"
                )
        try:
            json.dumps(options)
        except TypeError:
            raise ConfigurationError(
                "arch_options values must be JSON-serializable "
                "(they land in artifact provenance)"
            ) from None

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def _is_zoo_name(self) -> bool:
        from .. import zoo

        return (
            isinstance(self.architecture, str)
            and self.architecture in zoo.names()
        )

    @property
    def input_shape(self) -> tuple[int, ...]:
        """Per-sample input shape the architecture consumes."""
        return self._input_shape

    def architecture_label(self) -> str:
        """Stable string form of the architecture for metadata/hashing."""
        if isinstance(self.architecture, str):
            return self.architecture
        model = self.architecture
        return (
            f"<Sequential {len(model)} layers, "
            f"{model.parameter_count()} params>"
        )

    def describe(self) -> dict:
        """JSON-able summary (what lands in artifact provenance)."""
        return {
            "architecture": self.architecture_label(),
            "arch_options": dict(self.arch_options),
            "dataset": str(self.dataset),
            "train_size": self.train_size,
            "test_size": self.test_size,
            "noise": self.noise,
            "test_fraction": self.test_fraction,
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "lr": self.lr,
            "seed": self.seed,
            "block_size": self.block_size,
            "layer_block_sizes": {
                str(k): v for k, v in self.layer_block_sizes.items()
            },
            "skip_layers": list(self.skip_layers),
            "fine_tune_epochs": self.fine_tune_epochs,
            "quantize_bits": self.quantize_bits,
            "out": None if self.out is None else str(self.out),
            "precisions": list(self.precisions),
        }

    def config_hash(self) -> str:
        """Short stable hash of the declarative content (provenance)."""
        canonical = json.dumps(self.describe(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    # File round trip (the CLI's --config)
    # ------------------------------------------------------------------
    _FILE_FIELDS = (
        "architecture", "arch_options", "dataset", "train_size",
        "test_size", "noise", "test_fraction", "epochs", "batch_size",
        "lr", "seed", "block_size", "layer_block_sizes", "skip_layers",
        "fine_tune_epochs", "quantize_bits", "out", "precisions",
    )

    @classmethod
    def from_file(cls, path: str | Path, **overrides) -> "PipelineConfig":
        """Load a JSON config file; keyword arguments override its keys.

        The file is a flat JSON object of constructor fields — the
        declarative input of ``repro build --config``.  Unknown keys
        are rejected (a typo'd knob must not silently no-op).
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"cannot read pipeline config {path}: {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"pipeline config {path} must be a JSON object"
            )
        unknown = sorted(set(payload) - set(cls._FILE_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown pipeline config keys {unknown}; "
                f"expected a subset of {list(cls._FILE_FIELDS)}"
            )
        payload.update(
            {k: v for k, v in overrides.items() if v is not None}
        )
        for key in ("skip_layers", "precisions"):
            if key in payload and isinstance(payload[key], list):
                payload[key] = tuple(payload[key])
        return cls(**payload)
