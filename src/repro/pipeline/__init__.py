"""repro.pipeline — the declarative build pipeline (production side).

One :class:`PipelineConfig` describes the whole paper workflow — train
a network, compress it into block-circulant form, quantize to fixed
point, package the FFT-domain artifact — and one :class:`Pipeline`
runs it with typed, resumable stages.  The produced format-v2 artifact
is consumed natively by :class:`repro.engine.EngineConfig`'s model
registry; ``repro build`` / ``repro inspect`` are the CLI spellings.

See ``docs/pipeline.md`` for the config schema, stage lifecycle, and
the artifact v2 layout.
"""

from .config import PipelineConfig
from .core import Pipeline
from .types import (
    CompressResult,
    PackageResult,
    PipelineResult,
    QuantizeResult,
    TrainResult,
)

__all__ = [
    "Pipeline",
    "PipelineConfig",
    "PipelineResult",
    "TrainResult",
    "CompressResult",
    "QuantizeResult",
    "PackageResult",
]
