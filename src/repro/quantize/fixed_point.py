"""Fixed-point weight quantization (related-work extension, paper [14]).

The paper's related-work section surveys precision reduction as a
complementary compression axis.  This module implements symmetric
Q-format quantization so the two techniques can be composed: a
block-circulant model's defining vectors (or any model's weights) are
quantized to ``total_bits`` with an automatically chosen binary point,
and the accuracy impact is measurable through the normal evaluation
path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.module import Module

__all__ = [
    "QFormat",
    "choose_qformat",
    "dequantize_ints",
    "quantization_error",
    "quantize_array",
    "quantize_model",
    "quantize_to_ints",
    "storage_dtype",
]


@dataclass(frozen=True)
class QFormat:
    """Signed fixed-point format Q(``integer_bits``.``fraction_bits``).

    One sign bit is implied: total width = 1 + integer_bits +
    fraction_bits.
    """

    integer_bits: int
    fraction_bits: int

    def __post_init__(self):
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise ValueError(
                f"bit counts must be non-negative: {self.integer_bits}, "
                f"{self.fraction_bits}"
            )

    @property
    def total_bits(self) -> int:
        return 1 + self.integer_bits + self.fraction_bits

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0**-self.fraction_bits

    @property
    def max_value(self) -> float:
        return (2 ** (self.integer_bits + self.fraction_bits) - 1) * self.scale

    @property
    def min_value(self) -> float:
        return -(2 ** (self.integer_bits + self.fraction_bits)) * self.scale


def choose_qformat(values: np.ndarray, total_bits: int) -> QFormat:
    """Pick the Q-format of width ``total_bits`` covering ``values``.

    Allocates just enough integer bits for the largest magnitude and
    gives the rest to the fraction, the standard dynamic-range rule.
    """
    if total_bits < 2:
        raise ValueError(f"total_bits must be >= 2, got {total_bits}")
    values = np.asarray(values, dtype=np.float64)
    peak = float(np.max(np.abs(values), initial=0.0))
    if peak == 0.0:
        return QFormat(0, total_bits - 1)
    integer_bits = max(0, int(np.ceil(np.log2(peak + 1e-12))) + 1)
    integer_bits = min(integer_bits, total_bits - 1)
    return QFormat(integer_bits, total_bits - 1 - integer_bits)


def quantize_array(values: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Round ``values`` to the representable grid of ``fmt`` (saturating)."""
    values = np.asarray(values, dtype=np.float64)
    quantized = np.round(values / fmt.scale) * fmt.scale
    return np.clip(quantized, fmt.min_value, fmt.max_value)


def storage_dtype(fmt: QFormat) -> np.dtype:
    """Smallest signed integer dtype that holds ``fmt``'s code points."""
    if fmt.total_bits <= 8:
        return np.dtype(np.int8)
    if fmt.total_bits <= 16:
        return np.dtype(np.int16)
    if fmt.total_bits <= 32:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def quantize_to_ints(values: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Encode ``values`` as fixed-point integer code points (saturating).

    The returned array uses :func:`storage_dtype` — the on-disk
    representation of artifact format v2's quantized weights.  Exact
    inverse of :func:`dequantize_ints` on the representable grid:
    ``dequantize_ints(quantize_to_ints(x, fmt), fmt)`` equals
    ``quantize_array(x, fmt)`` bitwise.
    """
    values = np.asarray(values, dtype=np.float64)
    magnitude = 2 ** (fmt.integer_bits + fmt.fraction_bits)
    codes = np.clip(np.round(values / fmt.scale), -magnitude, magnitude - 1)
    return codes.astype(storage_dtype(fmt))


def dequantize_ints(codes: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Decode fixed-point integer code points back to float64 values."""
    return np.asarray(codes, dtype=np.float64) * fmt.scale


def quantization_error(values: np.ndarray, fmt: QFormat) -> float:
    """Relative L2 error introduced by quantizing ``values`` with ``fmt``."""
    values = np.asarray(values, dtype=np.float64)
    norm = np.linalg.norm(values)
    if norm == 0.0:
        return 0.0
    return float(np.linalg.norm(values - quantize_array(values, fmt)) / norm)


def quantize_model(model: Module, total_bits: int) -> dict[str, QFormat]:
    """Quantize every parameter of ``model`` in place, per-tensor Q-format.

    Returns the chosen format per parameter name so callers can report
    the effective bit allocation.  Use ``model.state_dict()`` beforehand
    to keep a float backup.
    """
    formats: dict[str, QFormat] = {}
    for name, param in model.named_parameters():
        fmt = choose_qformat(param.data, total_bits)
        param.data = quantize_array(param.data, fmt)
        formats[name] = fmt
    if not formats:
        raise ValueError("model has no parameters to quantize")
    return formats
