"""Fixed-point quantization extension (paper related work [14])."""

from .fixed_point import (
    QFormat,
    choose_qformat,
    quantization_error,
    quantize_array,
    quantize_model,
)

__all__ = [
    "QFormat",
    "choose_qformat",
    "quantize_array",
    "quantization_error",
    "quantize_model",
]
