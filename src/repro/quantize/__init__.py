"""Fixed-point quantization extension (paper related work [14])."""

from .fixed_point import (
    QFormat,
    choose_qformat,
    dequantize_ints,
    quantization_error,
    quantize_array,
    quantize_model,
    quantize_to_ints,
    storage_dtype,
)

__all__ = [
    "QFormat",
    "choose_qformat",
    "dequantize_ints",
    "quantize_array",
    "quantization_error",
    "quantize_model",
    "quantize_to_ints",
    "storage_dtype",
]
