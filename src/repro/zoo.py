"""Model zoo: the three network architectures evaluated in the paper.

* **Arch. 1** (section V-B): 256 inputs (MNIST resized 16x16), two
  block-circulant FC layers of 128 neurons, softmax over 10 digits.
* **Arch. 2** (section V-B): 121 inputs (MNIST resized 11x11), two
  block-circulant FC layers of 64 neurons, softmax over 10 digits.
* **Arch. 3** (section V-C): the CIFAR-10 CONV network
  ``128x3x32x32-64Conv3-64Conv3-128Conv3-128Conv3-512F-1024F-1024F-10F``
  with the first two CONV layers kept dense ("traditional") and the rest
  block-circulant, per the paper.

The paper does not report the block size it used; ``block_size`` defaults
to half the smaller layer dimension (a 2-block decomposition of the
smaller axis), and is exposed so the block-size ablation (experiment E11)
can sweep it.  ``build_arch3_reduced`` is a width-reduced Arch. 3 used to
*train* on the synthetic CIFAR-10 stand-in within CI-scale budgets; the
full ``build_arch3`` is used for runtime/storage modeling, where only the
architecture matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .exceptions import ConfigurationError
from .nn import (
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    FFTLayer1d,
    Flatten,
    Linear,
    MaxPool2d,
    Pointwise1d,
    ReLU,
    Sequential,
)

__all__ = [
    "ARCH1_INPUT_SIDE",
    "ARCH2_INPUT_SIDE",
    "ZooEntry",
    "build_arch1",
    "build_arch2",
    "build_arch3",
    "build_arch3_reduced",
    "build_fftnet",
    "entry",
    "get",
    "names",
    "register",
]

ARCH1_INPUT_SIDE = 16  # 16 x 16 = 256 input neurons
ARCH2_INPUT_SIDE = 11  # 11 x 11 = 121 input neurons


def build_arch1(
    block_size: int = 64,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Paper Arch. 1: ``256 -> 128 (BC) -> 128 (BC) -> 10`` (logits out).

    The softmax itself lives in the loss during training and in the
    deployment engine at inference, so the model returns logits.
    """
    rng = rng or np.random.default_rng()
    return Sequential(
        BlockCirculantLinear(256, 128, block_size, rng=rng),
        ReLU(),
        BlockCirculantLinear(128, 128, block_size, rng=rng),
        ReLU(),
        Linear(128, 10, rng=rng),
    )


def build_arch2(
    block_size: int = 32,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Paper Arch. 2: ``121 -> 64 (BC) -> 64 (BC) -> 10`` (logits out)."""
    rng = rng or np.random.default_rng()
    return Sequential(
        BlockCirculantLinear(121, 64, block_size, rng=rng),
        ReLU(),
        BlockCirculantLinear(64, 64, block_size, rng=rng),
        ReLU(),
        Linear(64, 10, rng=rng),
    )


def build_arch3(
    block_size: int = 32,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Paper Arch. 3 for CIFAR-10 (full width, logits out).

    ``64Conv3-64Conv3-128Conv3-128Conv3-512F-1024F-1024F-10F`` on 3x32x32
    inputs.  The first two CONV layers are traditional dense convolutions
    (the paper treats them as preprocessing, citing the TrueNorth paper);
    CONV 3-4 and the large FC layers are block-circulant.  2x2 max pooling
    after each CONV pair keeps the FC interface at the commonly used size
    (the paper omits pooling details; see DESIGN.md).
    """
    rng = rng or np.random.default_rng()
    return Sequential(
        Conv2d(3, 64, 3, padding=1, rng=rng),
        ReLU(),
        Conv2d(64, 64, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        BlockCirculantConv2d(64, 128, 3, block_size=block_size, padding=1, rng=rng),
        ReLU(),
        BlockCirculantConv2d(128, 128, 3, block_size=block_size, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        BlockCirculantLinear(128 * 8 * 8, 512, block_size * 4, rng=rng),
        ReLU(),
        BlockCirculantLinear(512, 1024, block_size * 4, rng=rng),
        ReLU(),
        BlockCirculantLinear(1024, 1024, block_size * 4, rng=rng),
        ReLU(),
        Linear(1024, 10, rng=rng),
    )


def build_arch3_reduced(
    block_size: int = 8,
    width: int = 16,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Width-reduced Arch. 3 for training on the synthetic CIFAR stand-in.

    Preserves the paper's topology (2 dense CONV, 2 block-circulant CONV,
    3 block-circulant FC, dense classifier) at ``width`` channels instead
    of 64, so accuracy experiments run in seconds while exercising every
    layer type of the full network.
    """
    rng = rng or np.random.default_rng()
    w2 = width * 2
    return Sequential(
        Conv2d(3, width, 3, padding=1, rng=rng),
        ReLU(),
        Conv2d(width, width, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        BlockCirculantConv2d(width, w2, 3, block_size=block_size, padding=1, rng=rng),
        ReLU(),
        BlockCirculantConv2d(w2, w2, 3, block_size=block_size, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        BlockCirculantLinear(w2 * 8 * 8, 128, block_size * 4, rng=rng),
        ReLU(),
        BlockCirculantLinear(128, 128, block_size * 4, rng=rng),
        ReLU(),
        Linear(128, 10, rng=rng),
    )


# ----------------------------------------------------------------------
# Name-keyed architecture registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ZooEntry:
    """One registered architecture: builder plus the facts a declarative
    caller (``PipelineConfig``, the CLI) needs to use it without importing
    the builder function.

    ``input_shape`` is the per-sample shape the built model consumes
    (``(features,)`` for FC nets, ``(channels, h, w)`` for CONV nets);
    ``dataset`` names the synthetic dataset the architecture is evaluated
    on in the paper (``"synthetic_mnist"`` / ``"synthetic_cifar"``).
    """

    name: str
    builder: Callable[..., Sequential]
    input_shape: tuple[int, ...]
    dataset: str
    description: str

    def build(self, **kwargs) -> Sequential:
        return self.builder(**kwargs)


_REGISTRY: dict[str, ZooEntry] = {}


def register(
    name: str,
    builder: Callable[..., Sequential],
    input_shape: tuple[int, ...],
    dataset: str,
    description: str = "",
) -> ZooEntry:
    """Register an architecture under ``name`` (returned as a ZooEntry).

    Registration is idempotent for identical entries; re-registering a
    name with a different builder raises.
    """
    new = ZooEntry(name, builder, tuple(input_shape), dataset, description)
    existing = _REGISTRY.get(name)
    if existing is not None and existing != new:
        raise ConfigurationError(
            f"architecture {name!r} is already registered"
        )
    _REGISTRY[name] = new
    return new


def names() -> tuple[str, ...]:
    """Registered architecture names, registration order."""
    return tuple(_REGISTRY)


def entry(name: str) -> ZooEntry:
    """The registry entry for ``name`` (ConfigurationError if unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown architecture {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def get(name: str, **kwargs) -> Sequential:
    """Build a registered architecture by name.

    Keyword arguments pass through to the builder (``block_size``,
    ``width``, ``rng``, ...), so ``zoo.get("arch1", block_size=32)`` is
    the declarative spelling of ``build_arch1(block_size=32)``.
    """
    return entry(name).build(**kwargs)


def build_fftnet(
    channels: int = 32,
    depth: int = 4,
    classes: int = 16,
    in_channels: int = 1,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """FFTNet-style causal dilated sequence classifier (streaming arch).

    ``depth`` two-tap :class:`~repro.nn.FFTLayer1d` stages with dilations
    ``2^(depth-1), ..., 2, 1`` (receptive field ``2^depth`` samples),
    each followed by ReLU, then a ReLU'd :class:`~repro.nn.Pointwise1d`
    hidden projection and a pointwise classifier over the waveform
    quantization bins.  Time-major ``(batch, T, in_channels)`` in,
    ``(batch, T, classes)`` logits out — the architecture
    ``repro.streaming`` serves incrementally, one suffix push at a time.
    """
    if depth < 1:
        raise ConfigurationError(f"depth must be >= 1, got {depth}")
    rng = rng or np.random.default_rng()
    layers: list = []
    width = in_channels
    for level in range(depth):
        dilation = 2 ** (depth - 1 - level)
        layers += [FFTLayer1d(width, channels, dilation, rng=rng), ReLU()]
        width = channels
    layers += [
        Pointwise1d(width, channels, rng=rng),
        ReLU(),
        Pointwise1d(channels, classes, rng=rng),
    ]
    return Sequential(*layers)


register(
    "arch1", build_arch1, (256,), "synthetic_mnist",
    "Paper Arch. 1: 256 -> 128 (BC) -> 128 (BC) -> 10, MNIST 16x16",
)
register(
    "arch2", build_arch2, (121,), "synthetic_mnist",
    "Paper Arch. 2: 121 -> 64 (BC) -> 64 (BC) -> 10, MNIST 11x11",
)
register(
    "arch3", build_arch3, (3, 32, 32), "synthetic_cifar",
    "Paper Arch. 3: CIFAR-10 CONV network, full width",
)
register(
    "arch3_reduced", build_arch3_reduced, (3, 32, 32), "synthetic_cifar",
    "Width-reduced Arch. 3 for CI-scale training on synthetic CIFAR",
)
register(
    "fftnet", build_fftnet, (None, 1), "synthetic_wave",
    "FFTNet-style causal dilated sequence net (streaming), "
    "time-major (T, 1) waveform in, per-sample class logits out",
)
