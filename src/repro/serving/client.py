"""Clients for the serving front-end: blocking and asyncio flavors.

Both speak the frame protocol of :mod:`repro.serving.protocol` and
expose the same four calls — ``ping``, ``info``, ``predict``,
``predict_proba``.  :class:`ServeClient` wraps a blocking socket (for
scripts and the CLI); :class:`AsyncServeClient` wraps asyncio streams
so many clients can share one event loop (see
``examples/serve_client.py`` for a concurrent-client demo).

One connection carries any number of sequential requests; neither
client pipelines concurrently on a single connection — open one client
per concurrent caller instead (connections are cheap, and the server
micro-batches across them anyway).

**Resilience.**  Both clients retry transient failures with bounded,
jittered exponential backoff:

* :class:`~repro.exceptions.Overloaded` (the server shed the request)
  — retried on the same connection, waiting at least the server's
  ``retry_after_ms`` hint;
* :class:`~repro.exceptions.ServerUnavailable`, connection resets, and
  read/connect timeouts — the stream may be desynchronized, so the
  client reconnects before replaying.

Every predict request carries a stable ``request_id`` header (kept
across retries of the same call), so a future deduplicating server can
make replays idempotent.  Deliberate errors — deadline expiry, unknown
models, malformed frames — are **never** retried: repeating them cannot
succeed.  After the retry budget the last typed error is raised.
``retries=0`` restores the old fail-fast behavior exactly.

Reconnect-and-replay is only safe for ops on the
:data:`IDEMPOTENT_OPS` whitelist.  A ``stream_push`` is *not* on it:
the server applies a push to the stream's history buffers, so replaying
one that may or may not have been applied would silently corrupt the
stream's position.  When the connection dies with a stream open, both
clients raise :class:`~repro.exceptions.StreamBroken` — carrying how
many samples were definitely applied — and the caller decides whether
to re-open and re-feed.  See :class:`Stream` / :class:`AsyncStream` and
``docs/streaming.md``.
"""

from __future__ import annotations

import asyncio
import random
import socket
import time
import uuid

import numpy as np

from ..exceptions import (
    Overloaded,
    ServerUnavailable,
    ServingError,
    StreamBroken,
)
from .batcher import DeadlineExpired
from .protocol import (
    DEFAULT_MAX_PAYLOAD,
    DEFAULT_PORT,
    pack_array,
    read_frame,
    read_frame_sync,
    send_frame,
    send_frame_sync,
    unpack_array,
)

__all__ = ["ServeClient", "AsyncServeClient", "Stream", "AsyncStream",
           "IDEMPOTENT_OPS"]

#: Default connect timeout: distinct from (and much tighter than) the
#: read timeout — an unreachable host should fail in seconds, while a
#: slow batch may legitimately take the full read timeout.
DEFAULT_CONNECT_TIMEOUT = 5.0

#: Ops safe to replay on a fresh connection after the old one died
#: mid-request.  Everything here either reads state (``ping``,
#: ``info``), is level-triggered (``drain``), is applied exactly once
#: per *response* the caller observes (``predict`` — a replayed predict
#: recomputes the same pure function), or allocates a resource the
#: caller only learns about from the response (``stream_open`` — a
#: half-applied open leaks nothing: the dead connection's registry
#: freed it).  ``stream_push``/``stream_close`` are deliberately
#: absent — they mutate per-connection stream state that the fresh
#: connection does not have.
IDEMPOTENT_OPS = frozenset(
    {"ping", "info", "drain", "predict", "predict_proba", "stream_open"}
)


def _check(header: dict) -> dict:
    if header.get("status") != "ok":
        message = header.get("message", "request failed")
        code = header.get("code")
        if code == "deadline_expired":
            # Typed expiry so retry logic never string-matches messages.
            raise DeadlineExpired(message)
        if code == "overloaded":
            raise Overloaded(message, retry_after_ms=header.get("retry_after_ms"))
        if code == "server_unavailable":
            raise ServerUnavailable(message)
        raise ServingError(message)
    return header


def _predict_header(op: str, model, precision, priority, deadline_ms) -> dict:
    """Request header with only the routing fields the caller set.

    Omitted fields are omitted from the wire too — an old server (or a
    new server with an old client) sees exactly the pre-engine frames.
    """
    header = {"op": op}
    if model is not None:
        header["model"] = model
    if precision is not None:
        header["precision"] = str(precision)
    if priority is not None:
        header["priority"] = priority
    if deadline_ms is not None:
        header["deadline_ms"] = deadline_ms
    return header


class _RetryPolicy:
    """Shared retry arithmetic: full-jitter exponential backoff.

    The wait before attempt ``attempt`` (0-based) is uniform in
    ``[0, min(backoff_ms * 2**attempt, backoff_max_ms)]``, floored at
    the server's ``retry_after_ms`` hint when one was offered —
    randomness decorrelates a thundering herd, the floor honors the
    server's own drain estimate.
    """

    def __init__(self, retries: int, backoff_ms: float, backoff_max_ms: float):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_ms < 0 or backoff_max_ms < backoff_ms:
            raise ValueError(
                f"need 0 <= backoff_ms <= backoff_max_ms, got "
                f"{backoff_ms}/{backoff_max_ms}"
            )
        self.retries = retries
        self.backoff_ms = backoff_ms
        self.backoff_max_ms = backoff_max_ms

    def delay_s(self, attempt: int, retry_after_ms: float | None) -> float:
        ceiling = min(self.backoff_ms * (2 ** attempt), self.backoff_max_ms)
        delay_ms = random.uniform(0.0, ceiling)
        if retry_after_ms is not None:
            delay_ms = max(delay_ms, float(retry_after_ms))
        return delay_ms / 1e3


class ServeClient:
    """Blocking client: one TCP connection, sequential requests.

    Parameters
    ----------
    host, port:
        Server address; the constructor connects immediately (an
        unreachable server raises
        :class:`~repro.exceptions.ServerUnavailable`).
    timeout:
        Read timeout per response, seconds.
    connect_timeout:
        Timeout for establishing the TCP connection (also used by retry
        reconnects).
    max_payload:
        Inbound frame payload bound.
    retries:
        Retry budget per request for *transient* failures (shed
        requests, dropped connections, timeouts).  ``0`` disables
        retrying.
    backoff_ms, backoff_max_ms:
        Jittered exponential backoff range between attempts; an
        ``Overloaded`` response's ``retry_after_ms`` raises the floor.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        retries: int = 2,
        backoff_ms: float = 25.0,
        backoff_max_ms: float = 2000.0,
    ):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._connect_timeout = connect_timeout
        self._max_payload = max_payload
        self._policy = _RetryPolicy(retries, backoff_ms, backoff_max_ms)
        self._sock: socket.socket | None = None
        # Bumped on every (re)connect; a Stream records the epoch it was
        # opened under, so it can detect that its server-side state died
        # with the old connection.
        self._conn_epoch = 0
        self._connect()

    def _connect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except Exception:
                pass
            self._sock = None
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._connect_timeout
            )
        except OSError as exc:
            raise ServerUnavailable(
                f"cannot connect to {self._host}:{self._port}: {exc}"
            ) from exc
        sock.settimeout(self._timeout)
        self._sock = sock
        self._conn_epoch += 1

    def _once(self, header: dict, payload) -> tuple[dict, bytes]:
        if self._sock is None:
            self._connect()
        try:
            send_frame_sync(self._sock, header, payload)
            response, out = read_frame_sync(self._sock, self._max_payload)
        except socket.timeout as exc:
            raise ServerUnavailable(
                f"no response within {self._timeout}s"
            ) from exc
        except OSError as exc:
            raise ServerUnavailable(f"connection failed: {exc}") from exc
        return _check(response), out

    def _request(self, header: dict, payload=b"") -> tuple[dict, bytes]:
        # One id for every attempt of this logical request: a server
        # that deduplicates can treat the replay as the same request.
        header.setdefault("request_id", uuid.uuid4().hex)
        attempt = 0
        while True:
            try:
                return self._once(header, payload)
            except Overloaded as exc:
                # Connection is intact (the server answered); back off
                # at least as long as it asked, then resend.
                if attempt >= self._policy.retries:
                    raise
                time.sleep(self._policy.delay_s(attempt, exc.retry_after_ms))
            except ServerUnavailable:
                # The stream may be desynchronized (or dead): retries
                # must replay on a fresh connection — which is only
                # sound for ops documented idempotent.  Anything else
                # (a stream_push above all) may already have been
                # applied; replaying it would corrupt server state, so
                # it fails here and the caller decides.
                if (
                    header.get("op") not in IDEMPOTENT_OPS
                    or attempt >= self._policy.retries
                ):
                    raise
                time.sleep(self._policy.delay_s(attempt, None))
                try:
                    self._connect()
                except ServerUnavailable:
                    pass  # still down; next attempt reconnects again
            attempt += 1

    def ping(self) -> bool:
        self._request({"op": "ping"})
        return True

    def info(self) -> dict:
        header, _ = self._request({"op": "info"})
        return header

    def drain(self) -> dict:
        """Ask the server to drain and shut down gracefully."""
        header, _ = self._request({"op": "drain"})
        return header

    def predict_proba(
        self,
        rows: np.ndarray,
        model: str | None = None,
        precision=None,
        priority=None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        _, payload = self._request(
            _predict_header("predict_proba", model, precision, priority,
                            deadline_ms),
            pack_array(np.asarray(rows)),
        )
        return unpack_array(payload)

    def predict(
        self,
        rows: np.ndarray,
        model: str | None = None,
        precision=None,
        priority=None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        _, payload = self._request(
            _predict_header("predict", model, precision, priority,
                            deadline_ms),
            pack_array(np.asarray(rows)),
        )
        return unpack_array(payload)

    def stream(
        self,
        model: str | None = None,
        precision=None,
        priority=None,
    ) -> "Stream":
        """Open a server-side stream; returns a :class:`Stream`.

        Use as a context manager so the server's state is released even
        on error paths::

            with client.stream() as s:
                for chunk in chunks:
                    proba = s.push(chunk)

        The open itself is idempotent (retried like a predict); every
        subsequent :meth:`Stream.push` is pinned to this connection and
        never replayed.
        """
        header, _ = self._request(
            _predict_header("stream_open", model, precision, priority, None)
        )
        return Stream(self, header)

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except Exception:
            pass
        self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Stream:
    """A server-side incremental inference stream, bound to one client.

    Created by :meth:`ServeClient.stream`.  :meth:`push` sends new
    samples and returns their class probabilities — bitwise identical
    to what a full-sequence ``predict_proba`` over everything pushed so
    far would have produced for those rows.

    Failure semantics (the part that differs from predicts):

    * ``Overloaded`` — the push was *shed before touching stream
      state*, so it is retried on the same connection with backoff.
    * ``DeadlineExpired`` — the push expired in the queue, also before
      touching state; the exception propagates but the stream stays
      usable (resend the same chunk if you still want it).
    * ``ServerUnavailable`` / connection death — the server may or may
      not have applied the push, and its state died with the
      connection either way: the stream is **broken**, and every later
      call raises :class:`~repro.exceptions.StreamBroken` whose
      ``pushed`` counts the samples definitely applied.  Re-feeding is
      the caller's decision; nothing is replayed implicitly.

    Attributes ``stream_id``, ``samples`` (server-confirmed applied
    samples), ``receptive_field``, ``classes``, ``state_bytes`` mirror
    the server's open/push responses.
    """

    def __init__(self, client: ServeClient, opened: dict):
        self._client = client
        self._epoch = client._conn_epoch
        self.stream_id = opened["stream"]
        self.model = opened.get("model")
        self.precision = opened.get("precision")
        self.in_channels = opened.get("in_channels")
        self.classes = opened.get("classes")
        self.receptive_field = opened.get("receptive_field")
        self.state_bytes = opened.get("state_bytes")
        self.samples = 0
        self.pushes = 0
        self._closed = False
        self._broken: StreamBroken | None = None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        return self._broken is not None

    def _guard(self) -> None:
        if self._closed:
            raise ServingError(
                f"stream {self.stream_id} is closed"
            )
        if self._broken is not None:
            raise StreamBroken(str(self._broken), pushed=self.samples)
        if self._client._conn_epoch != self._epoch:
            # The client reconnected underneath us (a retried predict on
            # the same client object, say): the server-side state is
            # gone even though no push of *ours* failed.
            self._break("client reconnected; stream state was lost")

    def _break(self, why: str) -> None:
        self._broken = StreamBroken(
            f"stream {self.stream_id} broken after {self.samples} "
            f"samples: {why}",
            pushed=self.samples,
        )
        raise self._broken

    def push(
        self, chunk: np.ndarray, deadline_ms: float | None = None
    ) -> np.ndarray:
        """Push ``chunk`` (samples, channels); probabilities for them."""
        self._guard()
        header = {"op": "stream_push", "stream": self.stream_id,
                  "request_id": uuid.uuid4().hex}
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        payload = pack_array(np.asarray(chunk))
        attempt = 0
        while True:
            try:
                response, out = self._client._once(header, payload)
                break
            except Overloaded as exc:
                # Shed at admission: state untouched, connection intact
                # (the server answered).  Same-connection resend is the
                # one replay that is always safe.
                if attempt >= self._client._policy.retries:
                    raise
                time.sleep(
                    self._client._policy.delay_s(attempt, exc.retry_after_ms)
                )
                attempt += 1
            except DeadlineExpired:
                # Expired in the queue, never applied; stream intact.
                raise
            except ServerUnavailable as exc:
                self._break(str(exc))
            except ServingError:
                # A protocol-level error leaves the applied-sample count
                # ambiguous only if it killed the connection — it did
                # not (the server answered) — but the stream's handle
                # may be rejected (server restarted registry?).  Treat
                # as fatal for this stream, not for the client.
                raise
        self.samples = int(response.get("samples", self.samples))
        self.pushes += 1
        return unpack_array(out)

    def close(self) -> None:
        """Release the server-side state; idempotent, never raises."""
        if self._closed:
            return
        self._closed = True
        if self._broken is not None:
            return  # state died with the connection; nothing to free
        if self._client._conn_epoch != self._epoch:
            return  # reconnected: old connection's registry freed it
        try:
            self._client._once(
                {"op": "stream_close", "stream": self.stream_id}, b""
            )
        except (ServingError, ServerUnavailable):
            pass  # server gone or handle unknown: state is free anyway

    def __enter__(self) -> "Stream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = (
            "broken" if self.broken else "closed" if self._closed else "open"
        )
        return (
            f"Stream({self.stream_id}, {state}, samples={self.samples})"
        )


class AsyncServeClient:
    """asyncio client: construct with :meth:`connect`.

    Retry semantics mirror :class:`ServeClient`.  A client built
    directly from ``(reader, writer)`` has no address to reconnect to,
    so transport failures are raised immediately (shed requests still
    retry on the intact connection).
    """

    def __init__(
        self,
        reader,
        writer,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        timeout: float = 60.0,
        retries: int = 2,
        backoff_ms: float = 25.0,
        backoff_max_ms: float = 2000.0,
    ):
        self._reader = reader
        self._writer = writer
        self._max_payload = max_payload
        self._timeout = timeout
        self._policy = _RetryPolicy(retries, backoff_ms, backoff_max_ms)
        self._host: str | None = None
        self._port: int | None = None
        self._connect_timeout = DEFAULT_CONNECT_TIMEOUT
        self._conn_epoch = 1  # bumped on reconnect; see ServeClient

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        timeout: float = 60.0,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        retries: int = 2,
        backoff_ms: float = 25.0,
        backoff_max_ms: float = 2000.0,
    ) -> "AsyncServeClient":
        reader, writer = await cls._open(host, port, connect_timeout)
        client = cls(
            reader,
            writer,
            max_payload=max_payload,
            timeout=timeout,
            retries=retries,
            backoff_ms=backoff_ms,
            backoff_max_ms=backoff_max_ms,
        )
        client._host = host
        client._port = port
        client._connect_timeout = connect_timeout
        return client

    @staticmethod
    async def _open(host: str, port: int, connect_timeout: float):
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(host, port), connect_timeout
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServerUnavailable(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc

    async def _reconnect(self) -> None:
        try:
            self._writer.close()
        except Exception:
            pass
        self._reader, self._writer = await self._open(
            self._host, self._port, self._connect_timeout
        )
        self._conn_epoch += 1

    async def _once(self, header: dict, payload) -> tuple[dict, bytes]:
        try:
            await send_frame(self._writer, header, payload)
            response, out = await asyncio.wait_for(
                read_frame(self._reader, self._max_payload), self._timeout
            )
        except asyncio.TimeoutError as exc:
            raise ServerUnavailable(
                f"no response within {self._timeout}s"
            ) from exc
        except asyncio.IncompleteReadError as exc:
            raise ServerUnavailable("connection closed mid-frame") from exc
        except (ConnectionError, OSError) as exc:
            raise ServerUnavailable(f"connection failed: {exc}") from exc
        return _check(response), out

    async def _request(self, header: dict, payload=b"") -> tuple[dict, bytes]:
        header.setdefault("request_id", uuid.uuid4().hex)
        attempt = 0
        while True:
            try:
                return await self._once(header, payload)
            except Overloaded as exc:
                if attempt >= self._policy.retries:
                    raise
                await asyncio.sleep(
                    self._policy.delay_s(attempt, exc.retry_after_ms)
                )
            except ServerUnavailable:
                # Without an address there is no reconnecting — and the
                # stream offset may be garbage — so fail immediately.
                # Non-idempotent ops (stream pushes) never replay at
                # all; see IDEMPOTENT_OPS.
                if (
                    header.get("op") not in IDEMPOTENT_OPS
                    or self._host is None
                    or attempt >= self._policy.retries
                ):
                    raise
                await asyncio.sleep(self._policy.delay_s(attempt, None))
                try:
                    await self._reconnect()
                except ServerUnavailable:
                    pass  # still down; next attempt reconnects again
            attempt += 1

    async def ping(self) -> bool:
        await self._request({"op": "ping"})
        return True

    async def info(self) -> dict:
        header, _ = await self._request({"op": "info"})
        return header

    async def drain(self) -> dict:
        """Ask the server to drain and shut down gracefully."""
        header, _ = await self._request({"op": "drain"})
        return header

    async def predict_proba(
        self,
        rows: np.ndarray,
        model: str | None = None,
        precision=None,
        priority=None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        _, payload = await self._request(
            _predict_header("predict_proba", model, precision, priority,
                            deadline_ms),
            pack_array(np.asarray(rows)),
        )
        return unpack_array(payload)

    async def predict(
        self,
        rows: np.ndarray,
        model: str | None = None,
        precision=None,
        priority=None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        _, payload = await self._request(
            _predict_header("predict", model, precision, priority,
                            deadline_ms),
            pack_array(np.asarray(rows)),
        )
        return unpack_array(payload)

    async def stream(
        self,
        model: str | None = None,
        precision=None,
        priority=None,
    ) -> "AsyncStream":
        """Open a server-side stream; returns an :class:`AsyncStream`.

        Usage (note the ``await`` — the open is a round trip)::

            async with await client.stream() as s:
                proba = await s.push(chunk)
        """
        header, _ = await self._request(
            _predict_header("stream_open", model, precision, priority, None)
        )
        return AsyncStream(self, header)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


class AsyncStream:
    """Asyncio twin of :class:`Stream`; same failure semantics."""

    def __init__(self, client: AsyncServeClient, opened: dict):
        self._client = client
        self._epoch = client._conn_epoch
        self.stream_id = opened["stream"]
        self.model = opened.get("model")
        self.precision = opened.get("precision")
        self.in_channels = opened.get("in_channels")
        self.classes = opened.get("classes")
        self.receptive_field = opened.get("receptive_field")
        self.state_bytes = opened.get("state_bytes")
        self.samples = 0
        self.pushes = 0
        self._closed = False
        self._broken: StreamBroken | None = None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        return self._broken is not None

    def _guard(self) -> None:
        if self._closed:
            raise ServingError(f"stream {self.stream_id} is closed")
        if self._broken is not None:
            raise StreamBroken(str(self._broken), pushed=self.samples)
        if self._client._conn_epoch != self._epoch:
            self._break("client reconnected; stream state was lost")

    def _break(self, why: str) -> None:
        self._broken = StreamBroken(
            f"stream {self.stream_id} broken after {self.samples} "
            f"samples: {why}",
            pushed=self.samples,
        )
        raise self._broken

    async def push(
        self, chunk: np.ndarray, deadline_ms: float | None = None
    ) -> np.ndarray:
        """Push ``chunk`` (samples, channels); probabilities for them."""
        self._guard()
        header = {"op": "stream_push", "stream": self.stream_id,
                  "request_id": uuid.uuid4().hex}
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        payload = pack_array(np.asarray(chunk))
        attempt = 0
        while True:
            try:
                response, out = await self._client._once(header, payload)
                break
            except Overloaded as exc:
                if attempt >= self._client._policy.retries:
                    raise
                await asyncio.sleep(
                    self._client._policy.delay_s(attempt, exc.retry_after_ms)
                )
                attempt += 1
            except DeadlineExpired:
                raise  # never applied; stream intact
            except ServerUnavailable as exc:
                self._break(str(exc))
        self.samples = int(response.get("samples", self.samples))
        self.pushes += 1
        return unpack_array(out)

    async def close(self) -> None:
        """Release the server-side state; idempotent, never raises."""
        if self._closed:
            return
        self._closed = True
        if self._broken is not None:
            return
        if self._client._conn_epoch != self._epoch:
            return
        try:
            await self._client._once(
                {"op": "stream_close", "stream": self.stream_id}, b""
            )
        except (ServingError, ServerUnavailable):
            pass

    async def __aenter__(self) -> "AsyncStream":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def __repr__(self) -> str:
        state = (
            "broken" if self.broken else "closed" if self._closed else "open"
        )
        return (
            f"AsyncStream({self.stream_id}, {state}, samples={self.samples})"
        )
