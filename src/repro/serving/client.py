"""Clients for the serving front-end: blocking and asyncio flavors.

Both speak the frame protocol of :mod:`repro.serving.protocol` and
expose the same four calls — ``ping``, ``info``, ``predict``,
``predict_proba``.  :class:`ServeClient` wraps a blocking socket (for
scripts and the CLI); :class:`AsyncServeClient` wraps asyncio streams
so many clients can share one event loop (see
``examples/serve_client.py`` for a concurrent-client demo).

One connection carries any number of sequential requests; neither
client pipelines concurrently on a single connection — open one client
per concurrent caller instead (connections are cheap, and the server
micro-batches across them anyway).
"""

from __future__ import annotations

import asyncio
import socket

import numpy as np

from ..exceptions import ServingError
from .batcher import DeadlineExpired
from .protocol import (
    DEFAULT_MAX_PAYLOAD,
    DEFAULT_PORT,
    pack_array,
    read_frame,
    read_frame_sync,
    send_frame,
    send_frame_sync,
    unpack_array,
)

__all__ = ["ServeClient", "AsyncServeClient"]


def _check(header: dict) -> dict:
    if header.get("status") != "ok":
        message = header.get("message", "request failed")
        if header.get("code") == "deadline_expired":
            # Typed expiry so retry logic never string-matches messages.
            raise DeadlineExpired(message)
        raise ServingError(message)
    return header


def _predict_header(op: str, model, precision, priority, deadline_ms) -> dict:
    """Request header with only the routing fields the caller set.

    Omitted fields are omitted from the wire too — an old server (or a
    new server with an old client) sees exactly the pre-engine frames.
    """
    header = {"op": op}
    if model is not None:
        header["model"] = model
    if precision is not None:
        header["precision"] = str(precision)
    if priority is not None:
        header["priority"] = priority
    if deadline_ms is not None:
        header["deadline_ms"] = deadline_ms
    return header


class ServeClient:
    """Blocking client: one TCP connection, sequential requests."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._max_payload = max_payload

    def _request(self, header: dict, payload: bytes = b"") -> tuple[dict, bytes]:
        send_frame_sync(self._sock, header, payload)
        response, out = read_frame_sync(self._sock, self._max_payload)
        return _check(response), out

    def ping(self) -> bool:
        self._request({"op": "ping"})
        return True

    def info(self) -> dict:
        header, _ = self._request({"op": "info"})
        return header

    def predict_proba(
        self,
        rows: np.ndarray,
        model: str | None = None,
        precision=None,
        priority=None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        _, payload = self._request(
            _predict_header("predict_proba", model, precision, priority,
                            deadline_ms),
            pack_array(np.asarray(rows)),
        )
        return unpack_array(payload)

    def predict(
        self,
        rows: np.ndarray,
        model: str | None = None,
        precision=None,
        priority=None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        _, payload = self._request(
            _predict_header("predict", model, precision, priority,
                            deadline_ms),
            pack_array(np.asarray(rows)),
        )
        return unpack_array(payload)

    def close(self) -> None:
        try:
            self._sock.close()
        except Exception:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncServeClient:
    """asyncio client: construct with :meth:`connect`."""

    def __init__(self, reader, writer, max_payload: int = DEFAULT_MAX_PAYLOAD):
        self._reader = reader
        self._writer = writer
        self._max_payload = max_payload

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
    ) -> "AsyncServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_payload=max_payload)

    async def _request(
        self, header: dict, payload: bytes = b""
    ) -> tuple[dict, bytes]:
        await send_frame(self._writer, header, payload)
        response, out = await read_frame(self._reader, self._max_payload)
        return _check(response), out

    async def ping(self) -> bool:
        await self._request({"op": "ping"})
        return True

    async def info(self) -> dict:
        header, _ = await self._request({"op": "info"})
        return header

    async def predict_proba(
        self,
        rows: np.ndarray,
        model: str | None = None,
        precision=None,
        priority=None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        _, payload = await self._request(
            _predict_header("predict_proba", model, precision, priority,
                            deadline_ms),
            pack_array(np.asarray(rows)),
        )
        return unpack_array(payload)

    async def predict(
        self,
        rows: np.ndarray,
        model: str | None = None,
        precision=None,
        priority=None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        _, payload = await self._request(
            _predict_header("predict", model, precision, priority,
                            deadline_ms),
            pack_array(np.asarray(rows)),
        )
        return unpack_array(payload)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
