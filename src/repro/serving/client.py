"""Clients for the serving front-end: blocking and asyncio flavors.

Both speak the frame protocol of :mod:`repro.serving.protocol` and
expose the same four calls — ``ping``, ``info``, ``predict``,
``predict_proba``.  :class:`ServeClient` wraps a blocking socket (for
scripts and the CLI); :class:`AsyncServeClient` wraps asyncio streams
so many clients can share one event loop (see
``examples/serve_client.py`` for a concurrent-client demo).

One connection carries any number of sequential requests; neither
client pipelines concurrently on a single connection — open one client
per concurrent caller instead (connections are cheap, and the server
micro-batches across them anyway).

**Resilience.**  Both clients retry transient failures with bounded,
jittered exponential backoff:

* :class:`~repro.exceptions.Overloaded` (the server shed the request)
  — retried on the same connection, waiting at least the server's
  ``retry_after_ms`` hint;
* :class:`~repro.exceptions.ServerUnavailable`, connection resets, and
  read/connect timeouts — the stream may be desynchronized, so the
  client reconnects before replaying.

Every predict request carries a stable ``request_id`` header (kept
across retries of the same call), so a future deduplicating server can
make replays idempotent.  Deliberate errors — deadline expiry, unknown
models, malformed frames — are **never** retried: repeating them cannot
succeed.  After the retry budget the last typed error is raised.
``retries=0`` restores the old fail-fast behavior exactly.
"""

from __future__ import annotations

import asyncio
import random
import socket
import time
import uuid

import numpy as np

from ..exceptions import Overloaded, ServerUnavailable, ServingError
from .batcher import DeadlineExpired
from .protocol import (
    DEFAULT_MAX_PAYLOAD,
    DEFAULT_PORT,
    pack_array,
    read_frame,
    read_frame_sync,
    send_frame,
    send_frame_sync,
    unpack_array,
)

__all__ = ["ServeClient", "AsyncServeClient"]

#: Default connect timeout: distinct from (and much tighter than) the
#: read timeout — an unreachable host should fail in seconds, while a
#: slow batch may legitimately take the full read timeout.
DEFAULT_CONNECT_TIMEOUT = 5.0


def _check(header: dict) -> dict:
    if header.get("status") != "ok":
        message = header.get("message", "request failed")
        code = header.get("code")
        if code == "deadline_expired":
            # Typed expiry so retry logic never string-matches messages.
            raise DeadlineExpired(message)
        if code == "overloaded":
            raise Overloaded(message, retry_after_ms=header.get("retry_after_ms"))
        if code == "server_unavailable":
            raise ServerUnavailable(message)
        raise ServingError(message)
    return header


def _predict_header(op: str, model, precision, priority, deadline_ms) -> dict:
    """Request header with only the routing fields the caller set.

    Omitted fields are omitted from the wire too — an old server (or a
    new server with an old client) sees exactly the pre-engine frames.
    """
    header = {"op": op}
    if model is not None:
        header["model"] = model
    if precision is not None:
        header["precision"] = str(precision)
    if priority is not None:
        header["priority"] = priority
    if deadline_ms is not None:
        header["deadline_ms"] = deadline_ms
    return header


class _RetryPolicy:
    """Shared retry arithmetic: full-jitter exponential backoff.

    The wait before attempt ``attempt`` (0-based) is uniform in
    ``[0, min(backoff_ms * 2**attempt, backoff_max_ms)]``, floored at
    the server's ``retry_after_ms`` hint when one was offered —
    randomness decorrelates a thundering herd, the floor honors the
    server's own drain estimate.
    """

    def __init__(self, retries: int, backoff_ms: float, backoff_max_ms: float):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_ms < 0 or backoff_max_ms < backoff_ms:
            raise ValueError(
                f"need 0 <= backoff_ms <= backoff_max_ms, got "
                f"{backoff_ms}/{backoff_max_ms}"
            )
        self.retries = retries
        self.backoff_ms = backoff_ms
        self.backoff_max_ms = backoff_max_ms

    def delay_s(self, attempt: int, retry_after_ms: float | None) -> float:
        ceiling = min(self.backoff_ms * (2 ** attempt), self.backoff_max_ms)
        delay_ms = random.uniform(0.0, ceiling)
        if retry_after_ms is not None:
            delay_ms = max(delay_ms, float(retry_after_ms))
        return delay_ms / 1e3


class ServeClient:
    """Blocking client: one TCP connection, sequential requests.

    Parameters
    ----------
    host, port:
        Server address; the constructor connects immediately (an
        unreachable server raises
        :class:`~repro.exceptions.ServerUnavailable`).
    timeout:
        Read timeout per response, seconds.
    connect_timeout:
        Timeout for establishing the TCP connection (also used by retry
        reconnects).
    max_payload:
        Inbound frame payload bound.
    retries:
        Retry budget per request for *transient* failures (shed
        requests, dropped connections, timeouts).  ``0`` disables
        retrying.
    backoff_ms, backoff_max_ms:
        Jittered exponential backoff range between attempts; an
        ``Overloaded`` response's ``retry_after_ms`` raises the floor.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        retries: int = 2,
        backoff_ms: float = 25.0,
        backoff_max_ms: float = 2000.0,
    ):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._connect_timeout = connect_timeout
        self._max_payload = max_payload
        self._policy = _RetryPolicy(retries, backoff_ms, backoff_max_ms)
        self._sock: socket.socket | None = None
        self._connect()

    def _connect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except Exception:
                pass
            self._sock = None
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._connect_timeout
            )
        except OSError as exc:
            raise ServerUnavailable(
                f"cannot connect to {self._host}:{self._port}: {exc}"
            ) from exc
        sock.settimeout(self._timeout)
        self._sock = sock

    def _once(self, header: dict, payload) -> tuple[dict, bytes]:
        if self._sock is None:
            self._connect()
        try:
            send_frame_sync(self._sock, header, payload)
            response, out = read_frame_sync(self._sock, self._max_payload)
        except socket.timeout as exc:
            raise ServerUnavailable(
                f"no response within {self._timeout}s"
            ) from exc
        except OSError as exc:
            raise ServerUnavailable(f"connection failed: {exc}") from exc
        return _check(response), out

    def _request(self, header: dict, payload=b"") -> tuple[dict, bytes]:
        # One id for every attempt of this logical request: a server
        # that deduplicates can treat the replay as the same request.
        header.setdefault("request_id", uuid.uuid4().hex)
        attempt = 0
        while True:
            try:
                return self._once(header, payload)
            except Overloaded as exc:
                # Connection is intact (the server answered); back off
                # at least as long as it asked, then resend.
                if attempt >= self._policy.retries:
                    raise
                time.sleep(self._policy.delay_s(attempt, exc.retry_after_ms))
            except ServerUnavailable:
                # The stream may be desynchronized (or dead): retries
                # must replay on a fresh connection.
                if attempt >= self._policy.retries:
                    raise
                time.sleep(self._policy.delay_s(attempt, None))
                try:
                    self._connect()
                except ServerUnavailable:
                    pass  # still down; next attempt reconnects again
            attempt += 1

    def ping(self) -> bool:
        self._request({"op": "ping"})
        return True

    def info(self) -> dict:
        header, _ = self._request({"op": "info"})
        return header

    def drain(self) -> dict:
        """Ask the server to drain and shut down gracefully."""
        header, _ = self._request({"op": "drain"})
        return header

    def predict_proba(
        self,
        rows: np.ndarray,
        model: str | None = None,
        precision=None,
        priority=None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        _, payload = self._request(
            _predict_header("predict_proba", model, precision, priority,
                            deadline_ms),
            pack_array(np.asarray(rows)),
        )
        return unpack_array(payload)

    def predict(
        self,
        rows: np.ndarray,
        model: str | None = None,
        precision=None,
        priority=None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        _, payload = self._request(
            _predict_header("predict", model, precision, priority,
                            deadline_ms),
            pack_array(np.asarray(rows)),
        )
        return unpack_array(payload)

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except Exception:
            pass
        self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncServeClient:
    """asyncio client: construct with :meth:`connect`.

    Retry semantics mirror :class:`ServeClient`.  A client built
    directly from ``(reader, writer)`` has no address to reconnect to,
    so transport failures are raised immediately (shed requests still
    retry on the intact connection).
    """

    def __init__(
        self,
        reader,
        writer,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        timeout: float = 60.0,
        retries: int = 2,
        backoff_ms: float = 25.0,
        backoff_max_ms: float = 2000.0,
    ):
        self._reader = reader
        self._writer = writer
        self._max_payload = max_payload
        self._timeout = timeout
        self._policy = _RetryPolicy(retries, backoff_ms, backoff_max_ms)
        self._host: str | None = None
        self._port: int | None = None
        self._connect_timeout = DEFAULT_CONNECT_TIMEOUT

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        timeout: float = 60.0,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        retries: int = 2,
        backoff_ms: float = 25.0,
        backoff_max_ms: float = 2000.0,
    ) -> "AsyncServeClient":
        reader, writer = await cls._open(host, port, connect_timeout)
        client = cls(
            reader,
            writer,
            max_payload=max_payload,
            timeout=timeout,
            retries=retries,
            backoff_ms=backoff_ms,
            backoff_max_ms=backoff_max_ms,
        )
        client._host = host
        client._port = port
        client._connect_timeout = connect_timeout
        return client

    @staticmethod
    async def _open(host: str, port: int, connect_timeout: float):
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(host, port), connect_timeout
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServerUnavailable(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc

    async def _reconnect(self) -> None:
        try:
            self._writer.close()
        except Exception:
            pass
        self._reader, self._writer = await self._open(
            self._host, self._port, self._connect_timeout
        )

    async def _once(self, header: dict, payload) -> tuple[dict, bytes]:
        try:
            await send_frame(self._writer, header, payload)
            response, out = await asyncio.wait_for(
                read_frame(self._reader, self._max_payload), self._timeout
            )
        except asyncio.TimeoutError as exc:
            raise ServerUnavailable(
                f"no response within {self._timeout}s"
            ) from exc
        except asyncio.IncompleteReadError as exc:
            raise ServerUnavailable("connection closed mid-frame") from exc
        except (ConnectionError, OSError) as exc:
            raise ServerUnavailable(f"connection failed: {exc}") from exc
        return _check(response), out

    async def _request(self, header: dict, payload=b"") -> tuple[dict, bytes]:
        header.setdefault("request_id", uuid.uuid4().hex)
        attempt = 0
        while True:
            try:
                return await self._once(header, payload)
            except Overloaded as exc:
                if attempt >= self._policy.retries:
                    raise
                await asyncio.sleep(
                    self._policy.delay_s(attempt, exc.retry_after_ms)
                )
            except ServerUnavailable:
                # Without an address there is no reconnecting — and the
                # stream offset may be garbage — so fail immediately.
                if self._host is None or attempt >= self._policy.retries:
                    raise
                await asyncio.sleep(self._policy.delay_s(attempt, None))
                try:
                    await self._reconnect()
                except ServerUnavailable:
                    pass  # still down; next attempt reconnects again
            attempt += 1

    async def ping(self) -> bool:
        await self._request({"op": "ping"})
        return True

    async def info(self) -> dict:
        header, _ = await self._request({"op": "info"})
        return header

    async def drain(self) -> dict:
        """Ask the server to drain and shut down gracefully."""
        header, _ = await self._request({"op": "drain"})
        return header

    async def predict_proba(
        self,
        rows: np.ndarray,
        model: str | None = None,
        precision=None,
        priority=None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        _, payload = await self._request(
            _predict_header("predict_proba", model, precision, priority,
                            deadline_ms),
            pack_array(np.asarray(rows)),
        )
        return unpack_array(payload)

    async def predict(
        self,
        rows: np.ndarray,
        model: str | None = None,
        precision=None,
        priority=None,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        _, payload = await self._request(
            _predict_header("predict", model, precision, priority,
                            deadline_ms),
            pack_array(np.asarray(rows)),
        )
        return unpack_array(payload)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
