"""Admission control primitives for the serving front-end.

A server that accepts every request degrades for *all* clients at
overload: queues grow without bound, every deadline expires, memory
balloons.  Shedding early — with a typed ``overloaded`` error carrying
a ``retry_after_ms`` hint — keeps the requests that *are* admitted fast
and gives the shed clients an honest signal to back off on
(:class:`~repro.exceptions.Overloaded`; the clients in
:mod:`repro.serving.client` turn the hint into their backoff floor).

Two independent mechanisms, both enforced before a request enters a
:class:`~repro.serving.batcher.MicroBatcher`:

* :class:`TokenBucket` — a global requests-per-second limit with burst
  headroom, configured by ``EngineConfig.rate_limit_rps`` /
  ``rate_burst``.  Protects the event loop itself from frame floods.
* :class:`QueueLimits` — bounds on *queued rows* per route, overall and
  per priority class, configured by ``EngineConfig.max_queue_rows`` /
  ``queue_class_caps``.  Protects the inference thread's backlog; class
  caps keep a bulk-priority flood from occupying the whole queue ahead
  of interactive traffic.

Both are pure, synchronous, single-threaded policy objects (the asyncio
server calls them from the event loop only) with injectable clocks, so
tests exercise them without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping

__all__ = ["TokenBucket", "QueueLimits"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``try_acquire`` spends one token when available and returns ``0.0``;
    otherwise it returns the seconds until a token accrues (the
    ``retry_after`` hint), spending nothing.  Time comes from ``clock``
    (default :func:`time.monotonic`) so tests can drive it by hand.
    """

    def __init__(
        self,
        rate: float,
        burst: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst is None:
            burst = max(1, int(rate))
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; else seconds until they accrue."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (refilled to now)."""
        self._refill()
        return self._tokens

    def __repr__(self) -> str:
        return f"TokenBucket(rate={self.rate}, burst={self.burst})"


class QueueLimits:
    """Row-count bounds a :class:`MicroBatcher` enforces at ``submit``.

    ``max_rows`` caps the route's total backlog (queued plus running
    rows); ``class_caps`` maps a priority *level* (the integer requests
    carry on the wire) to that class's own smaller cap.  A request is
    shed when admitting its rows would exceed either bound.

    Streams are the third bounded resource: unlike a request, an open
    stream *holds* memory between calls (its per-layer activation
    history), so ``max_streams`` caps how many may be open at once and
    ``max_stream_state_bytes`` caps their total resident history.  Both
    are enforced at ``stream_open`` via :meth:`admits_stream` — the one
    moment the full cost of a stream is known, because a plan's
    per-stream state size is fixed before any data arrives.
    """

    def __init__(
        self,
        max_rows: int,
        class_caps: Mapping[int, int] | None = None,
        max_streams: int = 64,
        max_stream_state_bytes: int | None = None,
    ):
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        caps = dict(class_caps or {})
        for level, cap in caps.items():
            if cap < 1:
                raise ValueError(
                    f"class cap for level {level} must be >= 1, got {cap}"
                )
        if max_streams < 1:
            raise ValueError(f"max_streams must be >= 1, got {max_streams}")
        if max_stream_state_bytes is not None and max_stream_state_bytes < 1:
            raise ValueError(
                f"max_stream_state_bytes must be >= 1 or None, "
                f"got {max_stream_state_bytes}"
            )
        self.max_rows = int(max_rows)
        self.class_caps = caps
        self.max_streams = int(max_streams)
        self.max_stream_state_bytes = max_stream_state_bytes

    @classmethod
    def from_config(cls, config) -> "QueueLimits":
        """Build from an ``EngineConfig`` (class names -> levels)."""
        caps = {
            config.resolve_priority(name): cap
            for name, cap in config.queue_class_caps.items()
        }
        return cls(
            config.max_queue_rows,
            caps,
            max_streams=getattr(config, "max_streams", 64),
            max_stream_state_bytes=getattr(
                config, "max_stream_state_bytes", None
            ),
        )

    def admits(
        self, rows: int, level: int, queued: int, queued_at_level: int
    ) -> bool:
        """Would ``rows`` more rows at ``level`` stay within bounds?"""
        if queued + rows > self.max_rows:
            return False
        cap = self.class_caps.get(level)
        return cap is None or queued_at_level + rows <= cap

    def admits_stream(
        self, open_streams: int, open_bytes: int, new_bytes: int
    ) -> bool:
        """Would one more stream holding ``new_bytes`` stay in budget?"""
        if open_streams + 1 > self.max_streams:
            return False
        return (
            self.max_stream_state_bytes is None
            or open_bytes + new_bytes <= self.max_stream_state_bytes
        )

    def __repr__(self) -> str:
        return (
            f"QueueLimits(max_rows={self.max_rows}, "
            f"class_caps={self.class_caps}, "
            f"max_streams={self.max_streams})"
        )
