"""Micro-batch aggregation for the asyncio serving front-end.

Concurrent clients each send small row batches; running every request
through the session alone wastes the engine's batch efficiency (the
frequency-domain GEMMs amortize the per-call FFT and dispatch cost over
rows).  :class:`MicroBatcher` closes the gap: requests accumulate until
either ``max_batch`` rows are pending or the oldest request has waited
``max_wait_ms``, then the whole group runs as one concatenated batch
and each caller gets back exactly its own rows.

The batcher is single-loop asyncio code: ``submit`` must be awaited on
the event loop, flushing happens via ``call_later``, and the actual
inference runs either inline (``executor=None``; simple and
deterministic for tests) or on a caller-supplied
:class:`concurrent.futures.Executor` — the server passes a
single-thread pool, which keeps the event loop responsive *and*
serializes access to the (single-threaded) inference session and its
shared-memory transport.

Row-wise parity: every plan op is row-independent, so the rows a
request gets back from a fused batch are the same rows a dedicated
batch would produce; the e2e guarantee (server == serial executor,
bitwise at fp64) is asserted by the serving tests.
"""

from __future__ import annotations

import asyncio
from typing import Callable

import numpy as np

from ..exceptions import ServingError

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Aggregate row batches and run them through ``runner`` together.

    Parameters
    ----------
    runner:
        ``(rows, features...) -> (rows, outputs...)`` callable; must be
        row-wise aligned with its input (row ``i`` of the output belongs
        to row ``i`` of the input).
    max_batch:
        Flush as soon as this many rows are pending.
    max_wait_ms:
        Flush this many milliseconds after the first pending request
        arrived, even if the batch is not full — bounds the latency a
        lone request pays for batching.
    executor:
        Where ``runner`` runs: ``None`` executes inline on the event
        loop (fine for tests and tiny models); otherwise a
        :class:`concurrent.futures.Executor` (the server uses a
        single-thread pool).
    """

    def __init__(
        self,
        runner: Callable[[np.ndarray], np.ndarray],
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        executor=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self._runner = runner
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self._executor = executor
        self._pending: list[tuple[np.ndarray, asyncio.Future]] = []
        self._pending_rows = 0
        self._timer: asyncio.TimerHandle | None = None
        self._tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closed = False
        self.stats = {"requests": 0, "batches": 0, "rows": 0, "max_batch_rows": 0}

    async def submit(self, rows: np.ndarray) -> np.ndarray:
        """Queue ``rows`` and return their outputs once their batch ran."""
        if self._closed:
            raise ServingError("batcher is closed")
        if rows.ndim < 1 or rows.shape[0] < 1:
            raise ServingError(f"expected at least one row, got shape {rows.shape}")
        loop = asyncio.get_running_loop()
        self._loop = loop
        future: asyncio.Future = loop.create_future()
        self._pending.append((rows, future))
        self._pending_rows += rows.shape[0]
        self.stats["requests"] += 1
        if self._pending_rows >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_wait_ms / 1000.0, self._flush)
        return await future

    def _flush(self) -> None:
        """Move the pending group into a running batch task."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        group, self._pending, self._pending_rows = self._pending, [], 0
        task = self._loop.create_task(self._run_group(group))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_group(
        self, group: list[tuple[np.ndarray, asyncio.Future]]
    ) -> None:
        # Fuse only compatible requests: concatenating mixed dtypes
        # would silently upcast one client's rows (different results
        # than a dedicated batch), and mixed widths would fail the whole
        # group.  Requests that landed in the same flush window but
        # differ run as their own fused batch.
        buckets: dict = {}
        for rows, future in group:
            key = (str(rows.dtype), rows.shape[1:])
            buckets.setdefault(key, []).append((rows, future))
        for bucket in buckets.values():
            await self._run_bucket(bucket)

    async def _run_bucket(
        self, bucket: list[tuple[np.ndarray, asyncio.Future]]
    ) -> None:
        try:
            if len(bucket) == 1:
                batch = bucket[0][0]
            else:
                batch = np.concatenate([rows for rows, _ in bucket], axis=0)
            if self._executor is None:
                outputs = self._runner(batch)
            else:
                outputs = await asyncio.get_running_loop().run_in_executor(
                    self._executor, self._runner, batch
                )
        except Exception as exc:
            for _, future in bucket:
                if not future.done():
                    future.set_exception(
                        ServingError(f"batch inference failed: {exc}")
                    )
            return
        self.stats["batches"] += 1
        self.stats["rows"] += batch.shape[0]
        self.stats["max_batch_rows"] = max(
            self.stats["max_batch_rows"], batch.shape[0]
        )
        start = 0
        for rows, future in bucket:
            stop = start + rows.shape[0]
            if not future.done():
                future.set_result(outputs[start:stop])
            start = stop

    async def drain(self) -> None:
        """Flush the pending group and wait for all running batches."""
        self._flush()
        if self._tasks:
            await asyncio.gather(*tuple(self._tasks), return_exceptions=True)

    async def aclose(self) -> None:
        """Refuse new work, then drain; idempotent."""
        if self._closed:
            return
        self._closed = True
        await self.drain()

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(max_batch={self.max_batch}, "
            f"max_wait_ms={self.max_wait_ms}, pending={self._pending_rows})"
        )
