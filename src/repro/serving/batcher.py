"""Micro-batch aggregation for the asyncio serving front-end.

Concurrent clients each send small row batches; running every request
through the session alone wastes the engine's batch efficiency (the
frequency-domain GEMMs amortize the per-call FFT and dispatch cost over
rows).  :class:`MicroBatcher` closes the gap: requests accumulate until
either ``max_batch`` rows are pending or the oldest request has waited
``max_wait_ms``, then the whole group runs as one concatenated batch
and each caller gets back exactly its own rows.

Requests carry two scheduling fields beyond their rows:

* ``priority`` (higher = more urgent): at flush time the pending group
  is ordered by priority before fusing, so under saturation the
  highest-priority requests land in the earliest fused batches — a
  low-priority bulk scan cannot starve an interactive request that
  arrived in the same window.
* ``deadline_ms``: a request whose deadline has already passed when its
  flush runs gets an error immediately instead of occupying fused-batch
  rows (its caller stopped listening; spending engine time on it only
  delays live requests).  A pending deadline also pulls the flush timer
  earlier than ``max_wait_ms`` would fire, giving tight-deadline
  requests a chance to run in time.

The batcher is single-loop asyncio code: ``submit`` must be awaited on
the event loop, flushing happens via ``call_later``, and the actual
inference runs either inline (``executor=None``; simple and
deterministic for tests) or on a caller-supplied
:class:`concurrent.futures.Executor` — the server passes a
single-thread pool, which keeps the event loop responsive *and*
serializes access to the (single-threaded) inference session and its
shared-memory transport.

Admission control: with ``limits``
(:class:`~repro.serving.resilience.QueueLimits`), ``submit`` counts the
route's *in-flight* rows — queued plus running, released only when a
request's future resolves — and sheds with
:class:`~repro.exceptions.Overloaded` when admitting a request would
exceed the route cap or its priority class's cap.  The attached
``retry_after_ms`` estimates when the backlog will have drained, from
an exponential moving average of recent fused-batch latencies.

Row-wise parity: every plan op is row-independent, so the rows a
request gets back from a fused batch are the same rows a dedicated
batch would produce; the e2e guarantee (server == serial executor,
bitwise at fp64) is asserted by the serving tests.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..exceptions import Overloaded, ServingError
from .resilience import QueueLimits

__all__ = ["MicroBatcher", "DeadlineExpired"]


class DeadlineExpired(ServingError):
    """A request's deadline passed before its fused batch ran."""


@dataclass
class _Pending:
    """One queued request: rows plus its scheduling fields.

    ``state`` distinguishes the two kinds of work the batcher fuses:
    ``None`` for a stateless predict (rows concatenate into one batch
    call) and a :class:`~repro.streaming.StreamState` for a stream push
    (rows are that stream's new samples; the group runs as one
    ``push_many`` fused step).  The two kinds share the queue, the
    flush window, priority ordering, and admission limits, but never
    fuse with each other.
    """

    rows: np.ndarray
    future: asyncio.Future
    priority: int = 0
    deadline: float | None = None  # absolute loop time, None = no deadline
    seq: int = 0  # arrival order; tie-break within a priority level
    state: object | None = None  # StreamState for stream pushes

    sort_key = property(lambda self: (-self.priority, self.seq))


class MicroBatcher:
    """Aggregate row batches and run them through ``runner`` together.

    Parameters
    ----------
    runner:
        ``(rows, features...) -> (rows, outputs...)`` callable; must be
        row-wise aligned with its input (row ``i`` of the output belongs
        to row ``i`` of the input).
    max_batch:
        Flush as soon as this many rows are pending.
    max_wait_ms:
        Flush this many milliseconds after the first pending request
        arrived, even if the batch is not full — bounds the latency a
        lone request pays for batching.  A pending request's deadline
        can pull the flush earlier (never later).
    executor:
        Where ``runner`` runs: ``None`` executes inline on the event
        loop (fine for tests and tiny models); otherwise a
        :class:`concurrent.futures.Executor` (the server uses a
        single-thread pool).
    limits:
        Optional :class:`~repro.serving.resilience.QueueLimits`;
        ``submit`` sheds with :class:`~repro.exceptions.Overloaded`
        when admitting the request would exceed them.  ``None`` (the
        default) admits everything, exactly as before.
    stream_runner:
        ``(states, chunks) -> outputs`` callable for fused stream
        pushes (the route's
        :meth:`~repro.streaming.StreamPlan.push_many`); required before
        the first :meth:`submit_stream`.  Stream pushes wait in the
        same pending window as predicts and obey the same limits, but
        flush as their own fused call.
    """

    def __init__(
        self,
        runner: Callable[[np.ndarray], np.ndarray],
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        executor=None,
        limits: QueueLimits | None = None,
        stream_runner: Callable | None = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self._runner = runner
        self._stream_runner = stream_runner
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self._executor = executor
        self.limits = limits
        self._pending: list[_Pending] = []
        self._pending_rows = 0
        self._inflight_rows = 0  # queued + running, until futures resolve
        self._inflight_by_level: dict[int, int] = {}
        self._batch_ms_ema: float | None = None  # recent fused-batch latency
        self._seq = 0
        self._timer: asyncio.TimerHandle | None = None
        self._timer_at: float | None = None
        self._tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closed = False
        self.stats = {
            "requests": 0,
            "batches": 0,
            "rows": 0,
            "max_batch_rows": 0,
            "expired": 0,
            "shed": 0,
            "stream_batches": 0,
            "stream_rows": 0,
            "fused_streams_max": 0,  # most streams fused into one step
        }

    async def submit(
        self,
        rows: np.ndarray,
        priority: int = 0,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        """Queue ``rows`` and return their outputs once their batch ran.

        ``priority`` orders requests within a flush (higher first);
        ``deadline_ms`` is measured from this call — if the deadline has
        passed when the flush runs, the request fails with
        :class:`DeadlineExpired` instead of running.  With
        :attr:`limits` set, a request that would overflow the route's
        row budget (or its priority class's) is shed immediately with
        :class:`~repro.exceptions.Overloaded` instead of queueing.
        """
        return await self._enqueue(rows, priority, deadline_ms, state=None)

    async def submit_stream(
        self,
        state,
        rows: np.ndarray,
        priority: int = 0,
        deadline_ms: float | None = None,
    ) -> np.ndarray:
        """Queue a stream push and return its new output rows.

        ``state`` is the stream's
        :class:`~repro.streaming.StreamState`; ``rows`` are its new
        samples.  Scheduling (flush windows, priority, deadlines) and
        admission limits are exactly :meth:`submit`'s; at flush time
        every pending push in the window runs as *one* fused
        ``stream_runner`` call across all its streams.  A shed or
        deadline-expired push never touches the stream's state — the
        caller may safely resend the same samples.  The caller must not
        submit the same stream concurrently (the server's per-stream
        busy flag and per-connection sequencing enforce this).
        """
        if self._stream_runner is None:
            raise ServingError("batcher has no stream_runner configured")
        return await self._enqueue(rows, priority, deadline_ms, state=state)

    async def _enqueue(
        self,
        rows: np.ndarray,
        priority: int,
        deadline_ms: float | None,
        state,
    ) -> np.ndarray:
        if self._closed:
            raise ServingError("batcher is closed")
        if rows.ndim < 1 or rows.shape[0] < 1:
            raise ServingError(f"expected at least one row, got shape {rows.shape}")
        if deadline_ms is not None and deadline_ms < 0:
            raise ServingError(f"deadline_ms must be >= 0, got {deadline_ms}")
        n_rows = int(rows.shape[0])
        if self.limits is not None and not self.limits.admits(
            n_rows,
            priority,
            self._inflight_rows,
            self._inflight_by_level.get(priority, 0),
        ):
            self.stats["shed"] += 1
            raise Overloaded(
                f"queue full: {self._inflight_rows} rows in flight "
                f"(limit {self.limits.max_rows})",
                retry_after_ms=self.retry_after_ms(),
            )
        loop = asyncio.get_running_loop()
        self._loop = loop
        deadline = (
            None if deadline_ms is None else loop.time() + deadline_ms / 1000.0
        )
        pending = _Pending(
            rows=rows,
            future=loop.create_future(),
            priority=priority,
            deadline=deadline,
            seq=self._seq,
            state=state,
        )
        self._seq += 1
        self._pending.append(pending)
        self._pending_rows += rows.shape[0]
        self._inflight_rows += n_rows
        self._inflight_by_level[priority] = (
            self._inflight_by_level.get(priority, 0) + n_rows
        )
        pending.future.add_done_callback(
            lambda _f, n=n_rows, level=priority: self._release(n, level)
        )
        self.stats["requests"] += 1
        if self._pending_rows >= self.max_batch:
            self._flush()
        else:
            self._schedule_flush(pending)
        return await pending.future

    def _release(self, n_rows: int, level: int) -> None:
        """Return a resolved request's rows to the admission budget."""
        self._inflight_rows = max(0, self._inflight_rows - n_rows)
        left = self._inflight_by_level.get(level, 0) - n_rows
        if left > 0:
            self._inflight_by_level[level] = left
        else:
            self._inflight_by_level.pop(level, None)

    def retry_after_ms(self) -> float:
        """Estimated ms until the current backlog has drained.

        The flush wait plus one average fused-batch latency per
        ``max_batch`` rows in flight.  Before any batch has run the
        estimate is just the flush wait (clamped to at least 1 ms so
        clients always get a positive hint).
        """
        batch_ms = self._batch_ms_ema or 0.0
        backlog = (self._inflight_rows / self.max_batch) * batch_ms
        return max(1.0, self.max_wait_ms + backlog)

    @property
    def batch_ms_ema(self) -> float:
        """Recent fused-batch latency EMA in ms (0.0 before any batch).

        The same number :meth:`retry_after_ms` builds its drain
        estimate from; exposed so capacity observers (the multi-node
        router's placement policy reads it off ``info.health``) can
        weigh a backend's queue depth by how fast it actually drains.
        """
        return self._batch_ms_ema or 0.0

    def queue_depth(self) -> dict:
        """Backlog snapshot for the server's ``info`` health block.

        ``pending_rows`` / ``inflight_rows`` are the queued-row depth
        (pre-flush and admitted-but-unresolved); ``batch_ms_ema`` is
        the fused-batch latency estimate — together they are the
        capacity signal a front-tier router steers by.
        """
        return {
            "pending_rows": self._pending_rows,
            "inflight_rows": self._inflight_rows,
            "by_level": dict(self._inflight_by_level),
            "batch_ms_ema": self.batch_ms_ema,
            "retry_after_ms": self.retry_after_ms(),
        }

    def _schedule_flush(self, newcomer: _Pending) -> None:
        """(Re)arm the flush timer; deadlines pull it earlier.

        The timer fires at the earliest of: first-arrival +
        ``max_wait_ms`` (the classic bound), or halfway to the
        newcomer's deadline — flushing *before* the deadline passes, so
        a tight-deadline request still runs in time instead of arriving
        at its flush already expired.
        """
        loop = self._loop
        fire_at = (
            loop.time() + self.max_wait_ms / 1000.0
            if self._timer is None
            else self._timer_at
        )
        if newcomer.deadline is not None:
            head_start = (newcomer.deadline - loop.time()) / 2.0
            fire_at = min(fire_at, loop.time() + max(0.0, head_start))
        if self._timer is not None:
            if fire_at >= self._timer_at:
                return  # existing timer is already soon enough
            self._timer.cancel()
        self._timer_at = fire_at
        self._timer = loop.call_at(fire_at, self._flush)

    def _flush(self) -> None:
        """Move the pending group into a running batch task."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
            self._timer_at = None
        if not self._pending:
            return
        group, self._pending, self._pending_rows = self._pending, [], 0
        now = self._loop.time()
        # Deadline hygiene: a request already past its deadline gets its
        # error now and never occupies fused-batch rows.
        live = []
        for pending in group:
            if pending.deadline is not None and now >= pending.deadline:
                self.stats["expired"] += 1
                if not pending.future.done():
                    pending.future.set_exception(
                        DeadlineExpired(
                            f"deadline expired {1e3 * (now - pending.deadline):.1f} ms "
                            "before the batch ran"
                        )
                    )
            else:
                live.append(pending)
        if not live:
            return
        # Priority order: higher classes fuse into the earlier batches.
        live.sort(key=lambda p: p.sort_key)
        task = self._loop.create_task(self._run_group(live))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_group(self, group: list[_Pending]) -> None:
        # Fuse only compatible requests: concatenating mixed dtypes
        # would silently upcast one client's rows (different results
        # than a dedicated batch), and mixed widths would fail the whole
        # group.  Requests that landed in the same flush window but
        # differ run as their own fused batch.  Bucket insertion order
        # follows the priority sort, so the bucket containing the
        # highest-priority request runs first.
        # Stream pushes bucket separately from predicts (first key
        # element): their rows are per-stream suffixes fused via
        # push_many, not batch rows fused via concatenation.
        buckets: dict = {}
        for pending in group:
            key = (
                pending.state is not None,
                str(pending.rows.dtype),
                pending.rows.shape[1:],
            )
            buckets.setdefault(key, []).append(pending)
        for key, bucket in buckets.items():
            if key[0]:
                await self._run_stream_bucket(bucket)
            else:
                await self._run_bucket(bucket)

    async def _run_bucket(self, bucket: list[_Pending]) -> None:
        started = time.perf_counter()
        try:
            if len(bucket) == 1:
                batch = bucket[0].rows
            else:
                batch = np.concatenate([p.rows for p in bucket], axis=0)
            if self._executor is None:
                outputs = self._runner(batch)
            else:
                outputs = await asyncio.get_running_loop().run_in_executor(
                    self._executor, self._runner, batch
                )
        except Exception as exc:
            for pending in bucket:
                if not pending.future.done():
                    pending.future.set_exception(
                        ServingError(f"batch inference failed: {exc}")
                    )
            return
        batch_ms = (time.perf_counter() - started) * 1e3
        self._batch_ms_ema = (
            batch_ms
            if self._batch_ms_ema is None
            else 0.8 * self._batch_ms_ema + 0.2 * batch_ms
        )
        self.stats["batches"] += 1
        self.stats["rows"] += batch.shape[0]
        self.stats["max_batch_rows"] = max(
            self.stats["max_batch_rows"], batch.shape[0]
        )
        start = 0
        for pending in bucket:
            stop = start + pending.rows.shape[0]
            if not pending.future.done():
                pending.future.set_result(outputs[start:stop])
            start = stop

    async def _run_stream_bucket(self, bucket: list[_Pending]) -> None:
        """One fused ``push_many`` step over the bucket's streams."""
        started = time.perf_counter()
        states = [pending.state for pending in bucket]
        chunks = [pending.rows for pending in bucket]
        try:
            if self._executor is None:
                outputs = self._stream_runner(states, chunks)
            else:
                outputs = await asyncio.get_running_loop().run_in_executor(
                    self._executor, self._stream_runner, states, chunks
                )
        except Exception as exc:
            for pending in bucket:
                if not pending.future.done():
                    pending.future.set_exception(
                        ServingError(f"stream inference failed: {exc}")
                    )
            return
        batch_ms = (time.perf_counter() - started) * 1e3
        self._batch_ms_ema = (
            batch_ms
            if self._batch_ms_ema is None
            else 0.8 * self._batch_ms_ema + 0.2 * batch_ms
        )
        fused_rows = sum(chunk.shape[0] for chunk in chunks)
        self.stats["batches"] += 1
        self.stats["stream_batches"] += 1
        self.stats["rows"] += fused_rows
        self.stats["stream_rows"] += fused_rows
        self.stats["fused_streams_max"] = max(
            self.stats["fused_streams_max"], len(bucket)
        )
        for pending, out in zip(bucket, outputs):
            if not pending.future.done():
                pending.future.set_result(out)

    async def drain(self) -> None:
        """Flush the pending group and wait for all running batches."""
        self._flush()
        if self._tasks:
            await asyncio.gather(*tuple(self._tasks), return_exceptions=True)

    async def aclose(self) -> None:
        """Refuse new work, then drain; idempotent."""
        if self._closed:
            return
        self._closed = True
        await self.drain()

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(max_batch={self.max_batch}, "
            f"max_wait_ms={self.max_wait_ms}, pending={self._pending_rows})"
        )
