"""Serving front-end: the engine as a many-client network service.

The frozen runtime (:mod:`repro.runtime`) executes one call at a time;
this package gives it a front door:

* :mod:`repro.serving.protocol` — a length-prefixed JSON + ``.npy``
  frame protocol, implemented over both asyncio streams and blocking
  sockets,
* :mod:`repro.serving.batcher` — :class:`MicroBatcher`, aggregating
  concurrent requests into fused batches (flushes at ``max_batch``
  rows or after ``max_wait_ms``),
* :mod:`repro.serving.server` — :class:`InferenceServer`, the asyncio
  TCP server running fused batches through one
  :class:`~repro.runtime.session.InferenceSession` on a dedicated
  inference thread (sharded executors fork their pool before any
  thread starts),
* :mod:`repro.serving.client` — :class:`ServeClient` (blocking) and
  :class:`AsyncServeClient` (asyncio).

Entry points: ``repro serve`` on the command line,
:meth:`repro.embedded.deploy.DeployedModel.serve` from code, or
construct :class:`InferenceServer` directly for an in-process server
(as the tests and benchmarks do).
"""

from .batcher import MicroBatcher
from .client import AsyncServeClient, ServeClient
from .protocol import DEFAULT_PORT
from .server import InferenceServer

__all__ = [
    "AsyncServeClient",
    "DEFAULT_PORT",
    "InferenceServer",
    "MicroBatcher",
    "ServeClient",
]
