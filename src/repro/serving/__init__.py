"""Serving front-end: the engine as a many-client network service.

The frozen runtime (:mod:`repro.runtime`) executes one call at a time;
this package gives it a front door:

* :mod:`repro.serving.protocol` — a length-prefixed JSON + ``.npy``
  frame protocol, implemented over both asyncio streams and blocking
  sockets,
* :mod:`repro.serving.batcher` — :class:`MicroBatcher`, aggregating
  concurrent requests into fused batches (flushes at ``max_batch``
  rows or after ``max_wait_ms``), priority-ordered with deadline
  expiry (:class:`DeadlineExpired`),
* :mod:`repro.serving.server` — :class:`InferenceServer`, the asyncio
  TCP server over a :class:`~repro.engine.Engine`: one batcher per
  (model, precision) route, all fused batches on a dedicated
  inference thread (sharded executors fork their pools before any
  thread starts), responses streamed zero-copy,
* :mod:`repro.serving.resilience` — admission control policy:
  :class:`TokenBucket` (global request-rate limit) and
  :class:`QueueLimits` (per-route and per-priority-class row bounds);
  over-limit requests are shed with the typed
  :class:`~repro.exceptions.Overloaded` error carrying a
  ``retry_after_ms`` hint,
* :mod:`repro.serving.client` — :class:`ServeClient` (blocking) and
  :class:`AsyncServeClient` (asyncio), both with optional per-request
  ``model`` / ``precision`` / ``priority`` / ``deadline_ms`` fields,
  connect/read timeouts, and bounded retry with exponential backoff
  honoring the server's ``retry_after_ms``; their ``stream()`` methods
  return :class:`Stream` / :class:`AsyncStream` handles for stateful
  incremental inference (``stream_open`` / ``stream_push`` /
  ``stream_close`` ops — see ``docs/streaming.md``).

Entry points: ``repro serve`` on the command line,
:meth:`repro.engine.Engine.serve` from code, or construct
:class:`InferenceServer` around an engine directly for an in-process
server (as the tests and benchmarks do).  Fault-tolerance behavior
(error codes, drain, degraded mode) is documented in
``docs/robustness.md``.
"""

from ..exceptions import Overloaded, ServerUnavailable, StreamBroken
from .batcher import DeadlineExpired, MicroBatcher
from .client import AsyncServeClient, AsyncStream, ServeClient, Stream
from .protocol import DEFAULT_PORT
from .resilience import QueueLimits, TokenBucket
from .server import InferenceServer

__all__ = [
    "AsyncServeClient",
    "AsyncStream",
    "DEFAULT_PORT",
    "DeadlineExpired",
    "InferenceServer",
    "MicroBatcher",
    "Overloaded",
    "QueueLimits",
    "ServeClient",
    "ServerUnavailable",
    "Stream",
    "StreamBroken",
    "TokenBucket",
]
