"""Wire protocol for the serving front-end: length-prefixed JSON + npy.

Every message — request or response — is one frame:

.. code-block:: text

    u32 header_len | u32 payload_len | header (JSON, UTF-8) | payload

``header`` is a small JSON object (``{"op": "predict", ...}`` on the
way in, ``{"status": "ok", ...}`` on the way out); ``payload`` is a
single array in ``.npy`` format (:func:`numpy.save` without pickle), or
empty for array-free messages (``ping``, ``info``, errors).  The two
fixed-width lengths are big-endian.

The same framing is implemented twice: once over :mod:`asyncio` streams
(the server and the async client) and once over blocking sockets (the
sync client), so a shell script and an event loop speak the same bytes.
Both sides bound header and payload sizes before allocating.

**Zero-copy responses.**  The send side accepts a payload as either
``bytes`` or a *sequence of buffers*; :func:`pack_array_views` renders
an array as ``[npy header bytes, memoryview of the array's own data]``
so the result buffer streams straight into the socket writer — no
intermediate serialized copy on the response hot path (the wire bytes
are identical to :func:`pack_array`).
"""

from __future__ import annotations

import io
import json
import re
import socket
import struct

import numpy as np

from ..exceptions import ServerUnavailable, ServingError

__all__ = [
    "DEFAULT_PORT",
    "MAX_HEADER_BYTES",
    "DEFAULT_MAX_PAYLOAD",
    "format_banner",
    "parse_banner",
    "pack_array",
    "pack_array_views",
    "unpack_array",
    "encode_frame",
    "frame_chunks",
    "read_frame",
    "send_frame",
    "read_frame_sync",
    "send_frame_sync",
]

#: Default TCP port for ``repro serve`` (no registered meaning; chosen
#: to stay clear of the common development ports).
DEFAULT_PORT = 7341

MAX_HEADER_BYTES = 1 << 20
DEFAULT_MAX_PAYLOAD = 1 << 28  # 256 MiB of activations per request

_LENGTHS = struct.Struct(">II")

#: The ready banner every serving process prints as its *first* stdout
#: line.  Scripts, the CI smoke jobs, and the router's backend spawner
#: all wait on this line, so its shape is a contract: use
#: :func:`format_banner` to emit it and :func:`parse_banner` to match
#: it instead of hand-rolling the regex.
_BANNER = re.compile(r"serving on (\S+):(\d+)\s*$")


def format_banner(host: str, port: int) -> str:
    """The machine-readable ready line: ``serving on host:port``."""
    return f"serving on {host}:{port}"


def parse_banner(line: str) -> tuple[str, int] | None:
    """``(host, port)`` if ``line`` is a ready banner, else ``None``.

    Matches anywhere in the line is *not* allowed — the banner must be
    the whole line (leading/trailing whitespace tolerated), exactly as
    :func:`format_banner` prints it.
    """
    match = _BANNER.match(line.strip())
    if match is None:
        return None
    return match.group(1), int(match.group(2))


def pack_array(arr: np.ndarray) -> bytes:
    """Serialize one array as ``.npy`` bytes (no pickle)."""
    buf = io.BytesIO()
    np.save(buf, np.ascontiguousarray(arr), allow_pickle=False)
    return buf.getvalue()


def pack_array_views(arr: np.ndarray) -> list:
    """``.npy`` bytes as ``[header bytes, zero-copy view of arr's data]``.

    The second element is a :class:`memoryview` over the array's own
    buffer (asserted by the protocol tests via ``np.shares_memory``) —
    writing the two chunks in order produces exactly the bytes of
    :func:`pack_array` without materializing them.  A non-contiguous
    input is compacted first (the one case a copy is unavoidable).
    """
    arr = np.ascontiguousarray(arr)
    buf = io.BytesIO()
    np.lib.format.write_array_header_1_0(
        buf, np.lib.format.header_data_from_array_1_0(arr)
    )
    return [buf.getvalue(), memoryview(arr).cast("B")]


def _payload_nbytes(payload) -> int:
    # memoryview len() counts first-dimension items, not bytes (an
    # uncast float64 view would under-declare the length prefix and
    # desynchronize the stream) — always measure via nbytes.
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return memoryview(payload).nbytes
    return sum(memoryview(chunk).nbytes for chunk in payload)


def unpack_array(data: bytes) -> np.ndarray:
    """Inverse of :func:`pack_array`; rejects pickled payloads."""
    try:
        return np.load(io.BytesIO(data), allow_pickle=False)
    except Exception as exc:
        raise ServingError(f"malformed array payload: {exc}") from exc


def encode_frame(header: dict, payload=b"") -> bytes:
    """One wire frame: lengths, JSON header, raw payload.

    ``payload`` may be bytes or a sequence of buffers (see
    :func:`pack_array_views`); this convenience always materializes —
    the zero-copy path is :func:`send_frame` / :func:`send_frame_sync`,
    which write the chunks without joining them.
    """
    return b"".join(bytes(chunk) for chunk in frame_chunks(header, payload))


def frame_chunks(header: dict, payload=b"") -> list:
    """The frame as an ordered list of buffers, nothing concatenated."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    chunks = [_LENGTHS.pack(len(header_bytes), _payload_nbytes(payload)),
              header_bytes]
    if isinstance(payload, (bytes, bytearray, memoryview)):
        if memoryview(payload).nbytes:
            chunks.append(payload)
    else:
        chunks.extend(payload)
    return chunks


def _decode_lengths(
    raw: bytes, max_payload: int
) -> tuple[int, int]:
    header_len, payload_len = _LENGTHS.unpack(raw)
    if header_len > MAX_HEADER_BYTES:
        raise ServingError(f"header too large: {header_len} bytes")
    if payload_len > max_payload:
        raise ServingError(
            f"payload too large: {payload_len} bytes (limit {max_payload})"
        )
    return header_len, payload_len


def _decode_header(raw: bytes) -> dict:
    try:
        header = json.loads(raw.decode())
    except Exception as exc:
        raise ServingError(f"malformed frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ServingError("frame header must be a JSON object")
    return header


# ----------------------------------------------------------------------
# asyncio streams
# ----------------------------------------------------------------------
async def read_frame(
    reader, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> tuple[dict, bytes]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Raises :class:`asyncio.IncompleteReadError` on clean EOF between
    frames (callers treat that as the peer hanging up).
    """
    header_len, payload_len = _decode_lengths(
        await reader.readexactly(_LENGTHS.size), max_payload
    )
    header = _decode_header(await reader.readexactly(header_len))
    payload = await reader.readexactly(payload_len) if payload_len else b""
    return header, payload


async def send_frame(writer, header: dict, payload=b"") -> None:
    """Write one frame to an :class:`asyncio.StreamWriter` and drain.

    ``payload`` may be bytes or a sequence of buffers; buffer sequences
    (the server's :func:`pack_array_views` responses) are written chunk
    by chunk — the result array's data goes to the transport with no
    intermediate serialized copy.
    """
    for chunk in frame_chunks(header, payload):
        writer.write(chunk)
    await writer.drain()


# ----------------------------------------------------------------------
# blocking sockets (sync client)
# ----------------------------------------------------------------------
def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            # Typed as retryable: the request never completed, so the
            # client's retry loop may replay it on a fresh connection.
            raise ServerUnavailable("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sync(
    sock: socket.socket, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> tuple[dict, bytes]:
    """Read one frame from a blocking socket."""
    header_len, payload_len = _decode_lengths(
        _recv_exactly(sock, _LENGTHS.size), max_payload
    )
    header = _decode_header(_recv_exactly(sock, header_len))
    payload = _recv_exactly(sock, payload_len) if payload_len else b""
    return header, payload


def send_frame_sync(sock: socket.socket, header: dict, payload=b"") -> None:
    """Write one frame to a blocking socket (buffer sequences: no join)."""
    for chunk in frame_chunks(header, payload):
        sock.sendall(chunk)
