"""The asyncio micro-batching inference server.

:class:`InferenceServer` is the front door the ROADMAP asked for: it
turns a frozen :class:`~repro.runtime.session.InferenceSession` into a
many-client TCP service.  Per connection it speaks the length-prefixed
frame protocol of :mod:`repro.serving.protocol`; per request it funnels
the rows through one shared :class:`~repro.serving.batcher.MicroBatcher`
so concurrent clients amortize the engine's per-call cost.

Threading/forking model — the order matters:

1. ``start()`` first warms the session (a
   :class:`~repro.runtime.executors.ShardedExecutor` forks its worker
   pool now, while the process has no threads),
2. then creates the single inference thread that all batches run on
   (keeping the event loop responsive while numpy works, and
   serializing access to the session and its shared-memory transport),
3. only then starts accepting connections.

When the session uses a sharded executor, the server chunks each fused
batch so the executor's batch sharding actually engages (``ceil(rows /
workers)`` per chunk) — results stay bitwise-identical to serial
streaming by the executor's contract.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..exceptions import ServingError
from ..runtime.executors import ShardedExecutor
from .batcher import MicroBatcher
from .protocol import (
    DEFAULT_MAX_PAYLOAD,
    DEFAULT_PORT,
    pack_array,
    read_frame,
    send_frame,
    unpack_array,
)

__all__ = ["InferenceServer"]


class InferenceServer:
    """Serve a frozen session over TCP with micro-batching.

    Parameters
    ----------
    session:
        A bound :class:`~repro.runtime.session.InferenceSession`; the
        server drives it from exactly one thread.  The caller keeps
        ownership (close the session after :meth:`stop`).
    host, port:
        Listen address; ``port=0`` binds an ephemeral port, readable
        from :attr:`port` after :meth:`start`.
    max_batch, max_wait_ms:
        Micro-batching knobs, see
        :class:`~repro.serving.batcher.MicroBatcher`.
    chunk_size:
        Streaming chunk size passed to ``predict_proba``; the default
        ``None`` picks ``ceil(rows / workers)`` for sharded executors
        (engaging pool batch sharding) and one-shot otherwise.
    """

    def __init__(
        self,
        session,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        chunk_size: int | None = None,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
    ):
        self.session = session
        self.host = host
        self.port = port
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.chunk_size = chunk_size
        self.max_payload = max_payload
        self._server: asyncio.AbstractServer | None = None
        self._batcher: MicroBatcher | None = None
        self._infer_thread: ThreadPoolExecutor | None = None
        self.stats = {"connections": 0, "requests": 0, "errors": 0}

    # ------------------------------------------------------------------
    # Inference (runs on the single inference thread)
    # ------------------------------------------------------------------
    def _auto_chunk(self, rows: int) -> int | None:
        if self.chunk_size is not None:
            return self.chunk_size
        executor = self.session.executor
        if isinstance(executor, ShardedExecutor) and executor.workers > 1:
            if rows >= 2 * executor.workers:
                return -(-rows // executor.workers)  # ceil division
        return None

    def _run_batch(self, batch: np.ndarray) -> np.ndarray:
        return self.session.predict_proba(
            batch, batch_size=self._auto_chunk(batch.shape[0])
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "InferenceServer":
        """Warm the session, start the inference thread, bind the port."""
        if self._server is not None:
            raise ServingError("server is already started")
        # Fork the sharded executor's pool BEFORE any thread exists.
        warm = getattr(self.session, "warm_up", None)
        if warm is not None:
            warm()
        self._infer_thread = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-infer"
        )
        self._batcher = MicroBatcher(
            self._run_batch,
            max_batch=self.max_batch,
            max_wait_ms=self.max_wait_ms,
            executor=self._infer_thread,
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled or :meth:`stop`."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Stop accepting, drain in-flight batches, join the thread."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batcher is not None:
            await self._batcher.aclose()
            self._batcher = None
        if self._infer_thread is not None:
            self._infer_thread.shutdown(wait=True)
            self._infer_thread = None

    async def __aenter__(self) -> "InferenceServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self.stats["connections"] += 1
        try:
            while True:
                try:
                    header, payload = await read_frame(
                        reader, max_payload=self.max_payload
                    )
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # peer hung up
                except ServingError as exc:
                    # Malformed or oversized frame: the stream offset is
                    # unrecoverable, so answer once and hang up.
                    self.stats["errors"] += 1
                    try:
                        await send_frame(
                            writer,
                            {"status": "error", "message": str(exc)},
                        )
                    except Exception:
                        pass
                    break
                try:
                    response, out_payload = await self._dispatch(header, payload)
                except ServingError as exc:
                    self.stats["errors"] += 1
                    response, out_payload = (
                        {"status": "error", "message": str(exc)},
                        b"",
                    )
                except Exception as exc:  # never kill the connection loop
                    self.stats["errors"] += 1
                    response, out_payload = (
                        {"status": "error",
                         "message": f"internal error: {exc}"},
                        b"",
                    )
                if "id" in header:
                    response["id"] = header["id"]
                await send_frame(writer, response, out_payload)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(
        self, header: dict, payload: bytes
    ) -> tuple[dict, bytes]:
        op = header.get("op")
        if op == "ping":
            return {"status": "ok", "op": "ping"}, b""
        if op == "info":
            scheduler = getattr(self.session.executor, "scheduler", None)
            info = {
                "status": "ok",
                "op": "info",
                "precision": self.session.precision,
                "ops": self.session.describe(),
                "executor": repr(self.session.executor),
                "max_batch": self.max_batch,
                "max_wait_ms": self.max_wait_ms,
                "stats": dict(self.stats),
                "batcher": dict(self._batcher.stats),
            }
            if scheduler is not None:
                info["scheduler"] = scheduler.describe()
            return info, b""
        if op in ("predict", "predict_proba"):
            if not payload:
                raise ServingError(f"{op} requires an array payload")
            rows = unpack_array(payload)
            if rows.ndim == 1:
                rows = rows[None]
            # Cast once at the front door — the same cast the session
            # applies at its boundary — so requests of any input dtype
            # fuse into one micro-batch bucket with identical results.
            policy = getattr(self.session, "policy", None)
            if policy is not None:
                rows = np.asarray(rows, dtype=policy.real_dtype)
            self.stats["requests"] += 1
            start = time.perf_counter()
            proba = await self._batcher.submit(rows)
            latency_ms = (time.perf_counter() - start) * 1e3
            out = proba.argmax(axis=-1) if op == "predict" else proba
            return (
                {
                    "status": "ok",
                    "op": op,
                    "rows": int(rows.shape[0]),
                    "latency_ms": latency_ms,
                },
                pack_array(out),
            )
        raise ServingError(f"unknown op {op!r}")

    def __repr__(self) -> str:
        return (
            f"InferenceServer({self.host}:{self.port}, "
            f"max_batch={self.max_batch}, max_wait_ms={self.max_wait_ms})"
        )
