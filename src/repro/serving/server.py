"""The asyncio micro-batching inference server.

:class:`InferenceServer` is the front door of a
:class:`~repro.engine.Engine`: every model in the engine's registry, at
every pooled precision, served from one TCP port.  Per connection it
speaks the length-prefixed frame protocol of
:mod:`repro.serving.protocol`; per request it reads the optional
routing fields (``model``, ``precision``, ``priority``,
``deadline_ms`` — all backward compatible: a frame without them gets
the engine's defaults and today's behavior) and funnels the rows
through the route's :class:`~repro.serving.batcher.MicroBatcher`, so
concurrent clients of the same (model, precision) pair amortize the
engine's per-call cost while requests for different routes never fuse.

Threading/forking model — the order matters:

1. ``start()`` first warms the engine's full session grid when the
   config asks for a sharded executor (the fork pools must be created
   while the process has no threads); with a serial executor sessions
   keep freezing lazily, on the inference thread, as routes are first
   requested,
2. then creates the single inference thread that all batches of all
   routes run on (keeping the event loop responsive while numpy works,
   and serializing access to the sessions and their shared-memory
   transports),
3. only then starts accepting connections.

Responses stream zero-copy: the result array's buffer goes to the
socket writer as a :func:`~repro.serving.protocol.pack_array_views`
chunk list, never re-serialized to intermediate bytes.

Constructing the server with a bare
:class:`~repro.runtime.session.InferenceSession` (the pre-engine
signature) still works but is deprecated — it wraps the session via
:meth:`~repro.engine.Engine.from_session`; the caller keeps session
ownership exactly as before.
"""

from __future__ import annotations

import asyncio
import time
import warnings
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..exceptions import (
    ConfigurationError,
    DeploymentError,
    Overloaded,
    ServerUnavailable,
    ServingError,
)
from ..runtime.executors import ShardedExecutor, ThreadedExecutor
from ..testing import faults
from .batcher import DeadlineExpired, MicroBatcher
from .protocol import (
    DEFAULT_PORT,
    pack_array_views,
    read_frame,
    send_frame,
    unpack_array,
)
from .resilience import QueueLimits, TokenBucket

__all__ = ["InferenceServer"]


class InferenceServer:
    """Serve an engine's model registry over TCP with micro-batching.

    Parameters
    ----------
    engine:
        A :class:`~repro.engine.Engine`; the server drives its pooled
        sessions from exactly one thread and routes each request by its
        header fields.  The caller keeps ownership (close the engine
        after :meth:`stop`).  Passing a bare
        :class:`~repro.runtime.session.InferenceSession` is deprecated
        (it is wrapped via :meth:`~repro.engine.Engine.from_session`).
    host, port:
        Listen address; ``port=0`` binds an ephemeral port, readable
        from :attr:`port` after :meth:`start`.
    max_batch, max_wait_ms:
        Micro-batching knobs (``None`` = the engine config's values);
        see :class:`~repro.serving.batcher.MicroBatcher`.
    chunk_size:
        Streaming chunk size passed to ``predict_proba``; the default
        ``None`` picks ``ceil(rows / workers)`` for sharded executors
        (engaging pool batch sharding) and one-shot otherwise.
    max_payload:
        Per-frame payload bound (``None`` = the engine config's value).
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        max_batch: int | None = None,
        max_wait_ms: float | None = None,
        chunk_size: int | None = None,
        max_payload: int | None = None,
    ):
        from ..engine import Engine

        if not isinstance(engine, Engine):
            warnings.warn(
                "InferenceServer(session) is deprecated; build an "
                "Engine (repro.engine.Engine.from_session(session) or "
                "Engine(model=...)) and pass that instead",
                DeprecationWarning,
                stacklevel=2,
            )
            engine = Engine.from_session(engine)
        self.engine = engine
        config = engine.config
        self.host = host
        self.port = port
        self.max_batch = config.max_batch if max_batch is None else max_batch
        self.max_wait_ms = (
            config.max_wait_ms if max_wait_ms is None else max_wait_ms
        )
        self.chunk_size = chunk_size
        self.max_payload = (
            config.max_payload if max_payload is None else max_payload
        )
        self._server: asyncio.AbstractServer | None = None
        self._batchers: dict[tuple[str, str], MicroBatcher] = {}
        self._route_sessions: dict[tuple[str, str], object] = {}
        self._infer_thread: ThreadPoolExecutor | None = None
        self._limits = QueueLimits.from_config(config)
        self._bucket = (
            None
            if config.rate_limit_rps is None
            else TokenBucket(config.rate_limit_rps, config.rate_burst)
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._draining = False
        self._drain_task: asyncio.Task | None = None
        self._inflight = 0  # requests read but not yet fully responded
        # Stream accounting, aggregated over every connection's registry
        # (the registries themselves are per-connection, so an abrupt
        # disconnect frees its streams by construction — these totals
        # are decremented in the connection's cleanup path).
        self._stream_seq = 0
        self._streams_open = 0
        self._stream_state_bytes = 0
        self._stream_pushes = 0  # monotonic; feeds the pushes/s rate
        self._push_mark: tuple[float, int] = (time.monotonic(), 0)
        self._push_rate = 0.0
        self.stats = {
            "connections": 0,
            "requests": 0,
            "errors": 0,
            "expired": 0,
            "shed": 0,
            "rate_limited": 0,
            "disconnects": 0,
            "stream_opens": 0,
            "stream_pushes": 0,
            "stream_rows": 0,
            "stream_closes": 0,
        }

    # ------------------------------------------------------------------
    # Inference (runs on the single inference thread)
    # ------------------------------------------------------------------
    def _auto_chunk(self, session, rows: int) -> int | None:
        if self.chunk_size is not None:
            return self.chunk_size
        executor = session.executor
        if (
            isinstance(executor, (ShardedExecutor, ThreadedExecutor))
            and executor.workers > 1
        ):
            if rows >= 2 * executor.workers:
                return -(-rows // executor.workers)  # ceil division
        return None

    def _batcher_for(self, model: str, precision: str) -> MicroBatcher:
        """The route's batcher, created on first use.

        One batcher per (model, precision) pair: requests for different
        routes must never fuse (they run different plans), but they all
        share the single inference thread, so the sessions still see
        one caller at a time.
        """
        key = (model, precision)
        batcher = self._batchers.get(key)
        if batcher is None:

            def run_batch(batch: np.ndarray) -> np.ndarray:
                session = self.engine.session(model, precision)
                return session.predict_proba(
                    batch, batch_size=self._auto_chunk(session, batch.shape[0])
                )

            def run_streams(states, chunks):
                # The plan is pooled by the engine; resolving it here
                # (on the inference thread) keeps non-streamable routes
                # from ever paying for — or failing on — stream
                # compilation.  proba=True mirrors predict_proba.
                plan = self.engine.stream_plan(model, precision)
                return plan.push_many(states, chunks, proba=True)

            batcher = MicroBatcher(
                run_batch,
                max_batch=self.max_batch,
                max_wait_ms=self.max_wait_ms,
                executor=self._infer_thread,
                limits=self._limits,
                stream_runner=run_streams,
            )
            self._batchers[key] = batcher
        return batcher

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "InferenceServer":
        """Warm the engine, start the inference thread, bind the port."""
        if self._server is not None:
            raise ServingError("server is already started")
        from ..runtime.session import InferenceSession

        # Fail fast on unloadable model sources (bad artifact paths)
        # before any thread, port, or ready banner exists.
        self.engine.load_sources()
        if self.engine.config.resolve_executor() == "sharded" or any(
            isinstance(source, InferenceSession)
            for source in self.engine.config.models.values()
        ):
            # Fork every route's pool BEFORE any thread exists — lazy
            # freezing on the inference thread would fork with threads
            # running (inherited-lock hazard).  Adopted sessions may
            # carry a sharded executor the config doesn't know about,
            # so they warm here too.
            self.engine.warm_up()
        self._infer_thread = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-infer"
        )
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def draining(self) -> bool:
        """True once a drain has begun (new work is being refused)."""
        return self._draining

    def begin_drain(self) -> None:
        """Start a graceful drain; safe to call from a signal handler.

        Flips the server into draining mode — new predict requests are
        refused with a typed ``server_unavailable`` error — and
        schedules :meth:`_drain`, which waits for every in-flight
        request to be answered (responses flushed to their sockets,
        bitwise intact), drains the batchers, and then closes the
        listener so :meth:`serve_forever` returns.  Idempotent.
        """
        if self._draining or self._loop is None:
            return
        self._draining = True
        self._drain_task = self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        # Flush inside the wait loop: a request sitting in a batcher's
        # pending window would otherwise hold drain hostage for the
        # full max_wait_ms timer.  Draining mode blocks new admissions,
        # so the loop strictly empties.
        while self._inflight > 0:
            for batcher in tuple(self._batchers.values()):
                await batcher.drain()
            await asyncio.sleep(0.005)
        for batcher in tuple(self._batchers.values()):
            await batcher.drain()
        if self._server is not None:
            self._server.close()

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled or :meth:`stop`."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Stop accepting, drain in-flight batches, join the thread."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        batchers, self._batchers = self._batchers, {}
        self._route_sessions = {}
        for batcher in batchers.values():
            await batcher.aclose()
        if self._infer_thread is not None:
            self._infer_thread.shutdown(wait=True)
            self._infer_thread = None

    async def __aenter__(self) -> "InferenceServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self.stats["connections"] += 1
        # The connection's stream registry: handle -> entry.  Scoping it
        # to the connection makes the zero-leak guarantee structural —
        # when this coroutine exits (clean close, abrupt disconnect, a
        # cut cable), the registry dies with it and the cleanup below
        # returns every stream's bytes to the server totals.
        streams: dict[str, dict] = {}
        try:
            while True:
                try:
                    header, payload = await read_frame(
                        reader, max_payload=self.max_payload
                    )
                except asyncio.IncompleteReadError as exc:
                    if exc.partial:
                        # Died mid-frame (a killed client, a cut cable):
                        # this connection is unrecoverable, every other
                        # connection is unaffected.
                        self.stats["disconnects"] += 1
                    break  # clean EOF between frames: peer hung up
                except ConnectionError:
                    self.stats["disconnects"] += 1
                    break
                except ServingError as exc:
                    # Malformed or oversized frame: the stream offset is
                    # unrecoverable, so answer once and hang up.
                    self.stats["errors"] += 1
                    try:
                        await send_frame(
                            writer,
                            {"status": "error", "message": str(exc)},
                        )
                    except Exception:
                        pass
                    break
                if faults.enabled and payload:
                    corrupt = faults.take("server.corrupt_payload")
                    if corrupt is not None:
                        head = bytes(payload[:8])
                        payload = (
                            bytes(b ^ 0xFF for b in head) + payload[8:]
                        )
                self._inflight += 1
                try:
                    try:
                        response, out_payload = await self._dispatch(
                            header, payload, streams
                        )
                    except Overloaded as exc:
                        # Shed, not failed: the client must back off and
                        # retry, so the frame carries the typed code and
                        # the server's retry hint.
                        self.stats["shed"] += 1
                        response = {
                            "status": "error",
                            "code": "overloaded",
                            "message": str(exc),
                        }
                        if exc.retry_after_ms is not None:
                            response["retry_after_ms"] = float(
                                exc.retry_after_ms
                            )
                        out_payload = b""
                    except ServerUnavailable as exc:
                        self.stats["errors"] += 1
                        response = {
                            "status": "error",
                            "code": "server_unavailable",
                            "message": str(exc),
                        }
                        out_payload = b""
                    except (ServingError, ConfigurationError) as exc:
                        self.stats["errors"] += 1
                        response = {"status": "error", "message": str(exc)}
                        if isinstance(exc, DeadlineExpired):
                            # Machine-readable: retry loops must be able
                            # to tell expiry from real inference failure
                            # without string-matching the message.
                            response["code"] = "deadline_expired"
                        out_payload = b""
                    except Exception as exc:  # never kill the connection loop
                        self.stats["errors"] += 1
                        response, out_payload = (
                            {"status": "error",
                             "message": f"internal error: {exc}"},
                            b"",
                        )
                    if "id" in header:
                        response["id"] = header["id"]
                    if faults.enabled:
                        delay = faults.take(
                            "server.delay_response", seconds=0.05
                        )
                        if delay is not None:
                            await asyncio.sleep(float(delay["seconds"]))
                        if faults.take("server.drop_connection") is not None:
                            break  # hang up instead of responding
                    try:
                        await send_frame(writer, response, out_payload)
                    except (ConnectionError, asyncio.IncompleteReadError):
                        # Peer vanished while we wrote its response;
                        # close this connection, touch nothing else.
                        self.stats["disconnects"] += 1
                        break
                finally:
                    self._inflight -= 1
        finally:
            for entry in streams.values():
                self._free_stream(entry)
            streams.clear()
            writer.close()
            try:
                await writer.wait_closed()
            except BaseException:
                # Includes CancelledError: the loop may tear this task
                # down while it drains the close — the socket is closed
                # either way, and there is nothing after this line.
                pass

    def _resolve_route(self, header: dict) -> tuple[str, str, int]:
        """Header routing fields -> (model, precision, priority level).

        Every field is optional; a pre-engine frame (none of them set)
        resolves to the engine's defaults.  Unknown values raise
        :class:`~repro.exceptions.ConfigurationError`, which the
        connection loop answers as an error frame without dropping the
        connection.
        """
        config = self.engine.config
        return (
            config.resolve_model(header.get("model")),
            config.resolve_precision(header.get("precision")),
            config.resolve_priority(header.get("priority")),
        )

    def _free_stream(self, entry: dict) -> None:
        """Return one stream's budget to the server totals."""
        self._streams_open -= 1
        self._stream_state_bytes -= entry["plan"].state_bytes

    def _stream_push_rate(self) -> float:
        """Pushes/second since the last ``info`` call (lazy rate).

        Computed from the monotonic push counter between observations,
        so the hot path pays one integer increment per push and the
        rate costs nothing until someone asks.
        """
        now = time.monotonic()
        mark_t, mark_n = self._push_mark
        dt = now - mark_t
        if dt >= 0.05:
            self._push_rate = (self._stream_pushes - mark_n) / dt
            self._push_mark = (now, self._stream_pushes)
        return self._push_rate

    def _check_deadline(self, deadline_ms) -> None:
        if deadline_ms is not None and (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
            or deadline_ms < 0
        ):
            # Type-check before comparing: a JSON string here must
            # be a clean protocol error, not an "internal error".
            raise ServingError(
                f"deadline_ms must be a non-negative number, "
                f"got {deadline_ms!r}"
            )

    async def _dispatch(
        self, header: dict, payload: bytes, streams: dict | None = None
    ) -> tuple[dict, object]:
        op = header.get("op")
        streams = {} if streams is None else streams
        if op == "ping":
            return {"status": "ok", "op": "ping"}, b""
        if op == "drain":
            # Graceful shutdown over the wire: in-flight requests are
            # answered, then the listener closes and the process exits.
            self.begin_drain()
            return {"status": "ok", "op": "drain", "draining": True}, b""
        if op == "info":
            engine_health = self.engine.health()
            info = {
                "status": "ok",
                "op": "info",
                "engine": self.engine.describe(),
                "models": sorted(self.engine.config.models),
                "precisions": list(self.engine.config.precisions),
                "precision": self.engine.config.precision,
                "max_batch": self.max_batch,
                "max_wait_ms": self.max_wait_ms,
                "stats": dict(self.stats),
                "batchers": {
                    f"{model}/{precision}": dict(batcher.stats)
                    for (model, precision), batcher in self._batchers.items()
                },
                "routes": self.engine.describe_routes(),
                "executor": self.engine.executor_info(),
                "health": {
                    "draining": self._draining,
                    "degraded": engine_health["degraded"],
                    "executors": engine_health["executors"],
                    "pool": engine_health["pool"],
                    "inflight_requests": self._inflight,
                    "queues": {
                        f"{model}/{precision}": batcher.queue_depth()
                        for (model, precision), batcher
                        in self._batchers.items()
                    },
                    # Aggregates a router can read without walking the
                    # per-route queue map: total admitted-but-unresolved
                    # rows and the slowest route's fused-batch latency.
                    "queued_rows": sum(
                        b.queue_depth()["inflight_rows"]
                        for b in self._batchers.values()
                    ),
                    "batch_ms_ema": max(
                        (b.batch_ms_ema for b in self._batchers.values()),
                        default=0.0,
                    ),
                    "max_queue_rows": self._limits.max_rows,
                    "shed": self.stats["shed"],
                    "rate_limited": self.stats["rate_limited"],
                    # The streaming posture: how many conversations are
                    # resident, how much history they hold, and how hot
                    # the push path is.  A router aggregates this block
                    # across its fleet.
                    "streams": {
                        "open": self._streams_open,
                        "state_bytes": self._stream_state_bytes,
                        "max_streams": self._limits.max_streams,
                        "max_state_bytes": (
                            self._limits.max_stream_state_bytes
                        ),
                        "opened": self.stats["stream_opens"],
                        "closed": self.stats["stream_closes"],
                        "pushes": self.stats["stream_pushes"],
                        "pushed_rows": self.stats["stream_rows"],
                        "pushes_per_s": self._stream_push_rate(),
                    },
                },
            }
            return info, b""
        if op == "stream_open":
            if self._draining:
                raise ServerUnavailable(
                    "server is draining and accepts no new streams"
                )
            model, precision, priority = self._resolve_route(header)
            if not self._limits.admits_stream(
                self._streams_open, self._stream_state_bytes, 0
            ):
                raise Overloaded(
                    f"stream capacity exhausted: {self._streams_open} "
                    f"streams open (limit {self._limits.max_streams})"
                )
            # Plan compilation happens on the inference thread (like
            # session freezing); a non-streamable model answers with a
            # typed error frame, the connection stays up.
            try:
                plan = await asyncio.get_running_loop().run_in_executor(
                    self._infer_thread,
                    self.engine.stream_plan,
                    model,
                    precision,
                )
            except DeploymentError as exc:
                raise ServingError(str(exc)) from exc
            if not self._limits.admits_stream(
                self._streams_open, self._stream_state_bytes, plan.state_bytes
            ):
                raise Overloaded(
                    f"stream state budget exhausted: "
                    f"{self._stream_state_bytes} bytes resident "
                    f"(limit {self._limits.max_stream_state_bytes})"
                )
            self._stream_seq += 1
            handle = f"s{self._stream_seq}"
            streams[handle] = {
                "plan": plan,
                "state": plan.open(),
                "model": model,
                "precision": precision,
                "priority": priority,
                "busy": False,
            }
            self._streams_open += 1
            self._stream_state_bytes += plan.state_bytes
            self.stats["stream_opens"] += 1
            return (
                {
                    "status": "ok",
                    "op": "stream_open",
                    "stream": handle,
                    "model": model,
                    "precision": precision,
                    "in_channels": plan.in_channels,
                    "classes": plan.out_channels,
                    "receptive_field": plan.receptive_field,
                    "state_bytes": plan.state_bytes,
                },
                b"",
            )
        if op == "stream_push":
            if self._draining:
                # Typed as unavailable, NOT retryable-in-place: the
                # client surfaces this as a broken stream (the server
                # is going away; its state goes with it).
                raise ServerUnavailable(
                    "server is draining; open streams are broken"
                )
            entry = streams.get(header.get("stream"))
            if entry is None:
                raise ServingError(
                    f"unknown stream {header.get('stream')!r} on this "
                    "connection"
                )
            if not payload:
                raise ServingError("stream_push requires an array payload")
            if entry["busy"]:
                # Per-connection sequencing makes this unreachable for
                # well-behaved clients; defend anyway so a pipelining
                # client cannot corrupt its own stream's ordering.
                raise ServingError(
                    f"stream {header.get('stream')!r} already has a push "
                    "in flight"
                )
            if faults.enabled:
                shed = faults.take("admission.shed", retry_after_ms=50.0)
                if shed is not None:
                    raise Overloaded(
                        "request shed by injected fault",
                        retry_after_ms=float(shed["retry_after_ms"]),
                    )
            if self._bucket is not None:
                wait_s = self._bucket.try_acquire()
                if wait_s > 0.0:
                    self.stats["rate_limited"] += 1
                    raise Overloaded(
                        f"rate limit exceeded "
                        f"({self._bucket.rate:g} requests/s)",
                        retry_after_ms=wait_s * 1e3,
                    )
            deadline_ms = header.get("deadline_ms")
            self._check_deadline(deadline_ms)
            plan = entry["plan"]
            chunk = unpack_array(payload)
            if chunk.ndim == 1 and plan.in_channels == 1:
                chunk = chunk[:, None]
            if chunk.ndim != 2 or chunk.shape[1] != plan.in_channels:
                raise ServingError(
                    f"stream chunk must be (samples, {plan.in_channels}), "
                    f"got shape {chunk.shape}"
                )
            if chunk.shape[0] < 1:
                raise ServingError("stream_push needs at least one sample")
            # Same front-door cast as predict: any input dtype fuses
            # into the same stream bucket with identical results.
            chunk = np.asarray(chunk, dtype=plan.policy.real_dtype)
            priority = (
                entry["priority"]
                if header.get("priority") is None
                else self.engine.config.resolve_priority(header["priority"])
            )
            start = time.perf_counter()
            entry["busy"] = True
            try:
                out = await self._batcher_for(
                    entry["model"], entry["precision"]
                ).submit_stream(
                    entry["state"],
                    chunk,
                    priority=priority,
                    deadline_ms=deadline_ms,
                )
            except DeadlineExpired:
                self.stats["expired"] += 1
                raise
            finally:
                entry["busy"] = False
            latency_ms = (time.perf_counter() - start) * 1e3
            self._stream_pushes += 1
            self.stats["stream_pushes"] += 1
            self.stats["stream_rows"] += int(chunk.shape[0])
            return (
                {
                    "status": "ok",
                    "op": "stream_push",
                    "stream": header.get("stream"),
                    "rows": int(chunk.shape[0]),
                    "samples": int(entry["state"].samples),
                    "latency_ms": latency_ms,
                },
                pack_array_views(out),
            )
        if op == "stream_close":
            entry = streams.pop(header.get("stream"), None)
            if entry is None:
                raise ServingError(
                    f"unknown stream {header.get('stream')!r} on this "
                    "connection"
                )
            self._free_stream(entry)
            self.stats["stream_closes"] += 1
            return (
                {
                    "status": "ok",
                    "op": "stream_close",
                    "stream": header.get("stream"),
                    "samples": int(entry["state"].samples),
                    "pushes": int(entry["state"].pushes),
                },
                b"",
            )
        if op in ("predict", "predict_proba"):
            if self._draining:
                raise ServerUnavailable(
                    "server is draining and accepts no new requests"
                )
            if not payload:
                raise ServingError(f"{op} requires an array payload")
            # Admission, cheapest checks first: an injected shed, then
            # the global rate bucket; the per-route queue bounds are
            # enforced by the batcher at submit.
            if faults.enabled:
                shed = faults.take("admission.shed", retry_after_ms=50.0)
                if shed is not None:
                    raise Overloaded(
                        "request shed by injected fault",
                        retry_after_ms=float(shed["retry_after_ms"]),
                    )
            if self._bucket is not None:
                wait_s = self._bucket.try_acquire()
                if wait_s > 0.0:
                    self.stats["rate_limited"] += 1
                    raise Overloaded(
                        f"rate limit exceeded "
                        f"({self._bucket.rate:g} requests/s)",
                        retry_after_ms=wait_s * 1e3,
                    )
            model, precision, priority = self._resolve_route(header)
            deadline_ms = header.get("deadline_ms")
            if deadline_ms is not None and (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or deadline_ms < 0
            ):
                # Type-check before comparing: a JSON string here must
                # be a clean protocol error, not an "internal error".
                raise ServingError(
                    f"deadline_ms must be a non-negative number, "
                    f"got {deadline_ms!r}"
                )
            rows = unpack_array(payload)
            if rows.ndim == 1:
                rows = rows[None]
            # First request for a route freezes its session — on the
            # inference thread, so plan compilation never stalls the
            # event loop.  The resolved session is cached per route:
            # later requests must enter the batcher's pending window
            # without a hop through the (possibly busy) inference
            # thread, or batch N+1 could not accumulate while batch N
            # computes.
            session = self._route_sessions.get((model, precision))
            if session is None:
                session = await asyncio.get_running_loop().run_in_executor(
                    self._infer_thread, self.engine.session, model, precision
                )
                self._route_sessions[(model, precision)] = session
            # Cast once at the front door — the same cast the session
            # applies at its boundary — so requests of any input dtype
            # fuse into one micro-batch bucket with identical results.
            rows = np.asarray(rows, dtype=session.policy.real_dtype)
            self.stats["requests"] += 1
            start = time.perf_counter()
            try:
                proba = await self._batcher_for(model, precision).submit(
                    rows, priority=priority, deadline_ms=deadline_ms
                )
            except DeadlineExpired:
                self.stats["expired"] += 1
                raise
            latency_ms = (time.perf_counter() - start) * 1e3
            out = proba.argmax(axis=-1) if op == "predict" else proba
            return (
                {
                    "status": "ok",
                    "op": op,
                    "model": model,
                    "precision": precision,
                    "priority": priority,
                    "rows": int(rows.shape[0]),
                    "latency_ms": latency_ms,
                },
                # Zero-copy: the result buffer streams into the socket
                # writer as-is (npy header + memoryview of `out`).
                pack_array_views(out),
            )
        raise ServingError(f"unknown op {op!r}")

    def __repr__(self) -> str:
        return (
            f"InferenceServer({self.host}:{self.port}, "
            f"engine={self.engine!r}, max_batch={self.max_batch}, "
            f"max_wait_ms={self.max_wait_ms})"
        )
