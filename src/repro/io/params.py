"""Parameter serialization (Fig. 4, module 2: the "Parameters Parser").

Two formats:

* **training checkpoint** — the raw ``state_dict`` of a model
  (:func:`save_weights` / :func:`load_weights`), lossless round-trip,
* **FFT-domain export** — for every block-circulant layer the half
  spectrum ``rfft(w)`` instead of ``w`` (:func:`export_fft_weights`),
  the storage format the paper prescribes for deployment (section IV-A);
  :class:`~repro.embedded.deploy.DeployedModel` builds on the same idea
  for complete artifacts.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..exceptions import ParseError
from ..fft import irfft, rfft
from ..nn.layers import BlockCirculantConv2d, BlockCirculantLinear
from ..nn.module import Module

__all__ = [
    "save_weights",
    "load_weights",
    "export_fft_weights",
    "import_fft_weights",
]

_KEY_PREFIX = "param::"


def save_weights(model: Module, path: str | Path) -> None:
    """Write the model ``state_dict`` to an ``.npz`` checkpoint."""
    state = model.state_dict()
    if not state:
        raise ValueError("model has no parameters to save")
    np.savez(Path(path), **{_KEY_PREFIX + name: value for name, value in state.items()})


def load_weights(model: Module, path: str | Path) -> None:
    """Load an ``.npz`` checkpoint written by :func:`save_weights`."""
    path = Path(path)
    with np.load(path) as data:
        state = {}
        for key in data.files:
            if not key.startswith(_KEY_PREFIX):
                raise ParseError(f"{path} contains a non-checkpoint key {key!r}")
            state[key[len(_KEY_PREFIX) :]] = data[key]
    model.load_state_dict(state)


def export_fft_weights(model: Module) -> dict[str, np.ndarray]:
    """FFT-domain weights of every block-circulant layer in ``model``.

    Returns a mapping from the layer's dotted parameter name to the
    complex half-spectrum array of shape ``(p, q, b // 2 + 1)``.  The
    spectra contain exactly the information of the defining vectors while
    already being in the form the inference kernel consumes.
    """
    spectra: dict[str, np.ndarray] = {}
    for name, module in _named_modules(model):
        if isinstance(module, (BlockCirculantLinear, BlockCirculantConv2d)):
            key = f"{name}.weight" if name else "weight"
            spectra[key] = rfft(module.weight.data)
    if not spectra:
        raise ValueError("model contains no block-circulant layers")
    return spectra


def import_fft_weights(model: Module, spectra: dict[str, np.ndarray]) -> None:
    """Restore block-circulant weights from :func:`export_fft_weights` output."""
    targets = {
        (f"{name}.weight" if name else "weight"): module
        for name, module in _named_modules(model)
        if isinstance(module, (BlockCirculantLinear, BlockCirculantConv2d))
    }
    missing = sorted(set(targets) - set(spectra))
    extra = sorted(set(spectra) - set(targets))
    if missing or extra:
        raise ParseError(
            f"FFT weight mismatch: missing={missing} unexpected={extra}"
        )
    for key, module in targets.items():
        block = module.weight.data.shape[-1]
        restored = irfft(np.asarray(spectra[key]), n=block)
        if restored.shape != module.weight.data.shape:
            raise ParseError(
                f"spectrum for {key} restores to {restored.shape}, "
                f"expected {module.weight.data.shape}"
            )
        module.weight.data = restored


def _named_modules(model: Module):
    """(dotted name, module) pairs, the root having the empty name."""
    yield "", model
    for child_name, child in model._modules.items():
        for name, module in _named_modules(child):
            full = f"{child_name}.{name}" if name else child_name
            yield full, module
