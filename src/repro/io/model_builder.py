"""Build trainable models from parsed architecture specs (Fig. 4, module 1).

Turns an :class:`~repro.io.arch_parser.ArchitectureSpec` into a
:class:`~repro.nn.module.Sequential`: ReLU after every hidden weight
layer, an automatic :class:`Flatten` at the CONV -> FC transition, and the
final FC producing logits (softmax lives in the loss / deployment engine).
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ConfigurationError
from ..nn import (
    AvgPool2d,
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from .arch_parser import ArchitectureSpec, parse_architecture

__all__ = ["build_model", "build_model_from_string"]


def build_model(
    spec: ArchitectureSpec,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Instantiate the network described by ``spec``.

    Raises :class:`ConfigurationError` when the geometry is inconsistent
    (e.g. a kernel no longer fits after pooling).
    """
    rng = rng or np.random.default_rng()
    layers: list = []
    shape: tuple[int, ...] = spec.input_shape
    total = len(spec.layers)
    for index, layer_spec in enumerate(spec.layers):
        is_last = index == total - 1
        if layer_spec.kind in ("conv", "bc_conv"):
            channels, height, width = shape
            if height < layer_spec.kernel or width < layer_spec.kernel:
                raise ConfigurationError(
                    f"layer {index}: kernel {layer_spec.kernel} does not fit "
                    f"spatial size ({height}, {width})"
                )
            if layer_spec.kind == "conv":
                conv = Conv2d(
                    channels, layer_spec.units, layer_spec.kernel, rng=rng
                )
            else:
                conv = BlockCirculantConv2d(
                    channels,
                    layer_spec.units,
                    layer_spec.kernel,
                    block_size=layer_spec.block,
                    rng=rng,
                )
            layers.append(conv)
            layers.append(ReLU())
            shape = conv.output_shape(height, width)
        elif layer_spec.kind in ("maxpool", "avgpool"):
            channels, height, width = shape
            k = layer_spec.kernel
            if height < k or width < k:
                raise ConfigurationError(
                    f"layer {index}: pool window {k} does not fit "
                    f"spatial size ({height}, {width})"
                )
            pool_cls = MaxPool2d if layer_spec.kind == "maxpool" else AvgPool2d
            layers.append(pool_cls(k))
            shape = (channels, height // k, width // k)
        else:  # fc / bc_fc
            if len(shape) == 3:
                layers.append(Flatten())
                shape = (math.prod(shape),)
            (in_features,) = shape
            if layer_spec.kind == "fc":
                layers.append(Linear(in_features, layer_spec.units, rng=rng))
            else:
                layers.append(
                    BlockCirculantLinear(
                        in_features,
                        layer_spec.units,
                        layer_spec.block,
                        rng=rng,
                    )
                )
            if not is_last:
                layers.append(ReLU())
            shape = (layer_spec.units,)
    return Sequential(*layers)


def build_model_from_string(
    text: str, rng: np.random.Generator | None = None
) -> Sequential:
    """Parse an architecture string and build the model in one step."""
    return build_model(parse_architecture(text), rng=rng)
