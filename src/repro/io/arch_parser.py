"""Parser for the paper's architecture-string notation (Fig. 4, module 1).

The paper describes networks in a compact dash-separated notation, e.g.::

    128x3x32x32-64Conv3-64Conv3-128Conv3-128Conv3-512F-1024F-1024F-10F

This module parses that notation (and small extensions needed to express
block-circulant layers and pooling) into a structured
:class:`ArchitectureSpec`:

* input: ``256`` (flat), ``3x32x32`` (C x H x W), or
  ``128x3x32x32`` (batch x C x H x W — the batch size is recorded but the
  built model is batch-agnostic),
* ``<n>F`` — dense FC layer with ``n`` neurons,
* ``<n>CFb<b>`` — block-circulant FC layer, block size ``b``,
* ``<P>Conv<k>`` — dense CONV, ``P`` filters of size ``k x k``,
* ``<P>CConv<k>b<b>`` — block-circulant CONV, block size ``b``,
* ``MP<k>`` / ``AP<k>`` — max / average pooling with ``k x k`` windows.

ReLU activations are implied between consecutive weight layers (the
paper's convention); the final FC layer produces logits for the softmax.
:func:`format_architecture` renders a spec back to its string, and the
round-trip is tested property-style.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..exceptions import ParseError

__all__ = ["LayerSpec", "ArchitectureSpec", "parse_architecture", "format_architecture"]

_FC_RE = re.compile(r"^(\d+)F$")
_BCFC_RE = re.compile(r"^(\d+)CFb(\d+)$")
_CONV_RE = re.compile(r"^(\d+)Conv(\d+)$")
_BCCONV_RE = re.compile(r"^(\d+)CConv(\d+)b(\d+)$")
_POOL_RE = re.compile(r"^(MP|AP)(\d+)$")
_INPUT_RE = re.compile(r"^\d+(x\d+)*$")


@dataclass(frozen=True)
class LayerSpec:
    """One parsed layer: ``kind`` plus its integer parameters.

    Kinds: ``fc`` (units), ``bc_fc`` (units, block), ``conv``
    (filters, kernel), ``bc_conv`` (filters, kernel, block), ``maxpool`` /
    ``avgpool`` (kernel).
    """

    kind: str
    units: int = 0
    kernel: int = 0
    block: int = 0


@dataclass(frozen=True)
class ArchitectureSpec:
    """A parsed architecture string."""

    input_shape: tuple[int, ...]  # (features,) or (C, H, W)
    batch_size: int | None
    layers: tuple[LayerSpec, ...] = field(default_factory=tuple)

    @property
    def is_convolutional(self) -> bool:
        return len(self.input_shape) == 3


def _parse_input(token: str) -> tuple[tuple[int, ...], int | None]:
    if not _INPUT_RE.match(token):
        raise ParseError(f"malformed input specification {token!r}")
    parts = tuple(int(p) for p in token.split("x"))
    if any(p <= 0 for p in parts):
        raise ParseError(f"input dimensions must be positive: {token!r}")
    if len(parts) == 1:
        return parts, None
    if len(parts) == 3:
        return parts, None
    if len(parts) == 4:
        return parts[1:], parts[0]
    raise ParseError(
        f"input must have 1, 3, or 4 'x'-separated dims, got {len(parts)}: "
        f"{token!r}"
    )


def _parse_layer(token: str) -> LayerSpec:
    match = _BCCONV_RE.match(token)
    if match:
        filters, kernel, block = map(int, match.groups())
        return LayerSpec("bc_conv", units=filters, kernel=kernel, block=block)
    match = _CONV_RE.match(token)
    if match:
        filters, kernel = map(int, match.groups())
        return LayerSpec("conv", units=filters, kernel=kernel)
    match = _BCFC_RE.match(token)
    if match:
        units, block = map(int, match.groups())
        return LayerSpec("bc_fc", units=units, block=block)
    match = _FC_RE.match(token)
    if match:
        return LayerSpec("fc", units=int(match.group(1)))
    match = _POOL_RE.match(token)
    if match:
        kind = "maxpool" if match.group(1) == "MP" else "avgpool"
        return LayerSpec(kind, kernel=int(match.group(2)))
    raise ParseError(f"unrecognized layer token {token!r}")


def parse_architecture(text: str) -> ArchitectureSpec:
    """Parse a dash-separated architecture string (see module docstring)."""
    if not isinstance(text, str) or not text.strip():
        raise ParseError("architecture string is empty")
    tokens = [t for t in text.strip().split("-") if t]
    if len(tokens) < 2:
        raise ParseError(
            f"architecture needs an input spec and at least one layer: {text!r}"
        )
    input_shape, batch_size = _parse_input(tokens[0])
    layers = []
    for token in tokens[1:]:
        spec = _parse_layer(token)
        if spec.kind in ("conv", "bc_conv", "maxpool", "avgpool") and len(
            input_shape
        ) != 3:
            raise ParseError(
                f"layer {token!r} requires a CxHxW input specification"
            )
        for value, name in ((spec.units, "units"), (spec.kernel, "kernel"),
                            (spec.block, "block")):
            if value < 0:
                raise ParseError(f"{name} must be non-negative in {token!r}")
        layers.append(spec)
    if layers[-1].kind not in ("fc", "bc_fc"):
        raise ParseError(
            "the final layer must be a fully-connected classifier "
            f"(got {layers[-1].kind!r})"
        )
    # CONV-family layers may not follow the first FC layer.
    seen_fc = False
    for spec in layers:
        if spec.kind in ("fc", "bc_fc"):
            seen_fc = True
        elif seen_fc:
            raise ParseError("convolution/pooling cannot follow an FC layer")
    return ArchitectureSpec(
        input_shape=input_shape, batch_size=batch_size, layers=tuple(layers)
    )


def format_architecture(spec: ArchitectureSpec) -> str:
    """Render a spec back to its canonical string (inverse of parsing)."""
    if spec.batch_size is not None:
        head = "x".join(str(d) for d in (spec.batch_size, *spec.input_shape))
    else:
        head = "x".join(str(d) for d in spec.input_shape)
    tokens = [head]
    for layer in spec.layers:
        if layer.kind == "fc":
            tokens.append(f"{layer.units}F")
        elif layer.kind == "bc_fc":
            tokens.append(f"{layer.units}CFb{layer.block}")
        elif layer.kind == "conv":
            tokens.append(f"{layer.units}Conv{layer.kernel}")
        elif layer.kind == "bc_conv":
            tokens.append(f"{layer.units}CConv{layer.kernel}b{layer.block}")
        elif layer.kind == "maxpool":
            tokens.append(f"MP{layer.kernel}")
        elif layer.kind == "avgpool":
            tokens.append(f"AP{layer.kernel}")
        else:
            raise ParseError(f"cannot format layer kind {layer.kind!r}")
    return "-".join(tokens)
