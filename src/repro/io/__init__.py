"""Software-deployment I/O: the parsers of paper Fig. 4.

* architecture parser (:func:`parse_architecture`,
  :func:`build_model_from_string`),
* parameters parser (:func:`save_weights`, :func:`load_weights`,
  FFT-domain export),
* inputs parser (:func:`load_inputs`, :func:`validate_inputs`).
"""

from .arch_parser import (
    ArchitectureSpec,
    LayerSpec,
    format_architecture,
    parse_architecture,
)
from .inputs import load_inputs, save_inputs, validate_inputs
from .model_builder import build_model, build_model_from_string
from .params import (
    export_fft_weights,
    import_fft_weights,
    load_weights,
    save_weights,
)

__all__ = [
    "ArchitectureSpec",
    "LayerSpec",
    "parse_architecture",
    "format_architecture",
    "build_model",
    "build_model_from_string",
    "save_weights",
    "load_weights",
    "export_fft_weights",
    "import_fft_weights",
    "load_inputs",
    "save_inputs",
    "validate_inputs",
]
