"""Input loading and validation (Fig. 4, module 3: the "Inputs Parser").

The paper's third building block reads test data (input features plus
predefined labels) from a file.  This module loads ``.npy`` / ``.npz`` /
``.csv`` payloads into the ``(inputs, labels)`` pair the engine consumes,
with shape and range validation.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..exceptions import ParseError

__all__ = ["load_inputs", "save_inputs", "validate_inputs"]


def save_inputs(
    path: str | Path, inputs: np.ndarray, labels: np.ndarray | None = None
) -> None:
    """Write an input file: ``.npz`` with ``inputs`` and optional ``labels``."""
    path = Path(path)
    if path.suffix != ".npz":
        raise ParseError(f"input bundles are .npz files, got {path.suffix!r}")
    payload = {"inputs": np.asarray(inputs)}
    if labels is not None:
        payload["labels"] = np.asarray(labels)
    np.savez(path, **payload)


def load_inputs(path: str | Path) -> tuple[np.ndarray, np.ndarray | None]:
    """Load ``(inputs, labels)`` from ``.npz``, ``.npy``, or ``.csv``.

    * ``.npz`` — keys ``inputs`` (required) and ``labels`` (optional),
    * ``.npy`` — a bare input array (labels ``None``),
    * ``.csv`` — rows of features, with the label in the last column when
      the file's header line ends with ``label``.
    """
    path = Path(path)
    if not path.exists():
        raise ParseError(f"input file does not exist: {path}")
    if path.suffix == ".npz":
        with np.load(path) as data:
            if "inputs" not in data:
                raise ParseError(f"{path} has no 'inputs' array")
            inputs = data["inputs"]
            labels = data["labels"] if "labels" in data else None
        return inputs, labels
    if path.suffix == ".npy":
        return np.load(path), None
    if path.suffix == ".csv":
        return _load_csv(path)
    raise ParseError(f"unsupported input format {path.suffix!r}")


def _load_csv(path: Path) -> tuple[np.ndarray, np.ndarray | None]:
    with open(path) as handle:
        first = handle.readline().strip()
    has_header = any(c.isalpha() for c in first)
    has_labels = has_header and first.lower().split(",")[-1].strip() == "label"
    data = np.loadtxt(path, delimiter=",", skiprows=1 if has_header else 0, ndmin=2)
    if data.size == 0:
        raise ParseError(f"{path} contains no data rows")
    if has_labels:
        return data[:, :-1], data[:, -1].astype(np.int64)
    return data, None


def validate_inputs(
    inputs: np.ndarray,
    expected_shape: tuple[int, ...],
    value_range: tuple[float, float] | None = None,
) -> np.ndarray:
    """Check a batch against the model's expected per-sample shape.

    Accepts a single sample or a batch; returns a 2-D-or-higher batch.
    Raises :class:`ParseError` on shape or range violations.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    if inputs.shape == tuple(expected_shape):
        inputs = inputs[None]
    if inputs.shape[1:] != tuple(expected_shape):
        raise ParseError(
            f"expected per-sample shape {tuple(expected_shape)}, "
            f"got batch of {inputs.shape[1:]}"
        )
    if value_range is not None:
        low, high = value_range
        if not np.all(np.isfinite(inputs)):
            raise ParseError("input contains NaN or infinite values")
        if inputs.min() < low or inputs.max() > high:
            raise ParseError(
                f"input values [{inputs.min():.4g}, {inputs.max():.4g}] "
                f"outside expected range [{low}, {high}]"
            )
    return inputs
