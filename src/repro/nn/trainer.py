"""Training-loop harness.

A thin, dependency-free loop: batches from a
:class:`~repro.data.dataset.DataLoader`, forward, loss, backward, step,
with per-epoch metrics and optional validation — enough to train all three
paper architectures reproducibly from the benchmark scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .metrics import accuracy
from .module import Module
from .optim import Optimizer, _Scheduler
from .tensor import Tensor

__all__ = ["EpochStats", "TrainingHistory", "Trainer"]


@dataclass
class EpochStats:
    """Metrics for one epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    val_loss: float | None = None
    val_accuracy: float | None = None


@dataclass
class TrainingHistory:
    """Accumulated per-epoch statistics."""

    epochs: list[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        self.epochs.append(stats)

    @property
    def final(self) -> EpochStats:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1]

    def best_val_accuracy(self) -> float:
        scores = [e.val_accuracy for e in self.epochs if e.val_accuracy is not None]
        if not scores:
            raise ValueError("no validation accuracy recorded")
        return max(scores)

    def summary(self) -> dict:
        """JSON-able digest for artifact provenance (format v2).

        Small by construction — epoch count plus first/final/best
        numbers, not the per-epoch curves — so it can ride in an
        artifact header without bloating it.
        """
        if not self.epochs:
            return {"epochs": 0}
        final = self.final
        digest = {
            "epochs": len(self.epochs),
            "first_train_loss": self.epochs[0].train_loss,
            "final_train_loss": final.train_loss,
            "final_train_accuracy": final.train_accuracy,
        }
        if final.val_accuracy is not None:
            digest["final_val_accuracy"] = final.val_accuracy
            digest["best_val_accuracy"] = self.best_val_accuracy()
        return digest


class Trainer:
    """Train a model with a loss and an optimizer.

    Parameters
    ----------
    model, loss_fn, optimizer:
        The training triple.  ``loss_fn(logits, labels)`` must return a
        scalar :class:`Tensor`.
    scheduler:
        Optional LR schedule stepped once per epoch.
    on_epoch_end:
        Optional callback ``(EpochStats) -> None`` for logging.
    """

    def __init__(
        self,
        model: Module,
        loss_fn,
        optimizer: Optimizer,
        scheduler: _Scheduler | None = None,
        on_epoch_end: Callable[[EpochStats], None] | None = None,
    ):
        self.model = model
        self.loss_fn = loss_fn
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.on_epoch_end = on_epoch_end

    def train_epoch(self, loader) -> tuple[float, float]:
        """One pass over ``loader``; returns (mean loss, accuracy)."""
        self.model.train()
        total_loss = 0.0
        total_correct = 0.0
        total_count = 0
        for batch_x, batch_y in loader:
            self.optimizer.zero_grad()
            logits = self.model(Tensor(batch_x))
            loss = self.loss_fn(logits, batch_y)
            loss.backward()
            self.optimizer.step()
            size = len(batch_y)
            total_loss += loss.item() * size
            total_correct += accuracy(logits, batch_y) * size
            total_count += size
        if total_count == 0:
            raise ValueError("loader produced no batches")
        return total_loss / total_count, total_correct / total_count

    def evaluate(self, loader) -> tuple[float, float]:
        """Loss and accuracy over ``loader`` in eval mode (no updates)."""
        self.model.eval()
        total_loss = 0.0
        total_correct = 0.0
        total_count = 0
        for batch_x, batch_y in loader:
            logits = self.model(Tensor(batch_x))
            loss = self.loss_fn(logits, batch_y)
            size = len(batch_y)
            total_loss += loss.item() * size
            total_correct += accuracy(logits, batch_y) * size
            total_count += size
        if total_count == 0:
            raise ValueError("loader produced no batches")
        self.model.train()
        return total_loss / total_count, total_correct / total_count

    def fit(
        self,
        train_loader,
        epochs: int,
        val_loader=None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Run ``epochs`` training epochs, optionally validating each one."""
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        history = TrainingHistory()
        for epoch in range(1, epochs + 1):
            train_loss, train_acc = self.train_epoch(train_loader)
            stats = EpochStats(epoch, train_loss, train_acc)
            if val_loader is not None:
                stats.val_loss, stats.val_accuracy = self.evaluate(val_loader)
            if self.scheduler is not None:
                self.scheduler.step()
            history.append(stats)
            if self.on_epoch_end is not None:
                self.on_epoch_end(stats)
            if verbose:
                message = (
                    f"epoch {epoch:3d}  loss {train_loss:.4f}  "
                    f"acc {train_acc:.4f}"
                )
                if stats.val_accuracy is not None:
                    message += (
                        f"  val_loss {stats.val_loss:.4f}  "
                        f"val_acc {stats.val_accuracy:.4f}"
                    )
                print(message)
        return history


def predict_in_batches(
    model: Module, inputs: np.ndarray, batch_size: int = 256
) -> np.ndarray:
    """Run ``model`` over ``inputs`` in eval mode, concatenating outputs.

    The model's previous train/eval mode is restored afterwards, so
    calling this mid-training (or mid-evaluation) never silently flips
    the mode under the caller.
    """
    was_training = getattr(model, "training", True)
    model.eval()
    outputs = []
    for start in range(0, len(inputs), batch_size):
        chunk = inputs[start : start + batch_size]
        outputs.append(model(Tensor(chunk)).data)
    model.train(was_training)
    return np.concatenate(outputs, axis=0)
