"""Optimizers and learning-rate schedules.

The paper trains with SGD (learning rate 0.001, momentum 0.9 for the
CIFAR-10 network — section V-C); SGD with momentum is therefore the
primary optimizer, with Adam available for faster convergence in the
examples, plus step / exponential LR decay schedules.

Every update rebinds ``param.data`` (never writes into the array in
place), which advances the parameter's ``version`` counter and thereby
invalidates version-keyed derived caches such as the block-circulant
layers' spectrum cache.  Custom optimizers must keep that invariant or
call ``param.bump_version()`` after in-place writes.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = ["SGD", "Adam", "StepLR", "ExponentialLR"]


class Optimizer:
    """Base optimizer: holds parameters and the current learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update; subclasses implement."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay.

    Matches the paper's training recipe when constructed with
    ``lr=0.001, momentum=0.9``.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam with bias-corrected first and second moments."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        beta1, beta2 = self.betas
        self._step_count += 1
        correction1 = 1.0 - beta1**self._step_count
        correction2 = 1.0 - beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            m_hat = m / correction1
            v_hat = v / correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class _Scheduler:
    """Base LR schedule wrapping an optimizer."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr()

    def get_lr(self) -> float:
        raise NotImplementedError


class StepLR(_Scheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class ExponentialLR(_Scheduler):
    """Multiply the LR by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float):
        super().__init__(optimizer)
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma**self.epoch
