"""Module base class and Sequential container.

Follows the familiar composition pattern: a :class:`Module` owns
:class:`Parameter` attributes and child modules, exposes recursive
parameter iteration, train/eval mode, and a ``state_dict`` for
serialization (the deployment pipeline in :mod:`repro.io.params` builds
on it).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter(Tensor):
    """A trainable tensor: always requires grad, owned by a module.

    Inherits the :class:`Tensor` ``version`` counter: optimizer steps and
    ``load_state_dict`` rebind ``data`` and advance it, which is what
    keeps version-keyed caches (e.g. the block-circulant layers' weight
    spectra) coherent.  Mutate via assignment, or call
    ``bump_version()`` after writing into ``data`` in place.
    """

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration is automatic through ``__setattr__``.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield every trainable parameter, depth first, no duplicates."""
        seen: set[int] = set()
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def parameter_count(self) -> int:
        """Total number of stored (trainable) scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout, batchnorm)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters in place; shapes and names must match exactly."""
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        extra = sorted(set(state) - set(own))
        if missing or extra:
            raise KeyError(
                f"state dict mismatch: missing={missing} unexpected={extra}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        """Compute the module output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, x) -> Tensor:
        return self.forward(as_tensor(x))


class Sequential(Module):
    """Apply child modules in order.

    >>> model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
    """

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            if not isinstance(layer, Module):
                raise TypeError(f"layer {index} is not a Module: {layer!r}")
            self._modules[str(index)] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
