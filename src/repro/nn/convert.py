"""Convert pre-trained dense models to block-circulant form.

The paper's training algorithm can train block-circulant networks from
scratch, but the practical compression workflow (and the related work it
cites, e.g. fine-tuning after low-rank factorization [13]) starts from a
*pre-trained dense* network:

1. project every dense weight matrix onto the nearest block-circulant
   matrix (Frobenius-optimal, :mod:`repro.structured.projection`),
2. fine-tune the projected model briefly to recover accuracy.

:func:`convert_to_block_circulant` performs step 1 for a whole
``Sequential`` (Linear and Conv2d layers; activations, pooling, dropout,
flatten and batch-norm pass through unchanged), and
:func:`conversion_report` quantifies the projection error per layer so
callers can pick block sizes before committing to fine-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..structured import BlockCirculantMatrix
from .layers import BlockCirculantConv2d, BlockCirculantLinear, Conv2d, Linear
from .module import Module, Sequential

__all__ = [
    "convert_to_block_circulant",
    "ConversionRow",
    "conversion_report",
]


def _project_conv(layer: Conv2d, block_size: int) -> BlockCirculantConv2d:
    """Frobenius-project a dense Conv2d filter bank to block-circulant.

    The projection happens per kernel position on the (P, C) slice,
    matching the paper's Eqn. 6 structure (and the layout
    :class:`BlockCirculantConv2d` executes).
    """
    converted = BlockCirculantConv2d(
        layer.in_channels,
        layer.out_channels,
        layer.kernel_size,
        block_size=block_size,
        stride=layer.stride,
        padding=layer.padding,
        bias=layer.bias is not None,
    )
    k = layer.kernel_size
    b = block_size
    padded_c = converted.channel_blocks * b
    weights = np.zeros_like(converted.weight.data)
    for i in range(k):
        for j in range(k):
            slice_pc = layer.weight.data[:, :, i, j]  # (P, C)
            projected = BlockCirculantMatrix.from_dense(slice_pc, b)
            grid = projected.block_weights  # (p_blocks, c_blocks, b)
            position = i * k + j
            for cb in range(converted.channel_blocks):
                weights[:, position * converted.channel_blocks + cb, :] = grid[
                    :, cb, :
                ]
    converted.weight.data = weights
    if layer.bias is not None:
        converted.bias.data = layer.bias.data.copy()
    return converted


def convert_to_block_circulant(
    model: Sequential,
    block_size: int,
    skip: tuple[int, ...] = (),
) -> Sequential:
    """Project every dense weight layer of ``model`` to block-circulant.

    Parameters
    ----------
    model:
        A trained ``Sequential`` of supported layers.
    block_size:
        Block size used for every converted layer (clamped per layer to
        its maximum feasible value).
    skip:
        Indices of layers to leave dense — e.g. the paper keeps the first
        two CONV layers of Arch. 3 "traditional", and the final softmax
        classifier is typically left dense.

    Returns a new model; the input is not modified.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    converted_layers = []
    for index, layer in enumerate(model):
        if index in skip or not isinstance(layer, (Linear, Conv2d)):
            converted_layers.append(layer)
            continue
        if isinstance(layer, Linear):
            feasible = min(block_size, max(layer.in_features, layer.out_features))
            converted_layers.append(
                BlockCirculantLinear.from_dense(
                    layer.weight.data,
                    feasible,
                    bias=None if layer.bias is None else layer.bias.data,
                )
            )
        else:
            feasible = min(block_size, max(layer.in_channels, layer.out_channels))
            converted_layers.append(_project_conv(layer, feasible))
    return Sequential(*converted_layers)


@dataclass(frozen=True)
class ConversionRow:
    """Projection diagnostics for one converted layer."""

    index: int
    layer: str
    relative_error: float
    compression: float


def conversion_report(
    model: Sequential, block_size: int, skip: tuple[int, ...] = ()
) -> list[ConversionRow]:
    """Per-layer relative Frobenius projection error and compression.

    Runs the same projections as :func:`convert_to_block_circulant` but
    only measures them — cheap enough to sweep block sizes before
    converting.
    """
    rows = []
    for index, layer in enumerate(model):
        if index in skip or not isinstance(layer, (Linear, Conv2d)):
            continue
        if isinstance(layer, Linear):
            feasible = min(block_size, max(layer.in_features, layer.out_features))
            dense = layer.weight.data
            projected = BlockCirculantMatrix.from_dense(dense, feasible).to_dense()
            compression = dense.size / BlockCirculantMatrix.from_dense(
                dense, feasible
            ).parameter_count
        else:
            feasible = min(block_size, max(layer.in_channels, layer.out_channels))
            converted = _project_conv(layer, feasible)
            dense = layer.weight.data
            projected = converted.dense_weight()
            compression = dense.size / converted.weight.size
        norm = np.linalg.norm(dense)
        error = 0.0 if norm == 0 else float(
            np.linalg.norm(dense - projected) / norm
        )
        rows.append(
            ConversionRow(
                index=index,
                layer=repr(layer),
                relative_error=error,
                compression=float(compression),
            )
        )
    if not rows:
        raise ValueError("model contains no convertible dense layers")
    return rows
