"""Convert pre-trained dense models to block-circulant form.

The paper's training algorithm can train block-circulant networks from
scratch, but the practical compression workflow (and the related work it
cites, e.g. fine-tuning after low-rank factorization [13]) starts from a
*pre-trained dense* network:

1. project every dense weight matrix onto the nearest block-circulant
   matrix (Frobenius-optimal, :mod:`repro.structured.projection`),
2. fine-tune the projected model briefly to recover accuracy.

:func:`convert_to_block_circulant` performs step 1 for a whole
``Sequential`` (Linear and Conv2d layers; activations, pooling, dropout,
flatten and batch-norm pass through unchanged), and
:func:`conversion_report` quantifies the projection error per layer so
callers can pick block sizes before committing to fine-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..structured import BlockCirculantMatrix
from .layers import BlockCirculantConv2d, BlockCirculantLinear, Conv2d, Linear
from .module import Module, Sequential

__all__ = [
    "convert_to_block_circulant",
    "ConversionRow",
    "conversion_report",
    "conversion_rows_from",
]


def _project_conv(layer: Conv2d, block_size: int) -> BlockCirculantConv2d:
    """Frobenius-project a dense Conv2d filter bank to block-circulant.

    The projection happens per kernel position on the (P, C) slice,
    matching the paper's Eqn. 6 structure (and the layout
    :class:`BlockCirculantConv2d` executes).
    """
    converted = BlockCirculantConv2d(
        layer.in_channels,
        layer.out_channels,
        layer.kernel_size,
        block_size=block_size,
        stride=layer.stride,
        padding=layer.padding,
        bias=layer.bias is not None,
    )
    k = layer.kernel_size
    b = block_size
    padded_c = converted.channel_blocks * b
    weights = np.zeros_like(converted.weight.data)
    for i in range(k):
        for j in range(k):
            slice_pc = layer.weight.data[:, :, i, j]  # (P, C)
            projected = BlockCirculantMatrix.from_dense(slice_pc, b)
            grid = projected.block_weights  # (p_blocks, c_blocks, b)
            position = i * k + j
            for cb in range(converted.channel_blocks):
                weights[:, position * converted.channel_blocks + cb, :] = grid[
                    :, cb, :
                ]
    converted.weight.data = weights
    if layer.bias is not None:
        converted.bias.data = layer.bias.data.copy()
    return converted


def convert_to_block_circulant(
    model: Sequential,
    block_size: int,
    skip: tuple[int, ...] = (),
    overrides: dict[int, int] | None = None,
) -> Sequential:
    """Project every dense weight layer of ``model`` to block-circulant.

    Parameters
    ----------
    model:
        A trained ``Sequential`` of supported layers.
    block_size:
        Block size used for every converted layer (clamped per layer to
        its maximum feasible value).
    skip:
        Indices of layers to leave dense — e.g. the paper keeps the first
        two CONV layers of Arch. 3 "traditional", and the final softmax
        classifier is typically left dense.
    overrides:
        Per-layer-index block sizes taking precedence over
        ``block_size`` — the per-layer-group compression policy (e.g.
        compress the large FC layers harder than the CONV stack).

    Returns a new model; the input is not modified.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    overrides = overrides or {}
    if any(b <= 0 for b in overrides.values()):
        raise ValueError(f"override block sizes must be positive: {overrides}")
    converted_layers = []
    for index, layer in enumerate(model):
        if index in skip or not isinstance(layer, (Linear, Conv2d)):
            converted_layers.append(layer)
            continue
        requested = overrides.get(index, block_size)
        if isinstance(layer, Linear):
            feasible = min(requested, max(layer.in_features, layer.out_features))
            converted_layers.append(
                BlockCirculantLinear.from_dense(
                    layer.weight.data,
                    feasible,
                    bias=None if layer.bias is None else layer.bias.data,
                )
            )
        else:
            feasible = min(requested, max(layer.in_channels, layer.out_channels))
            converted_layers.append(_project_conv(layer, feasible))
    return Sequential(*converted_layers)


@dataclass(frozen=True)
class ConversionRow:
    """Projection diagnostics for one converted layer.

    ``quantization_error`` is the relative L2 error that fixed-point
    quantization of the *projected* weights would add on top of the
    projection (``None`` unless ``conversion_report`` was asked for a
    bit width) — the two compression axes of the paper's related work,
    reported side by side.
    """

    index: int
    layer: str
    relative_error: float
    compression: float
    quantization_error: float | None = None


def conversion_report(
    model: Sequential,
    block_size: int,
    skip: tuple[int, ...] = (),
    quantize_bits: int | None = None,
    overrides: dict[int, int] | None = None,
) -> list[ConversionRow]:
    """Per-layer relative Frobenius projection error and compression.

    Runs the same projections as :func:`convert_to_block_circulant` but
    only measures them — cheap enough to sweep block sizes before
    converting.  With ``quantize_bits`` set, each row also reports the
    relative error of quantizing that layer's projected weights to the
    given fixed-point width (per-layer Q-format chosen as
    :func:`~repro.quantize.quantize_model` would); ``overrides`` maps
    layer indices to block sizes exactly as in
    :func:`convert_to_block_circulant`.
    """
    from ..quantize.fixed_point import choose_qformat, quantization_error

    overrides = overrides or {}
    rows = []
    for index, layer in enumerate(model):
        if index in skip or not isinstance(layer, (Linear, Conv2d)):
            continue
        requested = overrides.get(index, block_size)
        if isinstance(layer, Linear):
            feasible = min(requested, max(layer.in_features, layer.out_features))
            dense = layer.weight.data
            matrix = BlockCirculantMatrix.from_dense(dense, feasible)
            projected = matrix.to_dense()
            stored = matrix.block_weights
            compression = dense.size / matrix.parameter_count
        else:
            feasible = min(requested, max(layer.in_channels, layer.out_channels))
            converted = _project_conv(layer, feasible)
            dense = layer.weight.data
            projected = converted.dense_weight()
            stored = converted.weight.data
            compression = dense.size / converted.weight.size
        norm = np.linalg.norm(dense)
        error = 0.0 if norm == 0 else float(
            np.linalg.norm(dense - projected) / norm
        )
        q_error = None
        if quantize_bits is not None:
            # Measured on the stored defining vectors — what
            # quantize_model actually rounds — not the dense
            # reconstruction.
            q_error = quantization_error(
                stored, choose_qformat(stored, quantize_bits)
            )
        rows.append(
            ConversionRow(
                index=index,
                layer=repr(layer),
                relative_error=error,
                compression=float(compression),
                quantization_error=q_error,
            )
        )
    if not rows:
        raise ValueError("model contains no convertible dense layers")
    return rows


def conversion_rows_from(
    original: Sequential,
    converted: Sequential,
    skip: tuple[int, ...] = (),
    quantize_bits: int | None = None,
) -> list[ConversionRow]:
    """Diagnostics for a conversion that already happened — no
    re-projection.

    Given the ``original`` model and the output of
    :func:`convert_to_block_circulant` on it, produces the same rows as
    :func:`conversion_report` by comparing each dense layer against the
    converted layer's reconstruction (``dense_weight()``), at the cost
    of a reconstruction instead of a second projection.  The build
    pipeline's compress stage uses this so large models project once,
    not twice.
    """
    from ..quantize.fixed_point import choose_qformat, quantization_error

    rows = []
    for index, (before, after) in enumerate(zip(original, converted)):
        if index in skip or not isinstance(before, (Linear, Conv2d)):
            continue
        if not isinstance(
            after, (BlockCirculantLinear, BlockCirculantConv2d)
        ):
            continue
        dense = before.weight.data
        projected = after.dense_weight()
        stored = after.weight.data
        norm = np.linalg.norm(dense)
        error = 0.0 if norm == 0 else float(
            np.linalg.norm(dense - projected) / norm
        )
        q_error = None
        if quantize_bits is not None:
            q_error = quantization_error(
                stored, choose_qformat(stored, quantize_bits)
            )
        rows.append(
            ConversionRow(
                index=index,
                layer=repr(before),
                relative_error=error,
                compression=float(dense.size / stored.size),
                quantization_error=q_error,
            )
        )
    return rows
