"""Classification metrics used by the evaluation harness."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["accuracy", "top_k_accuracy", "confusion_matrix"]


def _logits_array(logits) -> np.ndarray:
    if isinstance(logits, Tensor):
        logits = logits.data
    logits = np.asarray(logits)
    if logits.ndim != 2:
        raise ValueError(f"expected (batch, classes) scores, got {logits.shape}")
    return logits


def accuracy(logits, labels) -> float:
    """Fraction of samples whose argmax score matches the label.

    Sequence scores ``(batch, T, classes)`` with per-position labels
    ``(batch, T)`` are flattened to one classification per position.
    """
    if isinstance(logits, Tensor):
        logits = logits.data
    logits = np.asarray(logits)
    if logits.ndim == 3:
        logits = logits.reshape(-1, logits.shape[-1])
        labels = np.asarray(labels).reshape(-1)
    logits = _logits_array(logits)
    labels = np.asarray(labels)
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"expected labels of shape ({logits.shape[0]},), got {labels.shape}"
        )
    return float(np.mean(logits.argmax(axis=1) == labels))


def top_k_accuracy(logits, labels, k: int) -> float:
    """Fraction of samples whose label is among the top-``k`` scores."""
    logits = _logits_array(logits)
    labels = np.asarray(labels)
    if not 1 <= k <= logits.shape[1]:
        raise ValueError(f"k must be in [1, {logits.shape[1]}], got {k}")
    top_k = np.argsort(logits, axis=1)[:, -k:]
    return float(np.mean([label in row for label, row in zip(labels, top_k)]))


def confusion_matrix(logits, labels, num_classes: int) -> np.ndarray:
    """``(num_classes, num_classes)`` count matrix, rows = true class."""
    logits = _logits_array(logits)
    labels = np.asarray(labels, dtype=np.int64)
    predictions = logits.argmax(axis=1)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix
