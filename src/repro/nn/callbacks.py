"""Training callbacks and gradient utilities.

Production conveniences on top of the core :class:`~repro.nn.trainer.Trainer`:
early stopping on validation accuracy, best-weights checkpointing in
memory, and global-norm gradient clipping (useful for the deeper CIFAR
network).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .module import Module, Parameter
from .trainer import EpochStats

__all__ = ["EarlyStopping", "BestWeightsKeeper", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm.  Parameters without gradients are skipped.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = math.sqrt(sum(float(np.sum(g * g)) for g in grads))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for grad in grads:
            grad *= scale
    return total


class EarlyStopping:
    """Stop training when validation accuracy stops improving.

    Use as the trainer's ``on_epoch_end`` callback and consult
    :attr:`should_stop` inside a manual epoch loop, or let
    :meth:`wrap` raise ``StopIteration`` semantics via the trainer's
    callback (the Trainer itself keeps running; callers check the flag).

    >>> stopper = EarlyStopping(patience=3)
    >>> trainer = Trainer(..., on_epoch_end=stopper)
    """

    def __init__(self, patience: int = 5, min_delta: float = 0.0):
        if patience <= 0:
            raise ValueError(f"patience must be positive, got {patience}")
        if min_delta < 0:
            raise ValueError(f"min_delta must be >= 0, got {min_delta}")
        self.patience = patience
        self.min_delta = min_delta
        self.best_score: float | None = None
        self.best_epoch: int | None = None
        self.stale_epochs = 0
        self.should_stop = False

    def __call__(self, stats: EpochStats) -> None:
        score = stats.val_accuracy
        if score is None:
            raise ValueError(
                "EarlyStopping requires validation accuracy; pass "
                "val_loader to Trainer.fit"
            )
        if self.best_score is None or score > self.best_score + self.min_delta:
            self.best_score = score
            self.best_epoch = stats.epoch
            self.stale_epochs = 0
        else:
            self.stale_epochs += 1
            if self.stale_epochs >= self.patience:
                self.should_stop = True


class BestWeightsKeeper:
    """Keep an in-memory copy of the best-validation-accuracy weights.

    Compose with other callbacks by calling it from ``on_epoch_end``;
    restore at the end with :meth:`restore`.
    """

    def __init__(self, model: Module):
        self.model = model
        self.best_score: float | None = None
        self._best_state: dict[str, np.ndarray] | None = None

    def __call__(self, stats: EpochStats) -> None:
        score = stats.val_accuracy
        if score is None:
            raise ValueError(
                "BestWeightsKeeper requires validation accuracy; pass "
                "val_loader to Trainer.fit"
            )
        if self.best_score is None or score > self.best_score:
            self.best_score = score
            self._best_state = self.model.state_dict()

    def restore(self) -> None:
        """Load the best recorded weights back into the model."""
        if self._best_state is None:
            raise RuntimeError("no weights recorded yet")
        self.model.load_state_dict(self._best_state)
