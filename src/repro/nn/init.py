"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is reproducible end to end (the benchmark harness fixes one
seed per experiment).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "xavier_uniform",
    "xavier_normal",
    "he_uniform",
    "he_normal",
    "circulant_spectral",
]


def _check_fans(fan_in: int, fan_out: int) -> None:
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fans must be positive: fan_in={fan_in} fan_out={fan_out}")


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot uniform: U(-a, a) with ``a = sqrt(6 / (fan_in + fan_out))``."""
    _check_fans(fan_in, fan_out)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot normal: N(0, 2 / (fan_in + fan_out))."""
    _check_fans(fan_in, fan_out)
    return rng.normal(scale=np.sqrt(2.0 / (fan_in + fan_out)), size=shape)


def he_uniform(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming uniform for ReLU networks: U(-a, a), a = sqrt(6/fan_in)."""
    _check_fans(fan_in, 1)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def he_normal(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming normal for ReLU networks: N(0, 2/fan_in)."""
    _check_fans(fan_in, 1)
    return rng.normal(scale=np.sqrt(2.0 / fan_in), size=shape)


def circulant_spectral(
    grid_shape: tuple[int, int, int], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """Initializer for block-circulant weight grids ``(p, q, b)``.

    A circulant block built from N(0, s^2) entries contributes variance
    ``b * s^2`` per output (every defining-vector entry touches every
    output once), so the dense-equivalent He scaling requires
    ``s = sqrt(2 / fan_in)`` with ``fan_in`` the *logical* input width —
    the same criterion as :func:`he_normal` applied to the dense
    expansion.
    """
    if len(grid_shape) != 3:
        raise ValueError(f"grid_shape must be (p, q, b), got {grid_shape}")
    _check_fans(fan_in, 1)
    return rng.normal(scale=np.sqrt(2.0 / fan_in), size=grid_shape)
