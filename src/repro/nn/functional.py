"""Stateless neural-network operations on :class:`~repro.nn.tensor.Tensor`.

Includes the activation functions, the numerically-stable softmax family,
dropout, and the im2col/col2im machinery that reformulates tensor
convolution as matrix multiplication — the transformation shown in the
paper's Fig. 3 that lets CONV layers reuse the block-circulant FFT product.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "one_hot",
    "im2col",
    "col2im",
    "im2col_indices",
    "max_pool2d",
    "avg_pool2d",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit ``max(0, x)`` (paper section III-A)."""
    return as_tensor(x).maximum(0.0)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU: ``x`` for positive inputs, ``slope * x`` otherwise."""
    x = as_tensor(x)
    mask = x.data > 0.0
    out_data = np.where(mask, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(grad * np.where(mask, 1.0, negative_slope))

    return Tensor.from_op(out_data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid, computed stably for both input signs."""
    x = as_tensor(x)
    data = x.data
    out_data = np.where(
        data >= 0.0,
        1.0 / (1.0 + np.exp(-np.clip(data, 0.0, None))),
        np.exp(np.clip(data, None, 0.0)) / (1.0 + np.exp(np.clip(data, None, 0.0))),
    )

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(grad * out_data * (1.0 - out_data))

    return Tensor.from_op(out_data, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return as_tensor(x).tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        # d(softmax)/dx = diag(s) - s s^T applied along `axis`.
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        x.accumulate_grad(out_data * (grad - inner))

    return Tensor.from_op(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` via the log-sum-exp trick."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor.from_op(out_data, (x,), backward)


def dropout(
    x: Tensor,
    p: float,
    training: bool,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """Inverted dropout: zero with probability ``p``, scale by ``1/(1-p)``.

    Identity when ``training`` is False or ``p == 0``.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    x = as_tensor(x)
    if not training or p == 0.0:
        return x
    rng = rng or np.random.default_rng()
    keep = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(grad * keep)

    return Tensor.from_op(x.data * keep, (x,), backward)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(batch,)`` to a one-hot array ``(batch, classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= num_classes:
        raise ValueError(
            f"labels out of range [0, {num_classes}): "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes))
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


# ----------------------------------------------------------------------
# im2col / col2im (paper Fig. 3 reformulation)
# ----------------------------------------------------------------------
def im2col_indices(
    height: int,
    width: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Row/column gather indices for im2col.

    Returns ``(rows, cols, out_h, out_w)`` where ``rows`` and ``cols`` have
    shape ``(out_h * out_w, kernel * kernel)`` and index into the padded
    image; windows are laid out row-major, matching paper Eqn. 5's
    ``(x + i - 1, y + j - 1)`` sliding pattern.
    """
    if kernel <= 0 or stride <= 0 or padding < 0:
        raise ValueError(
            f"invalid geometry: kernel={kernel} stride={stride} padding={padding}"
        )
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel} does not fit in ({height}, {width}) "
            f"with padding {padding}"
        )
    base_r = np.repeat(np.arange(out_h) * stride, out_w)
    base_c = np.tile(np.arange(out_w) * stride, out_h)
    offset_r = np.repeat(np.arange(kernel), kernel)
    offset_c = np.tile(np.arange(kernel), kernel)
    rows = base_r[:, None] + offset_r[None, :]
    cols = base_c[:, None] + offset_c[None, :]
    return rows, cols, out_h, out_w


def im2col(
    images: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unfold ``(batch, C, H, W)`` images into convolution patch matrices.

    Output shape is ``(batch, out_h * out_w, C * kernel * kernel)``; column
    order is channel-major then kernel-row then kernel-column, i.e. column
    ``c*k*k + i*k + j`` holds input channel ``c`` at kernel offset
    ``(i, j)``.  This is the matrix ``X`` of paper Fig. 3 (one per batch
    element) so that convolution becomes ``Y = X @ F``.
    """
    images = np.asarray(images)
    if images.ndim != 4:
        raise ValueError(f"im2col expects (batch, C, H, W), got {images.shape}")
    batch, channels, height, width = images.shape
    rows, cols, out_h, out_w = im2col_indices(height, width, kernel, stride, padding)
    if padding:
        images = np.pad(
            images, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    # Gather: (batch, C, positions, k*k) -> (batch, positions, C, k*k).
    patches = images[:, :, rows, cols]
    patches = patches.transpose(0, 2, 1, 3)
    return patches.reshape(batch, out_h * out_w, channels * kernel * kernel)


def col2im(
    columns: np.ndarray,
    image_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patch matrices back to images.

    This is exactly the gradient of im2col, used by the CONV backward
    passes.  ``image_shape`` is the original ``(batch, C, H, W)``.
    """
    columns = np.asarray(columns)
    batch, channels, height, width = image_shape
    rows, cols, out_h, out_w = im2col_indices(height, width, kernel, stride, padding)
    expected = (batch, out_h * out_w, channels * kernel * kernel)
    if columns.shape != expected:
        raise ValueError(f"expected columns of shape {expected}, got {columns.shape}")
    patches = columns.reshape(batch, out_h * out_w, channels, kernel * kernel)
    patches = patches.transpose(0, 2, 1, 3)  # (batch, C, positions, k*k)
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding)
    )
    np.add.at(padded, (slice(None), slice(None), rows, cols), patches)
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows.

    Input ``(batch, C, H, W)``; gradient routes to each window's argmax.
    """
    x = as_tensor(x)
    stride = stride or kernel
    data = x.data
    if data.ndim != 4:
        raise ValueError(f"max_pool2d expects (batch, C, H, W), got {x.shape}")
    batch, channels, height, width = data.shape
    rows, cols, out_h, out_w = im2col_indices(height, width, kernel, stride)
    windows = data[:, :, rows, cols]  # (batch, C, positions, k*k)
    flat_argmax = windows.argmax(axis=-1)
    out_data = np.take_along_axis(
        windows, flat_argmax[..., None], axis=-1
    )[..., 0].reshape(batch, channels, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        grad_windows = np.zeros_like(windows)
        np.put_along_axis(
            grad_windows,
            flat_argmax[..., None],
            grad.reshape(batch, channels, -1)[..., None],
            axis=-1,
        )
        full = np.zeros_like(data)
        np.add.at(full, (slice(None), slice(None), rows, cols), grad_windows)
        x.accumulate_grad(full)

    return Tensor.from_op(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over square windows of ``(batch, C, H, W)`` input."""
    x = as_tensor(x)
    stride = stride or kernel
    data = x.data
    if data.ndim != 4:
        raise ValueError(f"avg_pool2d expects (batch, C, H, W), got {x.shape}")
    batch, channels, height, width = data.shape
    rows, cols, out_h, out_w = im2col_indices(height, width, kernel, stride)
    windows = data[:, :, rows, cols]
    out_data = windows.mean(axis=-1).reshape(batch, channels, out_h, out_w)
    window_size = kernel * kernel

    def backward(grad: np.ndarray) -> None:
        spread = np.broadcast_to(
            grad.reshape(batch, channels, -1)[..., None] / window_size,
            windows.shape,
        )
        full = np.zeros_like(data)
        np.add.at(full, (slice(None), slice(None), rows, cols), spread)
        x.accumulate_grad(full)

    return Tensor.from_op(out_data, (x,), backward)
