"""Dense fully-connected layer (the paper's uncompressed baseline).

Implements ``y = x @ W.T + b`` — the matrix-vector bottleneck the paper's
block-circulant layer replaces.  Its O(m*n) multiply count and ``m*n``
parameters are the reference points for every compression and speed
comparison.
"""

from __future__ import annotations

import numpy as np

from ..init import he_normal
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Linear"]


class Linear(Module):
    """Fully-connected layer mapping ``in_features`` to ``out_features``.

    Weight shape is ``(out_features, in_features)``; He-normal initialized
    for the ReLU networks used throughout the paper.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"features must be positive: in={in_features} out={out_features}"
            )
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            he_normal((out_features, in_features), fan_in=in_features, rng=rng)
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input with {self.in_features} features, "
                f"got shape {x.shape}"
            )
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, "
            f"out_features={self.out_features}, "
            f"bias={self.bias is not None})"
        )
