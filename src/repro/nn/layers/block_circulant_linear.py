"""Block-circulant fully-connected layer — the paper's core contribution.

Forward pass implements paper Algorithm 1 / Eqn. 3: the weight matrix is a
grid of circulant blocks, and each block product runs as
``IFFT(FFT(w) o FFT(x))``.  The backward pass implements the FFT form of
paper Algorithm 2 / Eqn. 4: both the weight gradient and the input
gradient are circular correlations, evaluated as conjugate products in the
frequency domain.  Computation is O((m n / b) log b) and storage O(m n / b)
versus the dense layer's O(m n) for both.

The weight half-spectra ``FFT(w_i)`` are cached in a
:class:`~repro.structured.spectral.SpectrumCache` keyed on the weight
Parameter's ``version`` counter: they are recomputed once per weight
update during training (optimizer steps rebind ``weight.data``) and
exactly once across an entire inference run.  Code that writes into
``weight.data`` in place must call ``weight.bump_version()`` to keep the
cache honest.
"""

from __future__ import annotations

import numpy as np

from ...structured import (
    BlockCirculantMatrix,
    SpectrumCache,
    block_circulant_backward_batch,
    block_circulant_forward_batch,
    blockify,
)
from ..init import circulant_spectral
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["BlockCirculantLinear"]


class BlockCirculantLinear(Module):
    """FFT-based fully-connected layer with a block-circulant weight matrix.

    Parameters
    ----------
    in_features, out_features:
        Logical layer dimensions (zero-padded internally to multiples of
        ``block_size``, per the paper's footnote).
    block_size:
        Circulant block dimension ``b`` — the compression knob.  ``b = 1``
        degenerates to an unstructured (dense) matrix; larger ``b``
        compresses harder.  The paper's single-block-row layout corresponds
        to ``block_size = min(in_features, out_features)``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        block_size: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"features must be positive: in={in_features} out={out_features}"
            )
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if block_size > max(in_features, out_features):
            raise ValueError(
                f"block_size {block_size} exceeds both layer dimensions "
                f"({in_features}, {out_features})"
            )
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.block_size = block_size
        self.block_rows = -(-out_features // block_size)
        self.block_cols = -(-in_features // block_size)
        self.weight = Parameter(
            circulant_spectral(
                (self.block_rows, self.block_cols, block_size),
                fan_in=in_features,
                rng=rng,
            )
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._spectrum_cache = SpectrumCache()

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input with {self.in_features} features, "
                f"got shape {x.shape}"
            )
        weight = self.weight
        batch = x.shape[0]
        b = self.block_size

        # --- paper Algorithm 1, batched over blocks and samples ---
        x_blocks = blockify(x.data, b)  # (batch, q, b)
        weight_spectra, spectra_fm = self._spectrum_cache.get_pair(weight)
        y_blocks = block_circulant_forward_batch(
            weight_spectra, x_blocks, weight_fm=spectra_fm
        )
        out_data = y_blocks.reshape(batch, -1)[:, : self.out_features]

        def backward(grad: np.ndarray) -> None:
            # --- paper Algorithm 2: correlations in the frequency domain ---
            grad_blocks = blockify(grad, b)  # zero-pads the ragged tail
            grad_w, grad_x_blocks = block_circulant_backward_batch(
                weight_spectra, x_blocks, grad_blocks
            )
            if weight.requires_grad:
                weight.accumulate_grad(grad_w)
            if x.requires_grad:
                grad_x = grad_x_blocks.reshape(batch, -1)[:, : self.in_features]
                x.accumulate_grad(grad_x)

        out = Tensor.from_op(out_data, (x, weight), backward)
        if self.bias is not None:
            out = out + self.bias
        return out

    # ------------------------------------------------------------------
    def weight_spectra(self, dtype=None) -> tuple[np.ndarray, np.ndarray]:
        """``(spectra, freq_major)`` of the current weights at ``dtype``.

        The read-only cached pair the frozen runtime snapshots at freeze
        time; ``dtype`` selects the spectrum precision (complex64 for an
        fp32 :class:`~repro.precision.PrecisionPolicy`, ``None`` for the
        native complex128).
        """
        return self._spectrum_cache.get_pair(self.weight, dtype)

    def as_matrix(self) -> BlockCirculantMatrix:
        """View the current weights as a :class:`BlockCirculantMatrix`."""
        return BlockCirculantMatrix(
            self.weight.data.copy(),
            rows=self.out_features,
            cols=self.in_features,
        )

    def dense_weight(self) -> np.ndarray:
        """Dense ``(out, in)`` expansion of the structured weights."""
        return self.as_matrix().to_dense()

    @classmethod
    def from_dense(
        cls,
        weight: np.ndarray,
        block_size: int,
        bias: np.ndarray | None = None,
    ) -> "BlockCirculantLinear":
        """Build a layer by projecting a dense ``(out, in)`` weight matrix.

        Used when converting a pre-trained dense network for fine-tuning.
        """
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ValueError(f"expected 2-D weight, got shape {weight.shape}")
        out_features, in_features = weight.shape
        layer = cls(
            in_features, out_features, block_size, bias=bias is not None
        )
        projected = BlockCirculantMatrix.from_dense(weight, block_size)
        layer.weight.data = projected.block_weights
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (out_features,):
                raise ValueError(
                    f"expected bias of shape ({out_features},), got {bias.shape}"
                )
            layer.bias.data = bias.copy()
        return layer

    @property
    def compression_ratio(self) -> float:
        """Dense parameter count over stored parameter count (weights only)."""
        dense = self.in_features * self.out_features
        return dense / self.weight.size

    def __repr__(self) -> str:
        return (
            f"BlockCirculantLinear(in_features={self.in_features}, "
            f"out_features={self.out_features}, block_size={self.block_size}, "
            f"bias={self.bias is not None})"
        )
