"""Neural-network layers.

The two ``BlockCirculant*`` layers are the paper's contribution; the rest
form the dense baseline and the supporting cast (activations, pooling,
normalization, dropout).
"""

from .batchnorm import BatchNorm1d, BatchNorm2d
from .block_circulant_conv2d import BlockCirculantConv2d
from .block_circulant_linear import BlockCirculantLinear
from .common import (
    AvgPool2d,
    Dropout,
    Flatten,
    LeakyReLU,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from .conv2d import Conv2d
from .fftnet1d import FFTLayer1d, Pointwise1d, seq_matmul, shift_right
from .linear import Linear

__all__ = [
    "Linear",
    "FFTLayer1d",
    "Pointwise1d",
    "seq_matmul",
    "shift_right",
    "BlockCirculantLinear",
    "Conv2d",
    "BlockCirculantConv2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dropout",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
]
