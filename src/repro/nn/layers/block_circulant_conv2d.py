"""Block-circulant 2-D convolution (paper section IV-B).

The paper generalizes the block-circulant structure to the CONV weight
tensor ``F(i, j, c, p)``: for each kernel position ``(i, j)`` the
channel-by-filter slice is circulant (paper Eqn. 6).  After the im2col
reformulation of Fig. 3, the flattened weight matrix ``F`` of shape
``(C*r*r, P)`` is block-circulant — provided the patch columns are laid
out kernel-position-major with channels fastest (the paper's row index
``a = c + C(i-1) + C*r*(j-1)``).  This layer performs that column
permutation and then runs the same frequency-domain block product as the
FC layer, reducing the CONV complexity from ``O(W H r^2 C P)`` to
``O(W H Q log Q)`` with ``Q = max(r^2 C, P)``.
"""

from __future__ import annotations

import numpy as np

from ...structured import (
    SpectrumCache,
    block_circulant_backward_batch,
    block_circulant_forward_batch,
    block_circulant_to_dense,
)
from ..functional import col2im, im2col
from ..init import circulant_spectral
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["BlockCirculantConv2d"]


class BlockCirculantConv2d(Module):
    """2-D convolution whose per-kernel-position weight slices are circulant.

    Parameters
    ----------
    in_channels, out_channels, kernel_size, stride, padding:
        As in :class:`~repro.nn.layers.conv2d.Conv2d`.
    block_size:
        Circulant block dimension ``b``.  Blocks tile the channel axis
        within each kernel position and the filter axis, so each
        ``F(i, j, :, :)`` slice is block-circulant exactly as Eqn. 6
        requires; channels and filters are zero-padded to multiples of
        ``b``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        block_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0 or padding < 0:
            raise ValueError(
                "invalid BlockCirculantConv2d geometry: "
                f"C={in_channels} P={out_channels} r={kernel_size} "
                f"stride={stride} padding={padding}"
            )
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if block_size > max(in_channels, out_channels):
            raise ValueError(
                f"block_size {block_size} exceeds channel counts "
                f"({in_channels}, {out_channels})"
            )
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.block_size = block_size
        # Block grid: p tiles the P filters; q tiles (kernel positions x
        # padded channels) so no block straddles two kernel positions.
        self.channel_blocks = -(-in_channels // block_size)
        self.filter_blocks = -(-out_channels // block_size)
        self.block_rows = self.filter_blocks
        self.block_cols = kernel_size * kernel_size * self.channel_blocks
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            circulant_spectral(
                (self.block_rows, self.block_cols, block_size),
                fan_in=fan_in,
                rng=rng,
            )
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        # FFT(w_i) memoized per weight version (see block_circulant_linear).
        self._spectrum_cache = SpectrumCache()

    # ------------------------------------------------------------------
    # Patch layout helpers
    # ------------------------------------------------------------------
    def _fold_patches(self, cols: np.ndarray) -> np.ndarray:
        """im2col output -> position-major, channel-padded block layout.

        ``cols`` is ``(batch, L, C*k*k)`` with channel-major columns; the
        result is ``(batch * L, q, b)`` where consecutive blocks cover the
        padded channels of kernel position (0,0), then (0,1), ...
        """
        batch, positions, _ = cols.shape
        k2 = self.kernel_size * self.kernel_size
        b = self.block_size
        padded_c = self.channel_blocks * b
        # (batch, L, C, k*k) -> (batch, L, k*k, C)
        by_position = cols.reshape(
            batch, positions, self.in_channels, k2
        ).transpose(0, 1, 3, 2)
        if padded_c != self.in_channels:
            padded = np.zeros((batch, positions, k2, padded_c))
            padded[..., : self.in_channels] = by_position
            by_position = padded
        return by_position.reshape(batch * positions, self.block_cols, b)

    def _unfold_patches(
        self, blocks: np.ndarray, batch: int, positions: int
    ) -> np.ndarray:
        """Adjoint of :meth:`_fold_patches` (used for the input gradient)."""
        k2 = self.kernel_size * self.kernel_size
        b = self.block_size
        padded_c = self.channel_blocks * b
        by_position = blocks.reshape(batch, positions, k2, padded_c)
        by_position = by_position[..., : self.in_channels]
        return by_position.transpose(0, 1, 3, 2).reshape(
            batch, positions, self.in_channels * k2
        )

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(
                f"BlockCirculantConv2d expects (batch, C, H, W), got {x.shape}"
            )
        if x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {x.shape[1]}"
            )
        weight = self.weight
        k, stride, padding, b = (
            self.kernel_size,
            self.stride,
            self.padding,
            self.block_size,
        )
        batch, _, height, width = x.shape
        out_h = (height + 2 * padding - k) // stride + 1
        out_w = (width + 2 * padding - k) // stride + 1
        positions = out_h * out_w

        cols = im2col(x.data, k, stride, padding)  # (batch, L, C*k*k)
        x_blocks = self._fold_patches(cols)  # (batch*L, q, b)
        weight_spectra, spectra_fm = self._spectrum_cache.get_pair(weight)
        y_blocks = block_circulant_forward_batch(
            weight_spectra, x_blocks, weight_fm=spectra_fm
        )
        y_flat = y_blocks.reshape(batch * positions, -1)[:, : self.out_channels]
        out_data = (
            y_flat.reshape(batch, positions, self.out_channels)
            .transpose(0, 2, 1)
            .reshape(batch, self.out_channels, out_h, out_w)
        )

        def backward(grad: np.ndarray) -> None:
            grad_flat = grad.reshape(batch, self.out_channels, positions).transpose(
                0, 2, 1
            )  # (batch, L, P)
            grad_blocks = np.zeros((batch * positions, self.block_rows, b))
            grad_blocks.reshape(batch * positions, -1)[
                :, : self.out_channels
            ] = grad_flat.reshape(batch * positions, self.out_channels)
            grad_w, grad_x_blocks = block_circulant_backward_batch(
                weight_spectra, x_blocks, grad_blocks
            )
            if weight.requires_grad:
                weight.accumulate_grad(grad_w)
            if x.requires_grad:
                grad_cols = self._unfold_patches(grad_x_blocks, batch, positions)
                x.accumulate_grad(
                    col2im(grad_cols, x.data.shape, k, stride, padding)
                )

        out = Tensor.from_op(out_data, (x, weight), backward)
        if self.bias is not None:
            out = out + self.bias.reshape(1, self.out_channels, 1, 1)
        return out

    # ------------------------------------------------------------------
    def weight_spectra(self, dtype=None) -> tuple[np.ndarray, np.ndarray]:
        """``(spectra, freq_major)`` of the current weights at ``dtype``.

        Same contract as
        :meth:`~repro.nn.layers.block_circulant_linear.BlockCirculantLinear.weight_spectra`:
        the dtype-keyed cached pair the frozen runtime snapshots.
        """
        return self._spectrum_cache.get_pair(self.weight, dtype)

    def dense_weight(self) -> np.ndarray:
        """Expand to an equivalent dense ``(P, C, r, r)`` filter bank.

        The dense Conv2d applying this bank produces identical outputs —
        the equivalence the tests and the Fig. 3 benchmark check.
        """
        k, b = self.kernel_size, self.block_size
        dense = block_circulant_to_dense(self.weight.data)  # (p*b, q*b)
        dense = dense[: self.out_channels]  # trim filter padding
        padded_c = self.channel_blocks * b
        # Columns: position-major (k*k groups of padded channels).
        per_position = dense.reshape(self.out_channels, k * k, padded_c)
        per_position = per_position[..., : self.in_channels]
        # -> (P, C, r, r) with kernel index (i, j) = divmod(position, k)
        return per_position.transpose(0, 2, 1).reshape(
            self.out_channels, self.in_channels, k, k
        )

    def output_shape(self, height: int, width: int) -> tuple[int, int, int]:
        """``(P, out_h, out_w)`` for an input of spatial size (H, W)."""
        k, s, p = self.kernel_size, self.stride, self.padding
        return (
            self.out_channels,
            (height + 2 * p - k) // s + 1,
            (width + 2 * p - k) // s + 1,
        )

    @property
    def compression_ratio(self) -> float:
        """Dense filter parameter count over stored parameter count."""
        dense = self.out_channels * self.in_channels * self.kernel_size**2
        return dense / self.weight.size

    def __repr__(self) -> str:
        return (
            f"BlockCirculantConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, block_size={self.block_size}, "
            f"stride={self.stride}, padding={self.padding}, "
            f"bias={self.bias is not None})"
        )
