"""Small stateless / lightly-stateful layers: activations, dropout,
flatten, pooling, and softmax modules wrapping :mod:`repro.nn.functional`.
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..module import Module
from ..tensor import Tensor

__all__ = [
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dropout",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
]


class ReLU(Module):
    """Rectified linear unit layer (paper section III-A)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)

    def __repr__(self) -> str:
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class Sigmoid(Module):
    """Logistic sigmoid layer."""

    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    """Hyperbolic tangent layer."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)

    def __repr__(self) -> str:
        return "Tanh()"


class Softmax(Module):
    """Softmax output layer (the paper's final prediction layer).

    Training normally uses logits + :class:`CrossEntropyLoss` directly;
    this module exists for the deployed inference engine, which reports
    class probabilities.
    """

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(x, axis=self.axis)

    def __repr__(self) -> str:
        return f"Softmax(axis={self.axis})"


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, rng=self.rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Flatten(Module):
    """Flatten all axes after the batch axis: (batch, ...) -> (batch, n)."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim < 2:
            raise ValueError(f"Flatten expects a batched input, got {x.shape}")
        return x.reshape(x.shape[0], -1)

    def __repr__(self) -> str:
        return "Flatten()"


class MaxPool2d(Module):
    """Max pooling over square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2d(Module):
    """Average pooling over square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(kernel_size={self.kernel_size}, stride={self.stride})"
