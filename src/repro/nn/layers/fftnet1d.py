"""Causal dilated sequence layers (the FFTNet-style streaming stack).

An :class:`FFTLayer1d` is the radix-2 building block of an FFTNet
vocoder: a two-tap dilated causal convolution,

    ``y[t] = W_r x[t] + W_l x[t - d] + b``

with ``x[t] = 0`` for ``t < 0`` (zero left padding keeps the layer
strictly causal).  Stacking layers with dilations ``2^(depth-1) ... 1``
gives a receptive field of ``1 + sum(dilations)`` past samples — the
classic exponential-context construction.  :class:`Pointwise1d` is the
per-timestep ``1x1`` projection (``W_o`` in the FFTNet papers).

Both layers run **time-major**: inputs are ``(batch, T, channels)``, so
each timestep is one row and the plan compiler can flatten the whole
sequence into a single row-major GEMM.

Row-stable matmul
-----------------

Streaming inference (``repro.streaming``) recomputes *suffixes* of the
same sequence in chunks of arbitrary size and promises bitwise-identical
results to the full-sequence batch plan.  BLAS GEMMs do not offer that:
``(A @ W)[i]`` changes in the last bits with the number of rows in ``A``
(gemv dispatch at M=1, kernel blocking elsewhere).  :func:`seq_matmul`
is the shared kernel that does offer it — a non-optimized ``np.einsum``
whose per-row accumulation order depends only on the reduction length,
so any row-chunking of the input produces identical bits.  Every
consumer that participates in the streaming parity contract (this
module's forwards, the batch plan ops, the incremental stream plan) must
go through it.
"""

from __future__ import annotations

import numpy as np

from ..init import he_normal
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["FFTLayer1d", "Pointwise1d", "seq_matmul", "shift_right"]


def seq_matmul(x: np.ndarray, weight_t: np.ndarray, out=None) -> np.ndarray:
    """``x @ weight_t`` with per-row results independent of row count.

    ``x`` is ``(rows, in)``; ``weight_t`` is ``(in, out)``.  Implemented
    as a non-optimized einsum so the accumulation order per output
    element is fixed by the reduction length alone — chunking ``x`` into
    any row blocks (including single rows) reproduces the full-matrix
    result bitwise, which BLAS ``@`` does not guarantee.
    """
    if out is None:
        return np.einsum("mc,co->mo", x, weight_t)
    return np.einsum("mc,co->mo", x, weight_t, out=out)


def shift_right(x: np.ndarray, shift: int) -> np.ndarray:
    """Shift a time-major ``(batch, T, C)`` array right by ``shift``.

    Rows ``t < shift`` become zero — the causal zero-padding the dilated
    left tap reads before the sequence starts.
    """
    if shift == 0:
        return x
    shifted = np.zeros_like(x)
    if x.shape[1] > shift:
        shifted[:, shift:] = x[:, :-shift]
    return shifted


def _check_seq_input(x: Tensor, in_channels: int, name: str) -> Tensor:
    if x.ndim == 2:  # (T, C) single sequence
        x = x.reshape(1, *x.shape)
    if x.ndim != 3 or x.shape[-1] != in_channels:
        raise ValueError(
            f"{name} expects (batch, T, {in_channels}) time-major input, "
            f"got shape {x.shape}"
        )
    return x


class FFTLayer1d(Module):
    """Two-tap causal dilated layer: ``y[t] = W_r x[t] + W_l x[t-d] + b``.

    Parameters
    ----------
    in_channels, out_channels:
        Channel widths; weights are ``(out_channels, in_channels)`` per
        tap, matching the ``Linear`` convention.
    dilation:
        Distance ``d >= 1`` of the left tap.  A stack with dilations
        ``2^(depth-1), ..., 2, 1`` sees ``1 + sum(d)`` past samples.
    """

    #: Marks time-major sequence layers for shape inference.
    sequence_layer = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        dilation: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError(
                f"channels must be positive: in={in_channels} "
                f"out={out_channels}"
            )
        if dilation < 1:
            raise ValueError(f"dilation must be >= 1, got {dilation}")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.dilation = int(dilation)
        # Two taps share the fan-in (the layer reads 2*in values per
        # output), mirroring a kernel-2 conv initialization.
        fan_in = 2 * in_channels
        self.weight_r = Parameter(
            he_normal((out_channels, in_channels), fan_in=fan_in, rng=rng)
        )
        self.weight_l = Parameter(
            he_normal((out_channels, in_channels), fan_in=fan_in, rng=rng)
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = _check_seq_input(x, self.in_channels, "FFTLayer1d")
        xd = x.data
        batch, steps, _ = xd.shape
        xl = shift_right(xd, self.dilation)
        wr_t = np.ascontiguousarray(self.weight_r.data.T)
        wl_t = np.ascontiguousarray(self.weight_l.data.T)
        out_data = seq_matmul(xd.reshape(-1, self.in_channels), wr_t)
        out_data += seq_matmul(xl.reshape(-1, self.in_channels), wl_t)
        out_data = out_data.reshape(batch, steps, self.out_channels)

        weight_r, weight_l, dilation = self.weight_r, self.weight_l, self.dilation

        def backward(grad: np.ndarray) -> None:
            g2 = grad.reshape(-1, self.out_channels)
            weight_r.accumulate_grad(g2.T @ xd.reshape(-1, self.in_channels))
            weight_l.accumulate_grad(g2.T @ xl.reshape(-1, self.in_channels))
            gx = grad @ weight_r.data
            gl = grad @ weight_l.data
            # xl[t] = x[t-d]  =>  dL/dx[t] += gl[t+d]
            if steps > dilation:
                gx[:, : steps - dilation] += gl[:, dilation:]
            x.accumulate_grad(gx)

        out = Tensor.from_op(out_data, (x, weight_r, weight_l), backward)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"FFTLayer1d(in_channels={self.in_channels}, "
            f"out_channels={self.out_channels}, dilation={self.dilation}, "
            f"bias={self.bias is not None})"
        )


class Pointwise1d(Module):
    """Per-timestep projection: ``y[t] = W x[t] + b`` (a 1x1 conv)."""

    sequence_layer = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError(
                f"channels must be positive: in={in_channels} "
                f"out={out_channels}"
            )
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.weight = Parameter(
            he_normal((out_channels, in_channels), fan_in=in_channels, rng=rng)
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = _check_seq_input(x, self.in_channels, "Pointwise1d")
        xd = x.data
        batch, steps, _ = xd.shape
        weight_t = np.ascontiguousarray(self.weight.data.T)
        out_data = seq_matmul(xd.reshape(-1, self.in_channels), weight_t)
        out_data = out_data.reshape(batch, steps, self.out_channels)

        weight = self.weight

        def backward(grad: np.ndarray) -> None:
            g2 = grad.reshape(-1, self.out_channels)
            weight.accumulate_grad(g2.T @ xd.reshape(-1, self.in_channels))
            x.accumulate_grad(grad @ weight.data)

        out = Tensor.from_op(out_data, (x, weight), backward)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Pointwise1d(in_channels={self.in_channels}, "
            f"out_channels={self.out_channels}, "
            f"bias={self.bias is not None})"
        )
