"""Batch normalization layers.

Not used by the paper's three evaluated architectures, but a standard part
of any deployable DNN substrate; training the deeper CIFAR network is far
more stable with it available.  Running statistics follow the usual
exponential-moving-average scheme and are used verbatim in eval mode.
"""

from __future__ import annotations

import numpy as np

from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["BatchNorm1d", "BatchNorm2d"]


class _BatchNormBase(Module):
    """Shared implementation; subclasses fix which axes are reduced."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if not 0.0 < momentum <= 1.0:
            raise ValueError(f"momentum must be in (0, 1], got {momentum}")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def _axes(self, x: Tensor) -> tuple[int, ...]:
        raise NotImplementedError

    def _shape(self, x: Tensor) -> tuple[int, ...]:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        axes = self._axes(x)
        shape = self._shape(x)
        gamma = self.gamma.reshape(shape)
        beta = self.beta.reshape(shape)
        if self.training:
            mean = x.data.mean(axis=axes)
            var = x.data.var(axis=axes)
            self.running_mean = (
                (1.0 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1.0 - self.momentum) * self.running_var + self.momentum * var
            )
            # Normalize through the graph so gradients flow into the batch
            # statistics as well as gamma/beta.
            mean_t = x.mean(axis=axes, keepdims=True)
            centered = x - mean_t
            var_t = (centered * centered).mean(axis=axes, keepdims=True)
            normalized = centered / ((var_t + self.eps) ** 0.5)
        else:
            running_mean = self.running_mean.reshape(shape)
            running_std = np.sqrt(self.running_var + self.eps).reshape(shape)
            normalized = (x - running_mean) / running_std
        return normalized * gamma + beta


class BatchNorm1d(_BatchNormBase):
    """Batch normalization over (batch, features) inputs."""

    def _axes(self, x: Tensor) -> tuple[int, ...]:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (batch, features), got {x.shape}")
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features, got {x.shape[1]}"
            )
        return (0,)

    def _shape(self, x: Tensor) -> tuple[int, ...]:
        return (1, self.num_features)

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.num_features})"


class BatchNorm2d(_BatchNormBase):
    """Batch normalization over (batch, C, H, W) inputs, per channel."""

    def _axes(self, x: Tensor) -> tuple[int, ...]:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (batch, C, H, W), got {x.shape}")
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} channels, got {x.shape[1]}"
            )
        return (0, 2, 3)

    def _shape(self, x: Tensor) -> tuple[int, ...]:
        return (1, self.num_features, 1, 1)

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"
