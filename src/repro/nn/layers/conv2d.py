"""Dense 2-D convolution layer via the im2col reformulation.

Implements paper Eqn. 5 exactly: sliding cross-correlation of a
``(P, C, r, r)`` filter bank over ``(batch, C, H, W)`` inputs.  The
computation is carried out as the matrix product ``Y = X @ F`` of
paper Fig. 3, with ``X`` the im2col patch matrix — the same reformulation
the block-circulant CONV layer accelerates.
"""

from __future__ import annotations

import numpy as np

from ..functional import col2im, im2col
from ..init import he_normal
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Conv2d"]


class Conv2d(Module):
    """2-D convolution with square kernels.

    Parameters
    ----------
    in_channels, out_channels:
        ``C`` and ``P`` in the paper's tensor notation.
    kernel_size:
        ``r``; filters are ``r x r``.
    stride, padding:
        Standard geometry knobs (the paper uses stride 1, no padding; both
        are supported for the wider model zoo).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0 or padding < 0:
            raise ValueError(
                "invalid Conv2d geometry: "
                f"C={in_channels} P={out_channels} r={kernel_size} "
                f"stride={stride} padding={padding}"
            )
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            he_normal(
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in=fan_in,
                rng=rng,
            )
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"Conv2d expects (batch, C, H, W), got {x.shape}")
        if x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {x.shape[1]}"
            )
        weight = self.weight
        k, stride, padding = self.kernel_size, self.stride, self.padding
        batch, _, height, width = x.shape
        out_h = (height + 2 * padding - k) // stride + 1
        out_w = (width + 2 * padding - k) // stride + 1

        cols = im2col(x.data, k, stride, padding)  # (batch, L, C*k*k)
        flat_weight = weight.data.reshape(self.out_channels, -1)  # (P, C*k*k)
        out_cols = cols @ flat_weight.T  # (batch, L, P)
        out_data = out_cols.transpose(0, 2, 1).reshape(
            batch, self.out_channels, out_h, out_w
        )

        def backward(grad: np.ndarray) -> None:
            grad_cols = grad.reshape(batch, self.out_channels, -1).transpose(
                0, 2, 1
            )  # (batch, L, P)
            if weight.requires_grad:
                grad_flat = np.einsum("nlp,nlc->pc", grad_cols, cols)
                weight.accumulate_grad(grad_flat.reshape(weight.data.shape))
            if x.requires_grad:
                grad_patches = grad_cols @ flat_weight  # (batch, L, C*k*k)
                x.accumulate_grad(
                    col2im(grad_patches, x.data.shape, k, stride, padding)
                )

        out = Tensor.from_op(out_data, (x, weight), backward)
        if self.bias is not None:
            out = out + self.bias.reshape(1, self.out_channels, 1, 1)
        return out

    def output_shape(self, height: int, width: int) -> tuple[int, int, int]:
        """``(P, out_h, out_w)`` for an input of spatial size (H, W)."""
        k, s, p = self.kernel_size, self.stride, self.padding
        return (
            self.out_channels,
            (height + 2 * p - k) // s + 1,
            (width + 2 * p - k) // s + 1,
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, bias={self.bias is not None})"
        )
