"""Reverse-mode automatic differentiation tensor.

PyTorch is not available in this offline environment, so the DNN substrate
the paper's layers sit on is implemented here: a numpy-backed ``Tensor``
with a dynamic computation graph and reverse-mode backpropagation.  The
surface intentionally mirrors the small subset of the familiar API the
rest of the package needs (arithmetic, matmul, reductions, reshaping,
indexing), plus :meth:`Tensor.from_op` for layers that implement custom
forward/backward pairs (the FFT-based block-circulant products, im2col
convolution, pooling).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "as_tensor", "unbroadcast"]


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes.

    Numpy broadcasting replicates values along new or size-1 axes in the
    forward pass; the adjoint of replication is summation, applied here.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` (Tensor, array, or scalar) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A numpy array plus gradient bookkeeping.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts; floats are kept at float64.
    requires_grad:
        When True, gradients flow into :attr:`grad` during
        :meth:`backward`.

    Every tensor carries a monotonic :attr:`version` counter used by
    derived-value caches (the spectral weight cache of the block-circulant
    layers keys on it).  **Caching rule:** any mutation of :attr:`data`
    must advance the version.  Assigning ``tensor.data = array`` does so
    automatically (optimizer steps, ``load_state_dict``, and dense
    conversion all mutate this way); code that writes *into* the array
    in place (``tensor.data[...] = x``) must call :meth:`bump_version`
    afterwards, or stale cached spectra will be served.
    """

    __slots__ = ("_data", "requires_grad", "grad", "_parents", "_backward_fn", "_version")

    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False):
        array = np.asarray(data)
        if array.dtype.kind in "uib":
            array = array.astype(np.float64)
        elif array.dtype == np.float32:
            array = array.astype(np.float64)
        self._data: np.ndarray = array
        self._version: int = 0
        self.requires_grad: bool = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._backward_fn: Callable[[np.ndarray], None] | None = None

    # ------------------------------------------------------------------
    # Data access and version tracking
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The underlying array."""
        return self._data

    @data.setter
    def data(self, value) -> None:
        self._data = np.asarray(value)
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic mutation counter; advances on every ``data`` rebind."""
        return self._version

    def bump_version(self) -> None:
        """Mark the tensor as mutated after in-place writes to ``data``."""
        self._version += 1

    # ------------------------------------------------------------------
    # Construction of graph nodes
    # ------------------------------------------------------------------
    @classmethod
    def from_op(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a graph node from a custom operation.

        ``backward_fn`` receives the upstream gradient (an ndarray with the
        node's shape) and must call :meth:`accumulate_grad` on each parent
        that requires a gradient.  The node requires grad iff any parent
        does; otherwise the graph edge is dropped entirely.
        """
        node = cls(data)
        if any(p.requires_grad for p in parents):
            node.requires_grad = True
            node._parents = tuple(parents)
            node._backward_fn = backward_fn
        return node

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        grad = unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """Dtype of the underlying array."""
        return self.data.dtype

    def item(self) -> float:
        """Python scalar for a one-element tensor."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy); treat as read-only."""
        return self.data

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Reset the gradient buffer."""
        self.grad = None

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Backpropagation
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this node through the recorded graph.

        ``grad`` defaults to 1 for scalar outputs (the usual loss case)
        and must be supplied explicitly otherwise.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "grad must be provided for non-scalar backward "
                    f"(shape {self.shape})"
                )
            grad = np.ones_like(self.data)
        self.accumulate_grad(np.asarray(grad, dtype=np.float64))

        for node in reversed(self._topological_order()):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    def _topological_order(self) -> list["Tensor"]:
        """Nodes reachable from self, parents before children."""
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad)
            other.accumulate_grad(grad)

        return Tensor.from_op(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(-grad)

        return Tensor.from_op(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * other.data)
            other.accumulate_grad(grad * self.data)

        return Tensor.from_op(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad / other.data)
            other.accumulate_grad(-grad * self.data / (other.data**2))

        return Tensor.from_op(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * exponent * self.data ** (exponent - 1))

        return Tensor.from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * out_data)

        return Tensor.from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad / self.data)

        return Tensor.from_op(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * 0.5 / out_data)

        return Tensor.from_op(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * (1.0 - out_data**2))

        return Tensor.from_op(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient 0 at the kink)."""

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * np.sign(self.data))

        return Tensor.from_op(np.abs(self.data), (self,), backward)

    def maximum(self, threshold: float) -> "Tensor":
        """Elementwise ``max(x, threshold)`` — ReLU is ``maximum(0.0)``."""
        mask = self.data > threshold
        out_data = np.where(mask, self.data, threshold)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad * mask)

        return Tensor.from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self.accumulate_grad(np.outer(grad, other.data))
                else:
                    self.accumulate_grad(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other.accumulate_grad(np.outer(self.data, grad))
                else:
                    other.accumulate_grad(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor.from_op(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes by default)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self.accumulate_grad(np.broadcast_to(expanded, self.data.shape))

        return Tensor.from_op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``."""
        count = self.data.size if axis is None else np.prod(
            [self.data.shape[a] for a in np.atleast_1d(axis)]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; gradient flows to the (first) argmax."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded_out = out_data
            expanded_grad = grad
            if axis is not None and not keepdims:
                expanded_out = np.expand_dims(out_data, axis)
                expanded_grad = np.expand_dims(grad, axis)
            mask = self.data == expanded_out
            # Split gradient between ties to keep the op well-defined.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self.accumulate_grad(mask * expanded_grad / counts)

        return Tensor.from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """Reshape, gradient reshapes back."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(grad.reshape(self.data.shape))

        return Tensor.from_op(out_data, (self,), backward)

    def transpose(self, axes: Iterable[int] | None = None) -> "Tensor":
        """Permute axes (reverse by default)."""
        axes = tuple(axes) if axes is not None else tuple(
            reversed(range(self.data.ndim))
        )
        out_data = np.transpose(self.data, axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self.accumulate_grad(np.transpose(grad, inverse))

        return Tensor.from_op(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        """Transpose of a 2-D tensor."""
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self.accumulate_grad(full)

        return Tensor.from_op(out_data, (self,), backward)
