"""Neural-network substrate and the paper's block-circulant layers.

* :class:`Tensor` — numpy-backed reverse-mode autodiff,
* :class:`Module` / :class:`Sequential` — composition,
* layers — dense baselines plus :class:`BlockCirculantLinear` and
  :class:`BlockCirculantConv2d` (the paper's contribution),
* losses, optimizers, metrics, :class:`Trainer`.
"""

from . import functional
from .callbacks import BestWeightsKeeper, EarlyStopping, clip_grad_norm
from .convert import ConversionRow, conversion_report, convert_to_block_circulant
from .layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    Dropout,
    FFTLayer1d,
    Flatten,
    LeakyReLU,
    Linear,
    Pointwise1d,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from .losses import CrossEntropyLoss, MSELoss, NLLLoss
from .metrics import accuracy, confusion_matrix, top_k_accuracy
from .module import Module, Parameter, Sequential
from .optim import SGD, Adam, ExponentialLR, StepLR
from .tensor import Tensor, as_tensor
from .trainer import EpochStats, Trainer, TrainingHistory, predict_in_batches

__all__ = [
    "functional",
    "Tensor",
    "as_tensor",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "BlockCirculantLinear",
    "Conv2d",
    "BlockCirculantConv2d",
    "FFTLayer1d",
    "Pointwise1d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dropout",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "CrossEntropyLoss",
    "MSELoss",
    "NLLLoss",
    "SGD",
    "Adam",
    "StepLR",
    "ExponentialLR",
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "EpochStats",
    "Trainer",
    "TrainingHistory",
    "predict_in_batches",
    "EarlyStopping",
    "BestWeightsKeeper",
    "clip_grad_norm",
    "convert_to_block_circulant",
    "conversion_report",
    "ConversionRow",
]
