"""Loss functions.

Cross-entropy (on logits, fused with log-softmax for stability) is the
training objective for all three paper architectures; MSE and NLL round
out the substrate.
"""

from __future__ import annotations

import numpy as np

from .functional import log_softmax
from .module import Module
from .tensor import Tensor, as_tensor

__all__ = ["CrossEntropyLoss", "MSELoss", "NLLLoss"]


def _check_labels(labels: np.ndarray, batch: int, classes: int) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.shape != (batch,):
        raise ValueError(f"expected labels of shape ({batch},), got {labels.shape}")
    labels = labels.astype(np.int64)
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= classes:
        raise ValueError(
            f"labels out of range [0, {classes}): [{labels.min()}, {labels.max()}]"
        )
    return labels


class CrossEntropyLoss(Module):
    """Mean cross-entropy between logits and integer class labels.

    Equivalent to ``NLLLoss(log_softmax(logits))`` but fused, so the
    gradient is the numerically-friendly ``softmax(logits) - onehot``.
    """

    def forward(self, logits: Tensor, labels: np.ndarray | None = None) -> Tensor:
        raise NotImplementedError("call the loss as loss(logits, labels)")

    def __call__(self, logits, labels) -> Tensor:
        logits = as_tensor(logits)
        if logits.ndim == 3:
            # Sequence logits (batch, T, classes) with per-position
            # labels (batch, T): every position is one classification.
            logits = logits.reshape(-1, logits.shape[-1])
            labels = np.asarray(labels).reshape(-1)
        if logits.ndim != 2:
            raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
        batch, classes = logits.shape
        labels = _check_labels(labels, batch, classes)
        log_probs = log_softmax(logits, axis=-1)
        picked = log_probs[np.arange(batch), labels]
        return -picked.mean()


class NLLLoss(Module):
    """Mean negative log-likelihood of pre-computed log-probabilities."""

    def __call__(self, log_probs, labels) -> Tensor:
        log_probs = as_tensor(log_probs)
        if log_probs.ndim != 2:
            raise ValueError(
                f"expected (batch, classes) log-probs, got {log_probs.shape}"
            )
        batch, classes = log_probs.shape
        labels = _check_labels(labels, batch, classes)
        picked = log_probs[np.arange(batch), labels]
        return -picked.mean()


class MSELoss(Module):
    """Mean squared error between predictions and targets."""

    def __call__(self, predictions, targets) -> Tensor:
        predictions = as_tensor(predictions)
        targets = as_tensor(targets)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: {predictions.shape} vs {targets.shape}"
            )
        diff = predictions - targets
        return (diff * diff).mean()
