"""Image transforms.

The paper resizes MNIST with a *bilinear transformation* before feeding
the FC networks (section V-B): 28x28 -> 16x16 for Arch. 1 (256 inputs)
and 28x28 -> 11x11 for Arch. 2 (121 inputs).  :func:`bilinear_resize`
reproduces that step exactly; the remaining helpers normalize and flatten
batches for the FC layers.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bilinear_resize",
    "normalize",
    "flatten_images",
    "affine_warp",
    "Compose",
]


def bilinear_resize(images: np.ndarray, height: int, width: int) -> np.ndarray:
    """Resize ``(batch, H, W)`` or ``(H, W)`` images by bilinear sampling.

    Uses the align-corners-free convention (pixel centers at
    ``(i + 0.5) * scale - 0.5``), matching common image libraries.
    """
    images = np.asarray(images, dtype=np.float64)
    single = images.ndim == 2
    if single:
        images = images[None]
    if images.ndim != 3:
        raise ValueError(
            f"expected (batch, H, W) or (H, W) images, got shape {images.shape}"
        )
    if height <= 0 or width <= 0:
        raise ValueError(f"target size must be positive, got ({height}, {width})")
    batch, in_h, in_w = images.shape
    row_pos = np.clip(
        (np.arange(height) + 0.5) * (in_h / height) - 0.5, 0.0, in_h - 1.0
    )
    col_pos = np.clip(
        (np.arange(width) + 0.5) * (in_w / width) - 0.5, 0.0, in_w - 1.0
    )
    r0 = np.floor(row_pos).astype(np.int64)
    c0 = np.floor(col_pos).astype(np.int64)
    r1 = np.minimum(r0 + 1, in_h - 1)
    c1 = np.minimum(c0 + 1, in_w - 1)
    wr = (row_pos - r0)[None, :, None]
    wc = (col_pos - c0)[None, None, :]
    top = images[:, r0][:, :, c0] * (1 - wc) + images[:, r0][:, :, c1] * wc
    bottom = images[:, r1][:, :, c0] * (1 - wc) + images[:, r1][:, :, c1] * wc
    out = top * (1 - wr) + bottom * wr
    return out[0] if single else out


def affine_warp(
    image: np.ndarray,
    matrix: np.ndarray,
    offset: np.ndarray,
) -> np.ndarray:
    """Inverse-map an affine transform over a 2-D image with bilinear sampling.

    Output pixel ``(r, c)`` samples input position ``matrix @ [r, c] +
    offset``; out-of-range samples read as 0.  Used by the synthetic
    dataset generators for rotation/scale/shift augmentation.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"affine_warp expects a 2-D image, got {image.shape}")
    matrix = np.asarray(matrix, dtype=np.float64)
    offset = np.asarray(offset, dtype=np.float64)
    if matrix.shape != (2, 2) or offset.shape != (2,):
        raise ValueError("matrix must be (2, 2) and offset (2,)")
    h, w = image.shape
    rows, cols = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
    coords = np.stack([rows.ravel(), cols.ravel()])  # (2, h*w)
    src = matrix @ coords + offset[:, None]
    sr, sc = src[0], src[1]
    r0 = np.floor(sr).astype(np.int64)
    c0 = np.floor(sc).astype(np.int64)
    fr = sr - r0
    fc = sc - c0

    def sample(ri: np.ndarray, ci: np.ndarray) -> np.ndarray:
        valid = (ri >= 0) & (ri < h) & (ci >= 0) & (ci < w)
        out = np.zeros_like(sr)
        out[valid] = image[ri[valid], ci[valid]]
        return out

    value = (
        sample(r0, c0) * (1 - fr) * (1 - fc)
        + sample(r0, c0 + 1) * (1 - fr) * fc
        + sample(r0 + 1, c0) * fr * (1 - fc)
        + sample(r0 + 1, c0 + 1) * fr * fc
    )
    return value.reshape(h, w)


def normalize(
    images: np.ndarray, mean: float | None = None, std: float | None = None
) -> np.ndarray:
    """Standardize to zero mean / unit variance (statistics from the data
    when not provided)."""
    images = np.asarray(images, dtype=np.float64)
    mean = images.mean() if mean is None else mean
    std = images.std() if std is None else std
    if std == 0.0:
        raise ValueError("cannot normalize with zero standard deviation")
    return (images - mean) / std


def flatten_images(images: np.ndarray) -> np.ndarray:
    """Flatten ``(batch, ...)`` to ``(batch, n)`` for FC inputs."""
    images = np.asarray(images)
    if images.ndim < 2:
        raise ValueError(f"expected batched images, got shape {images.shape}")
    return images.reshape(images.shape[0], -1)


class Compose:
    """Apply a sequence of array transforms left to right."""

    def __init__(self, *transforms):
        if not transforms:
            raise ValueError("Compose requires at least one transform")
        self.transforms = transforms

    def __call__(self, images: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            images = transform(images)
        return images
