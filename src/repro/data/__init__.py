"""Datasets and transforms.

Synthetic, offline-generatable substitutes for MNIST and CIFAR-10 (see
DESIGN.md section 3), plus the bilinear resize the paper applies to MNIST
and generic batching utilities.
"""

from .dataset import ArrayDataset, DataLoader, train_test_split
from .synthetic_cifar import (
    CLASS_NAMES,
    generate_cifar,
    load_synthetic_cifar,
)
from .synthetic_mnist import (
    digit_template,
    generate_mnist,
    load_synthetic_mnist,
)
from .synthetic_wave import (
    generate_wave,
    load_synthetic_wave,
    quantize_wave,
)
from .transforms import (
    Compose,
    affine_warp,
    bilinear_resize,
    flatten_images,
    normalize,
)

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "train_test_split",
    "generate_mnist",
    "load_synthetic_mnist",
    "digit_template",
    "generate_cifar",
    "load_synthetic_cifar",
    "CLASS_NAMES",
    "generate_wave",
    "load_synthetic_wave",
    "quantize_wave",
    "bilinear_resize",
    "affine_warp",
    "normalize",
    "flatten_images",
    "Compose",
]
