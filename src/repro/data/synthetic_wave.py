"""Procedural waveform dataset for the streaming sequence stack.

The FFTNet-style streaming architecture (``repro.zoo`` ``"fftnet"``)
is an autoregressive next-sample classifier: given the waveform so far,
predict the quantization bin of the *next* sample — the vocoder training
objective scaled down to a synthetic signal.  Each example is a sum of a
few random harmonics with per-example frequency, phase, and amplitude
(plus optional noise), normalized to ``[-1, 1]``; labels quantize the
next sample into :data:`NUM_CLASSES` uniform bins, teacher-forcing
style: ``label[t] = bin(x[t + 1])``.

Inputs are time-major ``(n, length, 1)`` float arrays — the layout every
sequence layer in :mod:`repro.nn.layers.fftnet1d` consumes — and labels
are ``(n, length)`` int64 bins.
"""

from __future__ import annotations

import numpy as np

from .dataset import ArrayDataset

__all__ = [
    "NUM_CLASSES",
    "WAVE_LENGTH",
    "generate_wave",
    "load_synthetic_wave",
    "quantize_wave",
]

NUM_CLASSES = 16
WAVE_LENGTH = 128


def quantize_wave(samples: np.ndarray, classes: int = NUM_CLASSES) -> np.ndarray:
    """Uniform ``[-1, 1]`` quantization bins for waveform samples."""
    bins = ((np.clip(samples, -1.0, 1.0) + 1.0) / 2.0) * classes
    return np.minimum(bins.astype(np.int64), classes - 1)


def generate_wave(
    count: int,
    rng: np.random.Generator,
    length: int = WAVE_LENGTH,
    noise: float = 0.02,
    classes: int = NUM_CLASSES,
    harmonics: int = 3,
) -> tuple[np.ndarray, np.ndarray]:
    """``count`` waveforms plus next-sample-bin labels.

    Returns ``(inputs, labels)`` with inputs ``(count, length, 1)`` in
    ``[-1, 1]`` and labels ``(count, length)`` in ``[0, classes)``.
    ``length + 1`` samples are synthesized per example so every position
    — including the last — has a true next sample to quantize.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if length < 2:
        raise ValueError(f"length must be >= 2, got {length}")
    t = np.arange(length + 1, dtype=np.float64)
    waves = np.zeros((count, length + 1), dtype=np.float64)
    for _ in range(harmonics):
        freq = rng.uniform(0.01, 0.12, size=(count, 1))
        phase = rng.uniform(0.0, 2.0 * np.pi, size=(count, 1))
        amp = rng.uniform(0.3, 1.0, size=(count, 1))
        waves += amp * np.sin(2.0 * np.pi * freq * t[None, :] + phase)
    if noise > 0:
        waves += rng.normal(scale=noise, size=waves.shape)
    # Normalize each example to [-1, 1] so the quantization grid is used.
    peak = np.abs(waves).max(axis=1, keepdims=True)
    waves /= np.maximum(peak, 1e-9)
    inputs = waves[:, :length, None]
    labels = quantize_wave(waves[:, 1:], classes)
    return inputs, labels


def load_synthetic_wave(
    train_size: int = 512,
    test_size: int = 128,
    seed: int = 0,
    noise: float = 0.02,
    length: int = WAVE_LENGTH,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Train/test waveform datasets from independent generator streams."""
    train_rng = np.random.default_rng(seed)
    test_rng = np.random.default_rng(seed + 1_000_003)
    train = ArrayDataset(*generate_wave(train_size, train_rng, length, noise))
    test = ArrayDataset(*generate_wave(test_size, test_rng, length, noise))
    return train, test
