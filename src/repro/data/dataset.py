"""Dataset container and mini-batch loader.

Minimal equivalents of the usual Dataset/DataLoader pair: an in-memory
array dataset with deterministic shuffling, batching, and train/test
splitting — the third building block (inputs parser / test data loading)
of the paper's Fig. 4 pipeline feeds through these.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["ArrayDataset", "DataLoader", "train_test_split"]


class ArrayDataset:
    """Paired arrays of inputs and integer labels."""

    def __init__(self, inputs: np.ndarray, labels: np.ndarray):
        inputs = np.asarray(inputs)
        labels = np.asarray(labels)
        if len(inputs) != len(labels):
            raise ValueError(
                f"inputs and labels disagree on length: "
                f"{len(inputs)} vs {len(labels)}"
            )
        if len(inputs) == 0:
            raise ValueError("dataset must be non-empty")
        self.inputs = inputs
        self.labels = labels

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index) -> tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.labels[index]

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """New dataset restricted to ``indices``."""
        return ArrayDataset(self.inputs[indices], self.labels[indices])

    def map_inputs(self, fn) -> "ArrayDataset":
        """New dataset with ``fn`` applied to the whole input array."""
        return ArrayDataset(fn(self.inputs), self.labels)


class DataLoader:
    """Iterate a dataset in mini-batches.

    Shuffling uses a dedicated generator seeded at construction, and each
    epoch reshuffles deterministically from that stream, so two loaders
    built with the same seed replay identical batch sequences.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: int | None = None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return -(-n // self.batch_size)

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            index = order[start : start + self.batch_size]
            if self.drop_last and len(index) < self.batch_size:
                return
            yield self.dataset[index]


def train_test_split(
    dataset: ArrayDataset,
    test_fraction: float,
    rng: np.random.Generator | None = None,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Random split into (train, test) with ``test_fraction`` held out."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = rng or np.random.default_rng()
    n = len(dataset)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ValueError(
            f"test_fraction {test_fraction} leaves no training data for n={n}"
        )
    order = rng.permutation(n)
    return dataset.subset(order[n_test:]), dataset.subset(order[:n_test])
