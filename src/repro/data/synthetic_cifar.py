"""Procedural stand-in for the CIFAR-10 dataset.

CIFAR-10 cannot be downloaded offline, so this module generates 32x32x3
color images in [0, 1] across ten classes.  Each class pairs a base hue
with a characteristic spatial structure (stripes, checkers, rings, blobs,
gradients, ...), and every sample varies frequency, phase, orientation,
color jitter, and noise — so a convolutional network must learn spatial
feature detectors, exercising the same code paths as real CIFAR-10 (see
DESIGN.md section 3 for the substitution rationale).
"""

from __future__ import annotations

import numpy as np

from .dataset import ArrayDataset

__all__ = [
    "IMAGE_SIZE",
    "NUM_CHANNELS",
    "NUM_CLASSES",
    "CLASS_NAMES",
    "generate_cifar",
    "load_synthetic_cifar",
]

IMAGE_SIZE = 32
NUM_CHANNELS = 3
NUM_CLASSES = 10

CLASS_NAMES = (
    "h-stripes",
    "v-stripes",
    "diagonal",
    "checker",
    "rings",
    "blobs",
    "gradient",
    "spots",
    "cross",
    "waves",
)

# Base colors per class (RGB in [0, 1]); hue jitter is applied per sample.
_BASE_COLORS = np.array(
    [
        [0.85, 0.25, 0.25],
        [0.25, 0.65, 0.85],
        [0.35, 0.80, 0.35],
        [0.85, 0.70, 0.25],
        [0.65, 0.35, 0.80],
        [0.85, 0.45, 0.65],
        [0.30, 0.75, 0.70],
        [0.75, 0.55, 0.35],
        [0.45, 0.50, 0.85],
        [0.60, 0.75, 0.30],
    ]
)


def _pattern(label: int, rng: np.random.Generator) -> np.ndarray:
    """Greyscale 32x32 structure for ``label`` with random nuisances."""
    size = IMAGE_SIZE
    rows, cols = np.meshgrid(
        np.linspace(0, 1, size), np.linspace(0, 1, size), indexing="ij"
    )
    freq = rng.uniform(2.5, 5.0)
    phase = rng.uniform(0, 2 * np.pi)
    if label == 0:  # horizontal stripes
        field = np.sin(2 * np.pi * freq * rows + phase)
    elif label == 1:  # vertical stripes
        field = np.sin(2 * np.pi * freq * cols + phase)
    elif label == 2:  # diagonal stripes (random slope sign)
        slope = rng.choice([-1.0, 1.0])
        field = np.sin(2 * np.pi * freq * (rows + slope * cols) / 1.4 + phase)
    elif label == 3:  # checkerboard
        field = np.sin(2 * np.pi * freq * rows + phase) * np.sin(
            2 * np.pi * freq * cols + phase
        )
    elif label == 4:  # concentric rings around a jittered center
        cr, cc = rng.uniform(0.3, 0.7, size=2)
        radius = np.hypot(rows - cr, cols - cc)
        field = np.sin(2 * np.pi * freq * 1.6 * radius + phase)
    elif label == 5:  # smooth blobs: low-frequency random field
        coarse = rng.normal(size=(4, 4))
        field = np.kron(coarse, np.ones((size // 4, size // 4)))
        field = _smooth(field)
    elif label == 6:  # linear gradient at random orientation
        angle = rng.uniform(0, 2 * np.pi)
        field = (rows - 0.5) * np.cos(angle) + (cols - 0.5) * np.sin(angle)
        field = field / (np.abs(field).max() + 1e-9)
    elif label == 7:  # bright spots on a dark field
        field = -np.ones((size, size)) * 0.6
        for _ in range(rng.integers(4, 8)):
            cr, cc = rng.uniform(0.1, 0.9, size=2)
            sigma = rng.uniform(0.05, 0.09)
            bump = np.exp(-((rows - cr) ** 2 + (cols - cc) ** 2) / (2 * sigma**2))
            field = np.maximum(field, 2.0 * bump - 0.6)
    elif label == 8:  # centered cross / plus shape
        cr, cc = rng.uniform(0.4, 0.6, size=2)
        width = rng.uniform(0.06, 0.12)
        bar_h = np.exp(-((rows - cr) ** 2) / (2 * width**2))
        bar_v = np.exp(-((cols - cc) ** 2) / (2 * width**2))
        field = np.maximum(bar_h, bar_v) * 2.0 - 1.0
    elif label == 9:  # wavy (frequency-modulated) stripes
        field = np.sin(
            2 * np.pi * freq * rows + 2.0 * np.sin(2 * np.pi * cols * 2.0) + phase
        )
    else:
        raise ValueError(f"label must be 0-9, got {label}")
    return field


def _smooth(field: np.ndarray) -> np.ndarray:
    """Cheap 3x3 box smoothing with edge replication."""
    padded = np.pad(field, 1, mode="edge")
    out = np.zeros_like(field)
    for dr in range(3):
        for dc in range(3):
            out += padded[dr : dr + field.shape[0], dc : dc + field.shape[1]]
    return out / 9.0


def generate_cifar(
    num_samples: int,
    rng: np.random.Generator | None = None,
    noise: float = 0.06,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``(images, labels)``: images ``(n, 3, 32, 32)`` in [0, 1].

    Channel layout is channel-first to match the CONV stack.  Each sample
    modulates its class color by the class pattern field, with hue jitter
    and additive Gaussian noise.
    """
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    if noise < 0.0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    rng = rng or np.random.default_rng()
    labels = rng.integers(0, NUM_CLASSES, size=num_samples)
    images = np.empty((num_samples, NUM_CHANNELS, IMAGE_SIZE, IMAGE_SIZE))
    for index, label in enumerate(labels):
        field = _pattern(int(label), rng)  # roughly in [-1, 1]
        color = np.clip(
            _BASE_COLORS[label] + rng.normal(scale=0.06, size=3), 0.05, 0.95
        )
        background = np.clip(
            np.array([0.45, 0.45, 0.45]) + rng.normal(scale=0.05, size=3), 0.0, 1.0
        )
        mix = (field + 1.0) / 2.0  # [0, 1] blend factor
        image = (
            mix[None, :, :] * color[:, None, None]
            + (1.0 - mix[None, :, :]) * background[:, None, None]
        )
        image += rng.normal(scale=noise, size=image.shape)
        images[index] = np.clip(image, 0.0, 1.0)
    return images, labels


def load_synthetic_cifar(
    train_size: int = 4000,
    test_size: int = 800,
    seed: int = 0,
    noise: float = 0.06,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Train/test datasets mirroring the CIFAR-10 50k/10k split (scaled).

    Independent generator streams for train and test, as in
    :func:`repro.data.synthetic_mnist.load_synthetic_mnist`.
    """
    train_rng = np.random.default_rng(seed)
    test_rng = np.random.default_rng(seed + 2_000_003)
    train = ArrayDataset(*generate_cifar(train_size, train_rng, noise))
    test = ArrayDataset(*generate_cifar(test_size, test_rng, noise))
    return train, test
