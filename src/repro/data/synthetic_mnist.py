"""Procedural stand-in for the MNIST handwritten-digit dataset.

The real MNIST download is unavailable offline, so this module generates a
drop-in substitute: 28x28 greyscale digit images in [0, 1] with integer
labels 0-9.  Digits are rendered from seven-segment-style stroke skeletons
(with per-digit styling), then individually perturbed with a random affine
warp (rotation, scale, shear, translation), stroke-intensity jitter, and
pixel noise — giving the intra-class variability a classifier must absorb,
at MNIST's exact shape and value range.  DESIGN.md section 3 records the
substitution; EXPERIMENTS.md reports accuracies measured on this data.
"""

from __future__ import annotations

import functools

import numpy as np

from .dataset import ArrayDataset
from .transforms import affine_warp

__all__ = [
    "IMAGE_SIZE",
    "NUM_CLASSES",
    "digit_template",
    "generate_mnist",
    "load_synthetic_mnist",
]

IMAGE_SIZE = 28
NUM_CLASSES = 10

# Segment endpoints on a unit box (row, col), top-left origin.  The seven
# standard segments plus two diagonals used by 1 and 7 for styling.
_SEGMENTS: dict[str, tuple[tuple[float, float], tuple[float, float]]] = {
    "top": ((0.0, 0.1), (0.0, 0.9)),
    "top_right": ((0.0, 0.9), (0.5, 0.9)),
    "bottom_right": ((0.5, 0.9), (1.0, 0.9)),
    "bottom": ((1.0, 0.1), (1.0, 0.9)),
    "bottom_left": ((0.5, 0.1), (1.0, 0.1)),
    "top_left": ((0.0, 0.1), (0.5, 0.1)),
    "middle": ((0.5, 0.1), (0.5, 0.9)),
    "flag": ((0.18, 0.5), (0.0, 0.9)),  # serif on the 1
    "slash": ((1.0, 0.25), (0.0, 0.9)),  # diagonal stroke of the 7
}

# Which segments make up each digit (seven-segment layout, 1 and 7 styled
# with diagonals so they are not subsets of other digits pixel-wise).
_DIGIT_SEGMENTS: dict[int, tuple[str, ...]] = {
    0: ("top", "top_right", "bottom_right", "bottom", "bottom_left", "top_left"),
    1: ("top_right", "bottom_right", "flag"),
    2: ("top", "top_right", "middle", "bottom_left", "bottom"),
    3: ("top", "top_right", "middle", "bottom_right", "bottom"),
    4: ("top_left", "middle", "top_right", "bottom_right"),
    5: ("top", "top_left", "middle", "bottom_right", "bottom"),
    6: ("top", "top_left", "middle", "bottom_left", "bottom_right", "bottom"),
    7: ("top", "slash"),
    8: (
        "top",
        "top_right",
        "bottom_right",
        "bottom",
        "bottom_left",
        "top_left",
        "middle",
    ),
    9: ("top", "top_right", "top_left", "middle", "bottom_right", "bottom"),
}


def _segment_distance(
    rows: np.ndarray,
    cols: np.ndarray,
    start: tuple[float, float],
    end: tuple[float, float],
) -> np.ndarray:
    """Euclidean distance from each (row, col) grid point to a segment."""
    p0 = np.array(start)
    p1 = np.array(end)
    direction = p1 - p0
    length_sq = float(direction @ direction)
    dr = rows - p0[0]
    dc = cols - p0[1]
    if length_sq == 0.0:
        return np.hypot(dr, dc)
    t = np.clip((dr * direction[0] + dc * direction[1]) / length_sq, 0.0, 1.0)
    return np.hypot(dr - t * direction[0], dc - t * direction[1])


@functools.lru_cache(maxsize=16)
def digit_template(digit: int, size: int = IMAGE_SIZE) -> np.ndarray:
    """Canonical ``size x size`` rendering of ``digit`` in [0, 1].

    The glyph occupies a box inset from the borders so that augmentation
    warps keep the stroke inside the canvas.
    """
    if digit not in _DIGIT_SEGMENTS:
        raise ValueError(f"digit must be 0-9, got {digit}")
    if size < 8:
        raise ValueError(f"size must be >= 8, got {size}")
    # Glyph box: rows 4..size-5, cols 7..size-8 (tall, narrow like digits).
    row_lo, row_hi = size * 0.16, size * 0.84
    col_lo, col_hi = size * 0.28, size * 0.72
    grid_r, grid_c = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    rows = (grid_r - row_lo) / (row_hi - row_lo)
    cols = (grid_c - col_lo) / (col_hi - col_lo)
    stroke = size * 0.055  # stroke half-width in pixels
    scale = row_hi - row_lo  # unit-box distance -> pixel distance
    intensity = np.zeros((size, size))
    for name in _DIGIT_SEGMENTS[digit]:
        distance = _segment_distance(rows, cols, *_SEGMENTS[name]) * scale
        intensity = np.maximum(intensity, np.clip(1.5 - distance / stroke, 0.0, 1.0))
    return np.clip(intensity, 0.0, 1.0)


def _random_affine(rng: np.random.Generator, size: int) -> tuple[np.ndarray, np.ndarray]:
    """Random inverse-mapping affine (matrix, offset) about the center."""
    angle = rng.uniform(-0.2, 0.2)  # radians, ~±11 degrees
    scale = rng.uniform(0.85, 1.1)
    shear = rng.uniform(-0.12, 0.12)
    shift = rng.uniform(-1.8, 1.8, size=2)
    cos, sin = np.cos(angle), np.sin(angle)
    forward = np.array([[cos, -sin], [sin, cos]]) @ np.array(
        [[scale, scale * shear], [0.0, scale]]
    )
    inverse = np.linalg.inv(forward)
    center = np.array([(size - 1) / 2.0, (size - 1) / 2.0])
    offset = center - inverse @ (center + shift)
    return inverse, offset


def generate_mnist(
    num_samples: int,
    rng: np.random.Generator | None = None,
    noise: float = 0.08,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``(images, labels)``: images ``(n, 28, 28)`` in [0, 1].

    Labels are drawn uniformly; every image gets an independent affine
    warp, stroke-gain jitter, and additive Gaussian noise of standard
    deviation ``noise``.
    """
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    if noise < 0.0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    rng = rng or np.random.default_rng()
    labels = rng.integers(0, NUM_CLASSES, size=num_samples)
    images = np.empty((num_samples, IMAGE_SIZE, IMAGE_SIZE))
    for index, digit in enumerate(labels):
        matrix, offset = _random_affine(rng, IMAGE_SIZE)
        warped = affine_warp(digit_template(int(digit)), matrix, offset)
        gain = rng.uniform(0.8, 1.0)
        noisy = gain * warped + rng.normal(scale=noise, size=warped.shape)
        images[index] = np.clip(noisy, 0.0, 1.0)
    return images, labels


def load_synthetic_mnist(
    train_size: int = 6000,
    test_size: int = 1000,
    seed: int = 0,
    noise: float = 0.08,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Train/test datasets mirroring the MNIST 60k/10k split (scaled down).

    Train and test draw from independent generator streams of the same
    process, so test accuracy measures generalization over nuisance
    parameters rather than memorization.
    """
    train_rng = np.random.default_rng(seed)
    test_rng = np.random.default_rng(seed + 1_000_003)
    train = ArrayDataset(*generate_mnist(train_size, train_rng, noise))
    test = ArrayDataset(*generate_mnist(test_size, test_rng, noise))
    return train, test
