"""Exception hierarchy for the repro package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible or unsupported shape."""


class BackendError(ReproError, ValueError):
    """An unknown or unavailable FFT backend was requested."""


class ParseError(ReproError, ValueError):
    """An architecture string, parameter file, or input file is malformed."""


class DeploymentError(ReproError, RuntimeError):
    """A deployment artifact is inconsistent or cannot be executed."""


class ConfigurationError(ReproError, ValueError):
    """A layer, model, or simulator was configured with invalid settings."""


class ServingError(ReproError, RuntimeError):
    """A serving request failed or the wire protocol was violated."""


class Overloaded(ServingError):
    """The server shed this request: queue full or rate limit exceeded.

    ``retry_after_ms`` is the server's hint for when capacity is likely
    back (``None`` when the server offered none); clients back off at
    least that long before retrying.  Travels on the wire as an error
    frame with ``code="overloaded"``.
    """

    def __init__(self, message: str, retry_after_ms: float | None = None):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class ServerUnavailable(ServingError):
    """The server cannot be reached, hung up mid-frame, or is draining.

    Raised by clients on connect/read timeouts and dropped connections
    (retryable: the request never completed), and carried on the wire
    as ``code="server_unavailable"`` when a draining server refuses new
    work.
    """


class StreamBroken(ServingError):
    """A stream died mid-conversation and cannot be transparently resumed.

    ``stream_push`` is not idempotent — the server may have applied a
    push whose reply was lost, so replaying it would corrupt the
    stream's position.  When the connection carrying a stream drops (or
    the backend behind a router dies), clients therefore raise this
    instead of reconnect-and-replay; the caller must open a fresh stream
    and re-feed whatever suffix it still holds.  ``pushed`` is the
    number of samples the client knows the server acknowledged.
    """

    def __init__(self, message: str, pushed: int = 0):
        super().__init__(message)
        self.pushed = pushed


class WorkerFault(ReproError, RuntimeError):
    """A pool worker died or stopped responding mid-task.

    Raised internally by :class:`~repro.runtime.executors.ShardedExecutor`
    when its sentinel detects a dead worker or a task outlives
    ``task_timeout``; the executor recovers (respawn once, then degrade
    to serial) and retries, so callers normally never see this.
    """


class PipelineError(ReproError, RuntimeError):
    """A build-pipeline stage failed or was run out of order."""
