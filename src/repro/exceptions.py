"""Exception hierarchy for the repro package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible or unsupported shape."""


class BackendError(ReproError, ValueError):
    """An unknown or unavailable FFT backend was requested."""


class ParseError(ReproError, ValueError):
    """An architecture string, parameter file, or input file is malformed."""


class DeploymentError(ReproError, RuntimeError):
    """A deployment artifact is inconsistent or cannot be executed."""


class ConfigurationError(ReproError, ValueError):
    """A layer, model, or simulator was configured with invalid settings."""


class ServingError(ReproError, RuntimeError):
    """A serving request failed or the wire protocol was violated."""


class PipelineError(ReproError, RuntimeError):
    """A build-pipeline stage failed or was run out of order."""
