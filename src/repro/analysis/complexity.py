"""Theoretical complexity formulas (paper sections IV-A and IV-B).

Closed-form operation counts for dense vs block-circulant FC and CONV
layers, used by the complexity benchmarks (E5/E6) and to check the
paper's asymptotic claims:

* FC: ``O(n^2)`` dense vs ``O(n log n)`` block-circulant (Eqn. 3),
* CONV: ``O(W H r^2 C P)`` dense vs ``O(W H Q log Q)``,
  ``Q = max(r^2 C, P)`` (section IV-B).
"""

from __future__ import annotations

import math

__all__ = [
    "dense_fc_ops",
    "bc_fc_ops",
    "dense_conv_ops",
    "bc_conv_ops",
    "fc_speedup",
    "conv_speedup",
    "crossover_block_size",
]


def dense_fc_ops(out_features: int, in_features: int) -> float:
    """Multiply-add count of a dense FC layer: ``2 m n``."""
    _check_positive(out_features=out_features, in_features=in_features)
    return 2.0 * out_features * in_features


def bc_fc_ops(out_features: int, in_features: int, block_size: int) -> float:
    """Operation count of the FFT-based block-circulant FC layer.

    ``q`` forward FFTs, ``p q`` spectrum products with accumulation, and
    ``p`` inverse FFTs, with ``p = ceil(m/b)``, ``q = ceil(n/b)`` — the
    ``O((m n / b) log b)`` of paper Eqn. 3 with explicit constants
    (real-FFT cost ``2.5 b log2 b``).
    """
    _check_positive(
        out_features=out_features, in_features=in_features, block_size=block_size
    )
    p = -(-out_features // block_size)
    q = -(-in_features // block_size)
    bins = block_size // 2 + 1
    fft_cost = 2.5 * block_size * math.log2(block_size) if block_size > 1 else 0.0
    return (q + p) * fft_cost + p * q * 6.0 * bins + p * (q - 1) * 2.0 * bins


def dense_conv_ops(
    height: int, width: int, kernel: int, in_channels: int, out_channels: int
) -> float:
    """Multiply-add count of a dense valid CONV layer (paper Eqn. 5)."""
    _check_positive(
        height=height,
        width=width,
        kernel=kernel,
        in_channels=in_channels,
        out_channels=out_channels,
    )
    positions = (height - kernel + 1) * (width - kernel + 1)
    return 2.0 * positions * out_channels * in_channels * kernel * kernel


def bc_conv_ops(
    height: int,
    width: int,
    kernel: int,
    in_channels: int,
    out_channels: int,
    block_size: int,
) -> float:
    """Operation count of the block-circulant CONV layer (section IV-B)."""
    _check_positive(
        height=height,
        width=width,
        kernel=kernel,
        in_channels=in_channels,
        out_channels=out_channels,
        block_size=block_size,
    )
    positions = (height - kernel + 1) * (width - kernel + 1)
    per_position = bc_fc_ops(
        out_channels, in_channels * kernel * kernel, block_size
    )
    return positions * per_position


def fc_speedup(out_features: int, in_features: int, block_size: int) -> float:
    """Dense-over-block-circulant op ratio for an FC layer."""
    return dense_fc_ops(out_features, in_features) / bc_fc_ops(
        out_features, in_features, block_size
    )


def conv_speedup(
    height: int,
    width: int,
    kernel: int,
    in_channels: int,
    out_channels: int,
    block_size: int,
) -> float:
    """Dense-over-block-circulant op ratio for a CONV layer."""
    return dense_conv_ops(
        height, width, kernel, in_channels, out_channels
    ) / bc_conv_ops(height, width, kernel, in_channels, out_channels, block_size)


def crossover_block_size(out_features: int, in_features: int) -> int | None:
    """Smallest block size at which the FFT path beats the dense path.

    Returns None when no block size up to ``min(m, n)`` wins (tiny
    layers where FFT constants dominate).
    """
    _check_positive(out_features=out_features, in_features=in_features)
    limit = min(out_features, in_features)
    for block in range(2, limit + 1):
        if fc_speedup(out_features, in_features, block) > 1.0:
            return block
    return None


def _check_positive(**values: int) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")
