"""Complexity, storage, and comparison analysis (paper claims E5-E8, Fig. 5)."""

from .complexity import (
    bc_conv_ops,
    bc_fc_ops,
    conv_speedup,
    crossover_block_size,
    dense_conv_ops,
    dense_fc_ops,
    fc_speedup,
)
from .numerics import (
    dft_roundoff_error,
    fft_roundoff_error,
    matvec_roundoff_comparison,
)
from .storage import StorageReport, StorageRow, storage_report
from .truenorth import (
    ARM_CORES,
    TRUENORTH_CIFAR10,
    TRUENORTH_MNIST,
    TRUENORTH_REFERENCES,
    ComparisonPoint,
    fig5_points,
    speedup_vs_truenorth,
)

__all__ = [
    "dense_fc_ops",
    "bc_fc_ops",
    "dense_conv_ops",
    "bc_conv_ops",
    "fc_speedup",
    "conv_speedup",
    "crossover_block_size",
    "StorageRow",
    "StorageReport",
    "storage_report",
    "fft_roundoff_error",
    "dft_roundoff_error",
    "matvec_roundoff_comparison",
    "ComparisonPoint",
    "TRUENORTH_MNIST",
    "TRUENORTH_CIFAR10",
    "TRUENORTH_REFERENCES",
    "ARM_CORES",
    "fig5_points",
    "speedup_vs_truenorth",
]
