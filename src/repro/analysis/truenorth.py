"""IBM TrueNorth reference points and the Fig. 5 comparison.

The paper's Fig. 5 plots accuracy against per-image latency for its own
MNIST / CIFAR-10 deployments and for IBM TrueNorth, whose numbers the
paper quotes from Esser et al. [31] (2016, CIFAR-10) and [32] (2015,
MNIST).  TrueNorth hardware is obviously not available; the published
numbers are encoded here as data (see DESIGN.md section 3) together with
helpers that assemble the full Fig. 5 point set from our measured
results.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ComparisonPoint",
    "TRUENORTH_MNIST",
    "TRUENORTH_CIFAR10",
    "TRUENORTH_REFERENCES",
    "fig5_points",
]


@dataclass(frozen=True)
class ComparisonPoint:
    """One point of the Fig. 5 scatter."""

    system: str
    dataset: str
    accuracy_percent: float
    runtime_us_per_image: float
    cores: int
    source: str

    def __post_init__(self):
        if not 0.0 <= self.accuracy_percent <= 100.0:
            raise ValueError(
                f"accuracy must be a percentage, got {self.accuracy_percent}"
            )
        if self.runtime_us_per_image <= 0:
            raise ValueError(
                f"runtime must be positive, got {self.runtime_us_per_image}"
            )
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")


#: MNIST on TrueNorth (paper section V-D, quoting Esser et al. 2015 [32]).
TRUENORTH_MNIST = ComparisonPoint(
    system="IBM TrueNorth",
    dataset="MNIST",
    accuracy_percent=95.0,
    runtime_us_per_image=1000.0,
    cores=4096,
    source="Esser et al., NIPS 2015 [32]",
)

#: CIFAR-10 on TrueNorth (paper section V-D, quoting Esser et al. 2016 [31]).
TRUENORTH_CIFAR10 = ComparisonPoint(
    system="IBM TrueNorth",
    dataset="CIFAR-10",
    accuracy_percent=83.41,
    runtime_us_per_image=800.0,
    cores=4096,
    source="Esser et al., PNAS 2016 [31]",
)

TRUENORTH_REFERENCES = (TRUENORTH_MNIST, TRUENORTH_CIFAR10)

#: Core count of the paper's test platforms (one or two quad-core ARM
#: clusters; the paper contrasts this with TrueNorth's 4096 ASIC cores).
ARM_CORES = 8


def fig5_points(
    mnist_accuracy_percent: float,
    mnist_runtime_us: float,
    cifar_accuracy_percent: float,
    cifar_runtime_us: float,
) -> list[ComparisonPoint]:
    """Assemble the four Fig. 5 points: our method + TrueNorth, both datasets."""
    ours = [
        ComparisonPoint(
            system="Our Method",
            dataset="MNIST",
            accuracy_percent=mnist_accuracy_percent,
            runtime_us_per_image=mnist_runtime_us,
            cores=ARM_CORES,
            source="this reproduction (best device, C++)",
        ),
        ComparisonPoint(
            system="Our Method",
            dataset="CIFAR-10",
            accuracy_percent=cifar_accuracy_percent,
            runtime_us_per_image=cifar_runtime_us,
            cores=ARM_CORES,
            source="this reproduction (best device, C++)",
        ),
    ]
    return ours + list(TRUENORTH_REFERENCES)


def speedup_vs_truenorth(dataset: str, runtime_us: float) -> float:
    """TrueNorth-over-ours latency ratio (>1 means we are faster).

    The paper reports ~10x faster on MNIST and ~10x slower on CIFAR-10.
    """
    reference = {
        "MNIST": TRUENORTH_MNIST,
        "CIFAR-10": TRUENORTH_CIFAR10,
    }.get(dataset)
    if reference is None:
        raise KeyError(f"no TrueNorth reference for dataset {dataset!r}")
    if runtime_us <= 0:
        raise ValueError(f"runtime must be positive, got {runtime_us}")
    return reference.runtime_us_per_image / runtime_us
