"""Round-off error analysis of the FFT computation path.

Paper section III-B claims the FFT "not only reduces the computational
complexity, but also substantially reduces round-off errors ... both the
computation time and round-off error are essentially reduced by a factor
of n/(log2 n)" (citing Cochran et al. [22]).  This module measures that
claim directly on this package's kernels:

* :func:`fft_roundoff_error` — relative error of forward+inverse
  transform round trips in float64 against an exact (float128-free)
  reference strategy: compare against the same computation carried out at
  higher internal precision via Kahan-style compensated reference or the
  O(n^2) matrix applied in float64 (whose error grows like sqrt(n)).
* :func:`matvec_roundoff_comparison` — circulant matvec error via the
  dense product vs via the FFT path, each against an exact rational-free
  long-double reference.

The benchmark ``benchmarks/test_numerics.py`` turns these into the E13
table; the measured trend (FFT error growing like log n vs direct error
like sqrt(n)) is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from ..fft import circular_convolve, dft_matrix, fft, use_backend
from ..structured import CirculantMatrix

__all__ = [
    "fft_roundoff_error",
    "dft_roundoff_error",
    "matvec_roundoff_comparison",
]


def _longdouble_dft(x: np.ndarray) -> np.ndarray:
    """DFT evaluated in extended precision, used as ground truth.

    Twiddle angles are computed entirely in long double with the exponent
    reduced mod n exactly in integers first, so the reference shares no
    rounding with either the float64 DFT matrix or the FFT kernels.
    """
    n = x.shape[-1]
    indices = np.arange(n, dtype=np.int64)
    reduced = (np.outer(indices, indices) % n).astype(np.longdouble)
    angles = (-2.0 * np.longdouble(np.pi) / np.longdouble(n)) * reduced
    matrix = np.cos(angles) + 1j * np.sin(angles)
    return (matrix @ x.astype(np.clongdouble)).astype(np.complex128)


def fft_roundoff_error(
    n: int, rng: np.random.Generator, backend: str = "pure"
) -> float:
    """Relative L2 error of the float64 FFT against extended precision."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    x = rng.normal(size=n) + 1j * rng.normal(size=n)
    reference = _longdouble_dft(x)
    with use_backend(backend):
        ours = fft(x)
    return float(
        np.linalg.norm(ours - reference) / np.linalg.norm(reference)
    )


def dft_roundoff_error(n: int, rng: np.random.Generator) -> float:
    """Relative L2 error of the float64 O(n^2) matrix DFT vs extended
    precision — the baseline whose error the FFT beats."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    x = rng.normal(size=n) + 1j * rng.normal(size=n)
    reference = _longdouble_dft(x)
    direct = dft_matrix(n) @ x
    return float(
        np.linalg.norm(direct - reference) / np.linalg.norm(reference)
    )


def matvec_roundoff_comparison(
    n: int, rng: np.random.Generator
) -> tuple[float, float]:
    """(dense error, FFT error) of a circulant matvec vs extended precision.

    The dense path sums n products per output (error ~ sqrt(n) ulp); the
    FFT path performs log2 n butterfly stages (error ~ sqrt(log n) ulp) —
    the paper's section III-B accuracy argument in measurable form.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    w = rng.normal(size=n)
    x = rng.normal(size=n)

    # Extended-precision ground truth of the circular convolution.
    w_long = w.astype(np.longdouble)
    x_long = x.astype(np.longdouble)
    exact = np.zeros(n, dtype=np.longdouble)
    for k in range(n):
        exact[k] = np.sum(w_long * x_long[(k - np.arange(n)) % n])
    exact64 = exact.astype(np.float64)
    norm = np.linalg.norm(exact64)

    dense = CirculantMatrix(w).to_dense() @ x
    via_fft = circular_convolve(w, x)
    dense_error = float(np.linalg.norm(dense - exact64) / norm)
    fft_error = float(np.linalg.norm(via_fft - exact64) / norm)
    return dense_error, fft_error
