"""Model-storage analysis (the paper's O(n) weight-storage claim).

Walks a model and reports, per weight layer and in total, the dense
parameter count, the stored (structured) parameter count, the deployed
FFT-domain bytes, and the compression ratio — the numbers behind the
paper's "significant reduction in storage requirement" conclusion and the
E8 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.layers import (
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    Linear,
)
from ..nn.module import Module, Sequential

__all__ = ["StorageRow", "StorageReport", "storage_report"]

_FLOAT_BYTES = 4


@dataclass(frozen=True)
class StorageRow:
    """Storage accounting for one weight layer."""

    layer: str
    dense_params: int
    stored_params: int
    deployed_bytes: int

    @property
    def compression(self) -> float:
        return self.dense_params / self.stored_params


@dataclass
class StorageReport:
    """Aggregate storage accounting for a model."""

    rows: list[StorageRow]

    @property
    def dense_params(self) -> int:
        return sum(row.dense_params for row in self.rows)

    @property
    def stored_params(self) -> int:
        return sum(row.stored_params for row in self.rows)

    @property
    def deployed_bytes(self) -> int:
        return sum(row.deployed_bytes for row in self.rows)

    @property
    def dense_bytes(self) -> int:
        return self.dense_params * _FLOAT_BYTES

    @property
    def compression(self) -> float:
        return self.dense_params / self.stored_params


def _row_for(layer: Module) -> StorageRow | None:
    if isinstance(layer, BlockCirculantLinear):
        dense = layer.in_features * layer.out_features
        stored = layer.weight.size
        bins = layer.block_size // 2 + 1
        deployed = layer.block_rows * layer.block_cols * bins * 2 * _FLOAT_BYTES
        if layer.bias is not None:
            dense += layer.out_features
            stored += layer.out_features
            deployed += layer.out_features * _FLOAT_BYTES
        return StorageRow(repr(layer), dense, stored, deployed)
    if isinstance(layer, BlockCirculantConv2d):
        dense = layer.out_channels * layer.in_channels * layer.kernel_size**2
        stored = layer.weight.size
        bins = layer.block_size // 2 + 1
        deployed = layer.block_rows * layer.block_cols * bins * 2 * _FLOAT_BYTES
        if layer.bias is not None:
            dense += layer.out_channels
            stored += layer.out_channels
            deployed += layer.out_channels * _FLOAT_BYTES
        return StorageRow(repr(layer), dense, stored, deployed)
    if isinstance(layer, Linear):
        params = layer.in_features * layer.out_features + (
            layer.out_features if layer.bias is not None else 0
        )
        return StorageRow(repr(layer), params, params, params * _FLOAT_BYTES)
    if isinstance(layer, Conv2d):
        params = layer.out_channels * layer.in_channels * layer.kernel_size**2 + (
            layer.out_channels if layer.bias is not None else 0
        )
        return StorageRow(repr(layer), params, params, params * _FLOAT_BYTES)
    return None


def storage_report(model: Sequential) -> StorageReport:
    """Per-layer and total storage accounting for ``model``."""
    if not isinstance(model, Sequential):
        raise TypeError("storage_report requires a Sequential model")
    rows = []
    for layer in model:
        row = _row_for(layer)
        if row is not None:
            rows.append(row)
    if not rows:
        raise ValueError("model contains no weight layers")
    return StorageReport(rows)
