"""Command-line interface: the paper's deployment workflow as a tool.

Mirrors the paper's Fig. 4 pipeline from a shell:

* ``build``   — the whole pipeline declaratively: train → compress →
  quantize → package a format-v2 artifact from one
  :class:`~repro.pipeline.PipelineConfig` (JSON file and/or flags),
* ``inspect`` — print a deployment artifact's layer table and format-v2
  metadata (compression, quantization, provenance),
* ``train``   — build a model from an architecture string, train it on a
  dataset bundle (``.npz`` with ``inputs``/``labels``), save a checkpoint,
* ``deploy``  — convert a checkpoint into the FFT-domain deployment
  artifact (section IV-A),
* ``predict`` — run the standalone inference engine on an input bundle
  (builds a :class:`~repro.engine.EngineConfig` under the hood),
* ``serve``   — expose one or several deployed artifacts as an asyncio
  micro-batching TCP service (``--model name=path`` is repeatable;
  requests route per-model and per-precision, see :mod:`repro.engine`
  and :mod:`repro.serving`),
* ``route``   — front a fleet of ``serve`` backends with one
  health-probing, failover-capable router port (static ``--backend``
  addresses and/or ``--spawn N`` local child processes, see
  :mod:`repro.router`),
* ``profile`` — predict per-image latency and energy on the Table I
  devices,
* ``info``    — parameter/storage/compression report for an architecture.

Usage: ``python -m repro <command> ...`` (see ``--help`` per command).
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from .analysis import storage_report
from .data import ArrayDataset, DataLoader
from .embedded import DeployedModel, EnergyModel, InferenceProfiler, PLATFORMS
from .io import (
    build_model_from_string,
    load_inputs,
    load_weights,
    parse_architecture,
    save_weights,
)
from .engine import DEFAULT_MODEL_NAME, Engine, EngineConfig
from .exceptions import ReproError
from .nn import Adam, CrossEntropyLoss, Trainer

__all__ = ["main", "build_parser"]


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FFT-based block-circulant DNN training and deployment",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser(
        "build",
        help="run the declarative build pipeline "
        "(train -> compress -> quantize -> package, format-v2 artifact)",
    )
    build.add_argument(
        "--config",
        default=None,
        help="JSON PipelineConfig file; flags below override its keys",
    )
    build.add_argument(
        "--arch",
        default=None,
        help="zoo name (see `repro build --list-archs`) or an "
        "architecture string",
    )
    build.add_argument(
        "--list-archs", action="store_true",
        help="print registered zoo architectures and exit",
    )
    build.add_argument(
        "--dataset",
        default=None,
        help="synthetic_mnist | synthetic_cifar | path to an .npz bundle "
        "(default: the architecture's paper dataset)",
    )
    build.add_argument("--train-size", type=_positive_int, default=None)
    build.add_argument("--test-size", type=_positive_int, default=None)
    build.add_argument("--epochs", type=int, default=None)
    build.add_argument("--batch-size", type=_positive_int, default=None)
    build.add_argument("--lr", type=float, default=None)
    build.add_argument("--seed", type=int, default=None)
    build.add_argument(
        "--block-size",
        type=_positive_int,
        default=None,
        help="compress stage: project dense layers to this block size "
        "(omit to skip compression)",
    )
    build.add_argument(
        "--fine-tune-epochs", type=int, default=None,
        help="post-projection fine-tuning epochs",
    )
    build.add_argument(
        "--quantize-bits",
        type=int,
        default=None,
        help="quantize stage: fixed-point weight width, e.g. 12 "
        "(omit to skip quantization)",
    )
    build.add_argument(
        "--out", default=None, help="artifact output path (.npz, format v2)"
    )
    build.add_argument(
        "--precisions",
        default=None,
        metavar="P1[,P2]",
        help="target serving precisions recorded in provenance, "
        "e.g. fp64,fp32",
    )

    inspect = sub.add_parser(
        "inspect", help="print an artifact's layers and format-v2 metadata"
    )
    inspect.add_argument("artifact", help="deployment artifact (.npz)")
    inspect.add_argument(
        "--json", action="store_true",
        help="emit the raw describe() payload as JSON",
    )

    train = sub.add_parser("train", help="train a model from an architecture string")
    train.add_argument("architecture", help="e.g. 256-128CFb64-128CFb64-10F")
    train.add_argument("--data", required=True, help=".npz with inputs+labels")
    train.add_argument("--out", required=True, help="checkpoint path (.npz)")
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--batch-size", type=int, default=64)
    train.add_argument("--lr", type=float, default=0.003)
    train.add_argument("--seed", type=int, default=0)

    deploy = sub.add_parser(
        "deploy", help="freeze a checkpoint into an FFT-domain artifact"
    )
    deploy.add_argument("architecture")
    deploy.add_argument("--weights", required=True, help="checkpoint from `train`")
    deploy.add_argument("--out", required=True, help="artifact path (.npz)")

    predict = sub.add_parser("predict", help="run the deployed inference engine")
    predict.add_argument("model", help="artifact from `deploy`")
    predict.add_argument("--data", required=True, help=".npz/.npy/.csv inputs")
    predict.add_argument(
        "--proba", action="store_true", help="print class probabilities"
    )
    predict.add_argument(
        "--batch-size",
        type=_positive_int,
        default=256,
        help="streaming chunk size for the inference session",
    )
    predict.add_argument(
        "--precision",
        choices=("fp64", "fp32"),
        default="fp64",
        help="session precision: fp32 runs complex64/float32 end to end "
        "(half the spectrum memory, ~1e-6 accuracy)",
    )
    predict.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes; >1 shards predict batches and large "
        "block-circulant layers across a process pool",
    )
    predict.add_argument(
        "--executor",
        choices=("auto", "serial", "threaded", "sharded"),
        default=None,
        help="execution strategy: serial (in-process), threaded "
        "(in-process thread pool — no pickling or fork), sharded "
        "(fork pool), or auto (threaded on multi-core hosts).  "
        "Default: sharded when --workers > 1, else the REPRO_EXECUTOR "
        "env var, else serial",
    )
    predict.add_argument(
        "--threads",
        type=_positive_int,
        default=None,
        help="thread count for --executor threaded/auto "
        "(default: --workers, else the effective core count)",
    )
    predict.add_argument(
        "--profile",
        action="store_true",
        help="print per-op-kind cumulative timings to stderr after "
        "predicting (see docs/performance.md)",
    )
    predict.add_argument(
        "--conv-tile",
        type=_positive_int,
        default=None,
        help="overlap-add conv tiling: output rows per tile (bounds "
        "block-circulant conv memory by the tile instead of the full "
        "im2col matrix)",
    )
    predict.add_argument(
        "--no-arena",
        action="store_true",
        help="disable the per-plan workspace arena (fall back to "
        "fresh-buffer execution; results are bitwise-identical)",
    )
    predict.add_argument(
        "--no-fuse",
        action="store_true",
        help="disable the plan-compile fusion pass (keep affine / "
        "flatten / activation ops unfused; bitwise-identical)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve deployed artifacts over TCP with micro-batching "
        "and per-request model/precision routing",
    )
    serve.add_argument(
        "model",
        nargs="?",
        default=None,
        help="artifact from `deploy` (or use --model name=path, repeatable)",
    )
    serve.add_argument(
        "--model",
        dest="models",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="register an artifact under NAME (repeatable; requests "
        "select it with the `model` header field).  A bare PATH "
        "registers as the default model.",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (default: the repro serving port; 0 = ephemeral)",
    )
    serve.add_argument(
        "--precision",
        choices=("fp64", "fp32"),
        default=None,
        help="default session precision for requests naming none "
        "(default: the first entry of --precisions, else fp64; fp32 "
        "halves spectrum memory)",
    )
    serve.add_argument(
        "--precisions",
        default=None,
        metavar="P1[,P2]",
        help="comma-separated precision pool, e.g. fp64,fp32 — one "
        "lazily-frozen session per (model, precision); requests pick "
        "with the `precision` header field (default: just the default "
        "precision)",
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes; >1 shards fused batches and large "
        "block-circulant layers across a fork pool",
    )
    serve.add_argument(
        "--executor",
        choices=("auto", "serial", "threaded", "sharded"),
        default=None,
        help="execution strategy: serial, threaded (in-process thread "
        "pool), sharded (fork pool), or auto (threaded on multi-core "
        "hosts).  One shared worker pool serves every (model, "
        "precision) route.  Default: sharded when --workers > 1, else "
        "the REPRO_EXECUTOR env var, else serial",
    )
    serve.add_argument(
        "--threads",
        type=_positive_int,
        default=None,
        help="thread count for --executor threaded/auto "
        "(default: --workers, else the effective core count)",
    )
    serve.add_argument(
        "--transport",
        choices=("pipe", "shm"),
        default="pipe",
        help="how activations reach pool workers: pickled through the "
        "pool pipe, or through shared-memory ring buffers",
    )
    serve.add_argument(
        "--max-batch",
        type=_positive_int,
        default=32,
        help="flush a micro-batch once this many rows are pending",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="flush a partial micro-batch after this many milliseconds",
    )
    serve.add_argument(
        "--max-streams",
        type=_positive_int,
        default=64,
        help="open incremental-inference streams allowed at once; a "
        "stream_open beyond this is shed as overloaded (each open "
        "stream holds its per-layer history in server memory)",
    )
    serve.add_argument(
        "--conv-tile",
        type=_positive_int,
        default=None,
        help="overlap-add conv tiling: output rows per tile",
    )
    serve.add_argument(
        "--no-arena",
        action="store_true",
        help="disable the per-plan workspace arena "
        "(bitwise-identical fresh-buffer execution)",
    )
    serve.add_argument(
        "--no-fuse",
        action="store_true",
        help="disable the plan-compile fusion pass (bitwise-identical)",
    )

    route = sub.add_parser(
        "route",
        help="front a fleet of `repro serve` backends with one "
        "health-probing, failover-capable router port",
    )
    route.add_argument(
        "--backend",
        dest="backends",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="address of an already-running `repro serve` backend "
        "(repeatable; combinable with --spawn)",
    )
    route.add_argument(
        "--spawn",
        type=int,
        default=0,
        metavar="N",
        help="launch N local `repro serve` child processes on ephemeral "
        "ports and own their lifecycle (requires --model)",
    )
    route.add_argument(
        "--model",
        dest="models",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="artifact registry for spawned children (repeatable; a "
        "bare PATH registers as the default model).  Static backends "
        "advertise their own registries over the info op.",
    )
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument(
        "--port",
        type=int,
        default=None,
        help="router TCP port (default: the repro serving port; "
        "0 = ephemeral)",
    )
    route.add_argument(
        "--precisions",
        default=None,
        metavar="P1[,P2]",
        help="precision pool passed to spawned children "
        "(--precisions fp64,fp32)",
    )
    route.add_argument(
        "--spawn-arg",
        dest="spawn_args",
        action="append",
        default=[],
        metavar="ARG",
        help="extra argument appended verbatim to each spawned child's "
        "`repro serve` command line (repeatable, e.g. "
        "--spawn-arg=--max-batch --spawn-arg=64)",
    )
    route.add_argument(
        "--probe-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="seconds between health probes per backend (the info op)",
    )
    route.add_argument(
        "--probe-timeout",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="per-probe timeout; exceeding it marks the backend down",
    )
    route.add_argument(
        "--request-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="timeout for one forwarded request round-trip",
    )
    route.add_argument(
        "--pool-size",
        type=_positive_int,
        default=2,
        help="idle persistent connections kept per backend",
    )
    route.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=None,
        help="distinct backends tried per predict before giving up "
        "(default: every routable candidate)",
    )

    profile = sub.add_parser(
        "profile", help="predict on-device latency and energy"
    )
    profile.add_argument("architecture")
    profile.add_argument(
        "--battery", action="store_true", help="simulate unplugged operation"
    )

    info = sub.add_parser("info", help="storage / compression report")
    info.add_argument("architecture")
    return parser


def _input_shape(architecture: str) -> tuple[int, ...]:
    return parse_architecture(architecture).input_shape


def _cmd_build(args) -> int:
    from . import zoo
    from .pipeline import Pipeline, PipelineConfig

    if args.list_archs:
        for name in zoo.names():
            entry = zoo.entry(name)
            print(f"{name:16s} {entry.dataset:16s} {entry.description}")
        return 0

    overrides = dict(
        architecture=args.arch,
        dataset=args.dataset,
        train_size=args.train_size,
        test_size=args.test_size,
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        seed=args.seed,
        block_size=args.block_size,
        fine_tune_epochs=args.fine_tune_epochs,
        quantize_bits=args.quantize_bits,
        out=args.out,
    )
    if args.precisions is not None:
        overrides["precisions"] = tuple(
            p.strip() for p in args.precisions.split(",") if p.strip()
        )
    try:
        if args.config is not None:
            config = PipelineConfig.from_file(args.config, **overrides)
        else:
            config = PipelineConfig(
                **{k: v for k, v in overrides.items() if v is not None}
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    pipeline = Pipeline(config)
    try:
        if config.out is not None:
            # Probe the output location before spending the training
            # budget: an unwritable --out must fail now, not after the
            # last epoch.
            import os as _os

            config.out.parent.mkdir(parents=True, exist_ok=True)
            if not _os.access(config.out.parent, _os.W_OK):
                raise OSError(f"output directory {config.out.parent} "
                              "is not writable")
        result = pipeline.run()
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    train = result.train
    if train.skipped:
        print(f"train: skipped (epochs=0), test accuracy "
              f"{train.test_accuracy:.4f}")
    else:
        print(f"train: {train.epochs} epochs, train accuracy "
              f"{train.train_accuracy:.4f}, test accuracy "
              f"{train.test_accuracy:.4f} ({train.seconds:.1f}s)")
    compress = result.compress
    if compress.skipped:
        print("compress: skipped (no block_size)")
    else:
        worst = max(
            (r.relative_error for r in compress.report), default=0.0
        )
        print(f"compress: block {compress.block_size}, "
              f"{len(compress.report)} layer(s) projected "
              f"(worst error {worst:.3f}), test accuracy "
              f"{compress.test_accuracy:.4f}")
    quantize = result.quantize
    if quantize.skipped:
        print("quantize: skipped (no quantize_bits)")
    else:
        print(f"quantize: {quantize.total_bits}-bit fixed point, "
              f"accuracy delta {quantize.accuracy_delta:+.4f}, "
              f"max weight error {quantize.max_weight_error:.2e}")
    package = result.package
    where = package.path if package.path is not None else "<memory>"
    print(f"package: {where} "
          f"({package.storage_bytes / 1024:.1f} KB, format v{package.version}, "
          f"hash {config.config_hash()})")
    return 0


def _cmd_inspect(args) -> int:
    import json as _json

    from .embedded import DeployedModel

    try:
        deployed = DeployedModel.load(args.artifact)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    info = deployed.describe()
    if args.json:
        print(_json.dumps(info, indent=2))
        return 0
    print(f"artifact: {args.artifact}")
    print(f"format: v{info['version']}"
          f"{' (quantized)' if info['quantized'] else ''}, "
          f"{info['storage_bytes'] / 1024:.1f} KB")
    print(f"{'idx':>3s} {'kind':12s} {'shape':24s} {'block':>5s} "
          f"{'qformat':>8s} {'q_err':>9s} {'bytes':>9s}")
    for layer in info["layers"]:
        arrays = layer.get("arrays", {})
        main = arrays.get("weight_q") or arrays.get("spectra") \
            or arrays.get("weight") or {}
        shape = "x".join(str(d) for d in main.get("shape", [])) or "-"
        total = sum(a["bytes"] for a in arrays.values())
        q_err = layer.get("quantization_error")
        print(f"{layer['index']:3d} {layer['kind']:12s} {shape:24s} "
              f"{str(layer.get('block_size', '-')):>5s} "
              f"{layer.get('qformat', '-'):>8s} "
              f"{'-' if q_err is None else format(q_err, '.2e'):>9s} "
              f"{total:9d}")
    meta = info.get("metadata") or {}
    quantization = meta.get("quantization")
    if quantization:
        print(f"quantization: {quantization['total_bits']}-bit, "
              f"accuracy delta {quantization.get('accuracy_delta')}, "
              f"max weight error {quantization['max_weight_error']:.2e}")
    compression = meta.get("compression") or {}
    if compression.get("block_size") is not None:
        print(f"compression: block {compression['block_size']}, "
              f"{len(compression.get('projection', []))} projected layer(s)")
    provenance = meta.get("provenance")
    if provenance:
        print(f"provenance: config hash {provenance.get('config_hash')}, "
              f"trained {provenance.get('training', {}).get('epochs', 0)} "
              f"epoch(s), repro {provenance.get('repro_version')}")
        if provenance.get("test_accuracy") is not None:
            print(f"test accuracy: {provenance['test_accuracy']:.4f}")
    if meta.get("precisions"):
        print(f"target precisions: {','.join(meta['precisions'])}")
    return 0


def _cmd_train(args) -> int:
    inputs, labels = load_inputs(args.data)
    if labels is None:
        print("error: training data must include labels", file=sys.stderr)
        return 2
    model = build_model_from_string(
        args.architecture, rng=np.random.default_rng(args.seed)
    )
    loader = DataLoader(
        ArrayDataset(inputs, labels),
        batch_size=args.batch_size,
        shuffle=True,
        seed=args.seed,
    )
    trainer = Trainer(model, CrossEntropyLoss(), Adam(model.parameters(), lr=args.lr))
    history = trainer.fit(loader, epochs=args.epochs, verbose=True)
    save_weights(model, args.out)
    print(
        f"saved checkpoint to {args.out} "
        f"(final train accuracy {history.final.train_accuracy:.4f})"
    )
    return 0


def _cmd_deploy(args) -> int:
    model = build_model_from_string(args.architecture)
    load_weights(model, args.weights)
    model.eval()
    deployed = DeployedModel.from_model(model)
    deployed.save(args.out)
    print(
        f"saved deployment artifact to {args.out} "
        f"({deployed.storage_bytes() / 1024:.1f} KB, FFT-domain weights)"
    )
    return 0


def _effective_workers(requested: int) -> int:
    """CLI wrapper for :func:`repro.runtime.executors.effective_workers`.

    Same single-CPU clamp, but the warning lands on stderr as a plain
    ``warning:`` line (the CLI's voice) instead of going through the
    :mod:`warnings` machinery.
    """
    import warnings as _warnings

    from .runtime.executors import effective_workers

    with _warnings.catch_warnings(record=True) as caught:
        _warnings.simplefilter("always")
        effective = effective_workers(requested)
    for warning in caught:
        print(f"warning: {warning.message}", file=sys.stderr)
    return effective


def _resolve_cli_executor(args, workers: int) -> str | None:
    """``--executor`` wins; bare ``--workers N>1`` keeps meaning the
    fork pool; ``None`` flows to EngineConfig (REPRO_EXECUTOR, then
    serial)."""
    if args.executor is not None:
        return args.executor
    if workers > 1:
        return "sharded"
    return None


def _print_op_stats(stats: dict) -> None:
    """The ``--profile`` table: per-op-kind cumulative time, on stderr."""
    if not stats:
        print("profile: no ops recorded", file=sys.stderr)
        return
    print("profile (per op kind):", file=sys.stderr)
    ranked = sorted(
        stats.items(), key=lambda item: item[1]["total_ns"], reverse=True
    )
    for kind, entry in ranked:
        calls, total_ns = entry["calls"], entry["total_ns"]
        total_ms = total_ns / 1e6
        per_call_us = total_ns / calls / 1e3
        print(
            f"  {kind:<24} calls={calls:<6} total={total_ms:9.3f} ms "
            f"mean={per_call_us:9.1f} us/call",
            file=sys.stderr,
        )


def _print_arena_info(info: dict) -> None:
    """The ``--profile`` arena line: workspace buffer footprint, stderr."""
    if not info.get("enabled"):
        print("arena: disabled (fresh buffers every call)", file=sys.stderr)
        return
    kb = info["nbytes"] / 1024
    print(
        f"arena: workspaces={info['workspaces']} "
        f"buffers={info['buffers']} reserved={kb:.1f} KiB "
        f"buckets={list(info['buckets'])}",
        file=sys.stderr,
    )


def _cmd_predict(args) -> int:
    # Declarative path: describe *what* to run as an EngineConfig, let
    # the Engine pool/freeze the session (precomputed spectra at the
    # chosen precision, fused ops) and stream the inputs through it in
    # chunks — on a worker pool when requested.
    workers = _effective_workers(args.workers)
    config = EngineConfig(
        model=args.model,
        precisions=(args.precision,),
        executor=_resolve_cli_executor(args, workers),
        workers=workers,
        threads=args.threads,
        profile=args.profile,
        conv_tile=args.conv_tile,
        arena=not args.no_arena,
        fuse=not args.no_fuse,
    )
    inputs, labels = load_inputs(args.data)
    with Engine(config) as engine:
        if args.proba:
            proba = engine.predict_proba(inputs, batch_size=args.batch_size)
            for row in proba:
                print(" ".join(f"{p:.4f}" for p in row))
        else:
            predictions = engine.predict(inputs, batch_size=args.batch_size)
            print(" ".join(str(int(p)) for p in predictions))
            if labels is not None:
                score = float((predictions == labels).mean())
                print(f"accuracy: {score:.4f}", file=sys.stderr)
        if args.profile:
            executor = engine.session().executor
            _print_op_stats(executor.op_stats())
            _print_arena_info(executor.arena_info())
    return 0


def _parse_model_registry(args) -> tuple[dict, str | None]:
    """CLI model flags -> (registry mapping, default model name).

    The positional artifact and bare ``--model PATH`` entries register
    as the default model; ``--model NAME=PATH`` entries register under
    NAME.  The first registered name becomes the default.
    """
    models: dict[str, str] = {}
    order: list[str] = []

    def add(name: str, path: str) -> None:
        if name in models:
            raise ValueError(f"model {name!r} registered twice")
        models[name] = path
        order.append(name)

    if args.model is not None:
        add(DEFAULT_MODEL_NAME, args.model)
    for spec in args.models:
        name, sep, path = spec.partition("=")
        if sep:
            add(name, path)
        else:
            add(DEFAULT_MODEL_NAME, spec)
    if not models:
        raise ValueError(
            "no model given; pass an artifact path or --model name=path"
        )
    return models, order[0]


def _cmd_serve(args) -> int:
    # The first stdout line is the machine-readable `serving on
    # host:port` banner (scripts and the CI smoke job parse it); the
    # config line follows via on_ready.  Workers are clamped here so the
    # warning lands on the CLI's stderr.
    workers = _effective_workers(args.workers)
    try:
        models, default_model = _parse_model_registry(args)
        # The pool is exactly what the operator asked for: --precisions
        # when given (its first entry is the default unless --precision
        # overrides), else just the single default precision.
        precisions = tuple(
            p.strip()
            for p in (args.precisions or args.precision or "fp64").split(",")
            if p.strip()
        )
        if not precisions:
            raise ValueError("--precisions must name at least one precision")
        default_precision = args.precision or precisions[0]
        if args.precision is not None and args.precision not in precisions:
            precisions = (args.precision, *precisions)
        config = EngineConfig(
            models=models,
            default_model=default_model,
            precisions=precisions,
            precision=default_precision,
            executor=_resolve_cli_executor(args, workers),
            workers=workers,
            threads=args.threads,
            transport=args.transport,
            conv_tile=args.conv_tile,
            arena=not args.no_arena,
            fuse=not args.no_fuse,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_streams=args.max_streams,
        )
    except ValueError as exc:  # covers ConfigurationError
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def announce(server) -> None:
        registry = ",".join(f"{k}={v}" for k, v in models.items())
        info = server.engine.executor_info()
        pool = info["shared_pool"]
        pool_desc = (
            "none" if pool is None else f"{pool['kind']}:{pool['workers']}"
        )
        print(
            f"models={registry} precisions={','.join(precisions)} "
            f"default={default_model}:{default_precision} "
            f"executor={info['kind']} workers={info['workers']} "
            f"shared_pool={pool_desc} transport={args.transport} "
            f"max_batch={args.max_batch} max_wait_ms={args.max_wait_ms}",
            flush=True,
        )

    if os.environ.get("REPRO_FAULTS"):
        # Deliberate fault injection for chaos tests: arm the named
        # fault points before the engine forks any worker pool, so the
        # workers inherit the shared budgets.
        from .testing import faults

        try:
            faults.arm_from_env()
        except ValueError as exc:
            print(f"error: bad REPRO_FAULTS: {exc}", file=sys.stderr)
            return 2

    with Engine(config) as engine:
        try:
            # Surface bad artifact paths as a clean CLI error before
            # the server ever binds a port or prints the banner.
            engine.load_sources()
        except (OSError, ReproError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            engine.serve(host=args.host, port=args.port, on_ready=announce)
        except OSError as exc:
            # Port already bound (or an unbindable host): a clean CLI
            # error, not a traceback.
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return 0


def _cmd_route(args) -> int:
    # Same banner contract as `serve`: the first stdout line is the
    # machine-readable `serving on host:port` line, then a config line.
    import asyncio
    import signal as _signal

    from .router import RouterConfig, RouterServer
    from .serving import DEFAULT_PORT
    from .serving.protocol import format_banner

    models: dict[str, str] = {}
    try:
        for spec in args.models:
            name, sep, path = spec.partition("=")
            if not sep:
                name, path = DEFAULT_MODEL_NAME, spec
            if name in models:
                raise ValueError(f"model {name!r} registered twice")
            models[name] = path
        precisions = None
        if args.precisions is not None:
            precisions = tuple(
                p.strip() for p in args.precisions.split(",") if p.strip()
            )
        config = RouterConfig(
            backends=tuple(args.backends),
            spawn=args.spawn,
            models=models,
            spawn_precisions=precisions,
            spawn_args=tuple(args.spawn_args),
            host=args.host,
            port=DEFAULT_PORT if args.port is None else args.port,
            probe_interval_s=args.probe_interval,
            probe_timeout_s=args.probe_timeout,
            request_timeout_s=args.request_timeout,
            pool_size=args.pool_size,
            max_attempts=args.max_attempts,
        )
    except ValueError as exc:  # covers ConfigurationError
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if os.environ.get("REPRO_FAULTS"):
        # Router-tier fault points (e.g. router.backend_down) arm here;
        # the spawner strips REPRO_FAULTS from child environments so
        # the same spec does not also arm inside every backend.
        from .testing import faults

        try:
            faults.arm_from_env()
        except ValueError as exc:
            print(f"error: bad REPRO_FAULTS: {exc}", file=sys.stderr)
            return 2

    async def _serve() -> None:
        router = RouterServer(config)
        await router.start()
        loop = asyncio.get_running_loop()
        for sig in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(sig, router.begin_drain)
            except (NotImplementedError, RuntimeError):
                break  # platform without signal support: Ctrl-C path
        print(format_banner(router.host, router.port), flush=True)
        fleet = ",".join(b.address for b in router.backends)
        print(
            f"backends={fleet} spawn={config.spawn} "
            f"routable={sum(1 for b in router.backends if b.routable)}"
            f"/{len(router.backends)} "
            f"probe_interval_s={config.probe_interval_s} "
            f"pool_size={config.pool_size}",
            flush=True,
        )
        try:
            await router.serve_forever()
        finally:
            await router.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    except (OSError, ReproError) as exc:
        # Unbindable port, a spawn that never came up: a clean CLI
        # error, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_profile(args) -> int:
    model = build_model_from_string(args.architecture)
    shape = _input_shape(args.architecture)
    profiler = InferenceProfiler(model, shape)
    energy = EnergyModel(model, shape)
    mode = " (battery)" if args.battery else ""
    print(f"{'platform':12s} {'impl':5s} {'us/image':>10s} {'uJ/image':>10s}{mode}")
    for impl in ("java", "cpp"):
        for key in sorted(PLATFORMS):
            runtime = profiler.runtime_us(key, impl, battery=args.battery)
            joules = energy.estimate(key, impl, battery=args.battery).energy_uj
            print(f"{key:12s} {impl:5s} {runtime:10.1f} {joules:10.1f}")
    return 0


def _cmd_info(args) -> int:
    model = build_model_from_string(args.architecture)
    report = storage_report(model)
    print(f"architecture: {args.architecture}")
    print(f"{'layer':55s} {'dense':>10s} {'stored':>10s} {'ratio':>7s}")
    for row in report.rows:
        print(
            f"{row.layer[:55]:55s} {row.dense_params:10d} "
            f"{row.stored_params:10d} {row.compression:6.1f}x"
        )
    print(
        f"total: {report.dense_params} dense -> {report.stored_params} stored "
        f"({report.compression:.1f}x), deployed {report.deployed_bytes / 1024:.1f} KB"
    )
    return 0


_COMMANDS = {
    "build": _cmd_build,
    "inspect": _cmd_inspect,
    "train": _cmd_train,
    "deploy": _cmd_deploy,
    "predict": _cmd_predict,
    "serve": _cmd_serve,
    "route": _cmd_route,
    "profile": _cmd_profile,
    "info": _cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
