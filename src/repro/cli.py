"""Command-line interface: the paper's deployment workflow as a tool.

Mirrors the paper's Fig. 4 pipeline from a shell:

* ``train``   — build a model from an architecture string, train it on a
  dataset bundle (``.npz`` with ``inputs``/``labels``), save a checkpoint,
* ``deploy``  — convert a checkpoint into the FFT-domain deployment
  artifact (section IV-A),
* ``predict`` — run the standalone inference engine on an input bundle
  (builds a :class:`~repro.engine.EngineConfig` under the hood),
* ``serve``   — expose one or several deployed artifacts as an asyncio
  micro-batching TCP service (``--model name=path`` is repeatable;
  requests route per-model and per-precision, see :mod:`repro.engine`
  and :mod:`repro.serving`),
* ``profile`` — predict per-image latency and energy on the Table I
  devices,
* ``info``    — parameter/storage/compression report for an architecture.

Usage: ``python -m repro <command> ...`` (see ``--help`` per command).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis import storage_report
from .data import ArrayDataset, DataLoader
from .embedded import DeployedModel, EnergyModel, InferenceProfiler, PLATFORMS
from .io import (
    build_model_from_string,
    load_inputs,
    load_weights,
    parse_architecture,
    save_weights,
)
from .engine import DEFAULT_MODEL_NAME, Engine, EngineConfig
from .exceptions import ReproError
from .nn import Adam, CrossEntropyLoss, Trainer

__all__ = ["main", "build_parser"]


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FFT-based block-circulant DNN training and deployment",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a model from an architecture string")
    train.add_argument("architecture", help="e.g. 256-128CFb64-128CFb64-10F")
    train.add_argument("--data", required=True, help=".npz with inputs+labels")
    train.add_argument("--out", required=True, help="checkpoint path (.npz)")
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--batch-size", type=int, default=64)
    train.add_argument("--lr", type=float, default=0.003)
    train.add_argument("--seed", type=int, default=0)

    deploy = sub.add_parser(
        "deploy", help="freeze a checkpoint into an FFT-domain artifact"
    )
    deploy.add_argument("architecture")
    deploy.add_argument("--weights", required=True, help="checkpoint from `train`")
    deploy.add_argument("--out", required=True, help="artifact path (.npz)")

    predict = sub.add_parser("predict", help="run the deployed inference engine")
    predict.add_argument("model", help="artifact from `deploy`")
    predict.add_argument("--data", required=True, help=".npz/.npy/.csv inputs")
    predict.add_argument(
        "--proba", action="store_true", help="print class probabilities"
    )
    predict.add_argument(
        "--batch-size",
        type=_positive_int,
        default=256,
        help="streaming chunk size for the inference session",
    )
    predict.add_argument(
        "--precision",
        choices=("fp64", "fp32"),
        default="fp64",
        help="session precision: fp32 runs complex64/float32 end to end "
        "(half the spectrum memory, ~1e-6 accuracy)",
    )
    predict.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes; >1 shards predict batches and large "
        "block-circulant layers across a process pool",
    )
    predict.add_argument(
        "--conv-tile",
        type=_positive_int,
        default=None,
        help="overlap-add conv tiling: output rows per tile (bounds "
        "block-circulant conv memory by the tile instead of the full "
        "im2col matrix)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve deployed artifacts over TCP with micro-batching "
        "and per-request model/precision routing",
    )
    serve.add_argument(
        "model",
        nargs="?",
        default=None,
        help="artifact from `deploy` (or use --model name=path, repeatable)",
    )
    serve.add_argument(
        "--model",
        dest="models",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="register an artifact under NAME (repeatable; requests "
        "select it with the `model` header field).  A bare PATH "
        "registers as the default model.",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (default: the repro serving port; 0 = ephemeral)",
    )
    serve.add_argument(
        "--precision",
        choices=("fp64", "fp32"),
        default=None,
        help="default session precision for requests naming none "
        "(default: the first entry of --precisions, else fp64; fp32 "
        "halves spectrum memory)",
    )
    serve.add_argument(
        "--precisions",
        default=None,
        metavar="P1[,P2]",
        help="comma-separated precision pool, e.g. fp64,fp32 — one "
        "lazily-frozen session per (model, precision); requests pick "
        "with the `precision` header field (default: just the default "
        "precision)",
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes; >1 shards fused batches and large "
        "block-circulant layers across a fork pool",
    )
    serve.add_argument(
        "--transport",
        choices=("pipe", "shm"),
        default="pipe",
        help="how activations reach pool workers: pickled through the "
        "pool pipe, or through shared-memory ring buffers",
    )
    serve.add_argument(
        "--max-batch",
        type=_positive_int,
        default=32,
        help="flush a micro-batch once this many rows are pending",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="flush a partial micro-batch after this many milliseconds",
    )
    serve.add_argument(
        "--conv-tile",
        type=_positive_int,
        default=None,
        help="overlap-add conv tiling: output rows per tile",
    )

    profile = sub.add_parser(
        "profile", help="predict on-device latency and energy"
    )
    profile.add_argument("architecture")
    profile.add_argument(
        "--battery", action="store_true", help="simulate unplugged operation"
    )

    info = sub.add_parser("info", help="storage / compression report")
    info.add_argument("architecture")
    return parser


def _input_shape(architecture: str) -> tuple[int, ...]:
    return parse_architecture(architecture).input_shape


def _cmd_train(args) -> int:
    inputs, labels = load_inputs(args.data)
    if labels is None:
        print("error: training data must include labels", file=sys.stderr)
        return 2
    model = build_model_from_string(
        args.architecture, rng=np.random.default_rng(args.seed)
    )
    loader = DataLoader(
        ArrayDataset(inputs, labels),
        batch_size=args.batch_size,
        shuffle=True,
        seed=args.seed,
    )
    trainer = Trainer(model, CrossEntropyLoss(), Adam(model.parameters(), lr=args.lr))
    history = trainer.fit(loader, epochs=args.epochs, verbose=True)
    save_weights(model, args.out)
    print(
        f"saved checkpoint to {args.out} "
        f"(final train accuracy {history.final.train_accuracy:.4f})"
    )
    return 0


def _cmd_deploy(args) -> int:
    model = build_model_from_string(args.architecture)
    load_weights(model, args.weights)
    model.eval()
    deployed = DeployedModel.from_model(model)
    deployed.save(args.out)
    print(
        f"saved deployment artifact to {args.out} "
        f"({deployed.storage_bytes() / 1024:.1f} KB, FFT-domain weights)"
    )
    return 0


def _effective_workers(requested: int) -> int:
    """CLI wrapper for :func:`repro.runtime.executors.effective_workers`.

    Same single-CPU clamp, but the warning lands on stderr as a plain
    ``warning:`` line (the CLI's voice) instead of going through the
    :mod:`warnings` machinery.
    """
    import warnings as _warnings

    from .runtime.executors import effective_workers

    with _warnings.catch_warnings(record=True) as caught:
        _warnings.simplefilter("always")
        effective = effective_workers(requested)
    for warning in caught:
        print(f"warning: {warning.message}", file=sys.stderr)
    return effective


def _cmd_predict(args) -> int:
    # Declarative path: describe *what* to run as an EngineConfig, let
    # the Engine pool/freeze the session (precomputed spectra at the
    # chosen precision, fused ops) and stream the inputs through it in
    # chunks — on a worker pool when requested.
    workers = _effective_workers(args.workers)
    config = EngineConfig(
        model=args.model,
        precisions=(args.precision,),
        executor="sharded" if workers > 1 else "serial",
        workers=workers,
        conv_tile=args.conv_tile,
    )
    inputs, labels = load_inputs(args.data)
    with Engine(config) as engine:
        if args.proba:
            proba = engine.predict_proba(inputs, batch_size=args.batch_size)
            for row in proba:
                print(" ".join(f"{p:.4f}" for p in row))
        else:
            predictions = engine.predict(inputs, batch_size=args.batch_size)
            print(" ".join(str(int(p)) for p in predictions))
            if labels is not None:
                score = float((predictions == labels).mean())
                print(f"accuracy: {score:.4f}", file=sys.stderr)
    return 0


def _parse_model_registry(args) -> tuple[dict, str | None]:
    """CLI model flags -> (registry mapping, default model name).

    The positional artifact and bare ``--model PATH`` entries register
    as the default model; ``--model NAME=PATH`` entries register under
    NAME.  The first registered name becomes the default.
    """
    models: dict[str, str] = {}
    order: list[str] = []

    def add(name: str, path: str) -> None:
        if name in models:
            raise ValueError(f"model {name!r} registered twice")
        models[name] = path
        order.append(name)

    if args.model is not None:
        add(DEFAULT_MODEL_NAME, args.model)
    for spec in args.models:
        name, sep, path = spec.partition("=")
        if sep:
            add(name, path)
        else:
            add(DEFAULT_MODEL_NAME, spec)
    if not models:
        raise ValueError(
            "no model given; pass an artifact path or --model name=path"
        )
    return models, order[0]


def _cmd_serve(args) -> int:
    # The first stdout line is the machine-readable `serving on
    # host:port` banner (scripts and the CI smoke job parse it); the
    # config line follows via on_ready.  Workers are clamped here so the
    # warning lands on the CLI's stderr.
    workers = _effective_workers(args.workers)
    try:
        models, default_model = _parse_model_registry(args)
        # The pool is exactly what the operator asked for: --precisions
        # when given (its first entry is the default unless --precision
        # overrides), else just the single default precision.
        precisions = tuple(
            p.strip()
            for p in (args.precisions or args.precision or "fp64").split(",")
            if p.strip()
        )
        if not precisions:
            raise ValueError("--precisions must name at least one precision")
        default_precision = args.precision or precisions[0]
        if args.precision is not None and args.precision not in precisions:
            precisions = (args.precision, *precisions)
        config = EngineConfig(
            models=models,
            default_model=default_model,
            precisions=precisions,
            precision=default_precision,
            executor="sharded" if workers > 1 else "serial",
            workers=workers,
            transport=args.transport,
            conv_tile=args.conv_tile,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
        )
    except ValueError as exc:  # covers ConfigurationError
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def announce(server) -> None:
        registry = ",".join(f"{k}={v}" for k, v in models.items())
        print(
            f"models={registry} precisions={','.join(precisions)} "
            f"default={default_model}:{default_precision} "
            f"workers={workers} transport={args.transport} "
            f"max_batch={args.max_batch} max_wait_ms={args.max_wait_ms}",
            flush=True,
        )

    with Engine(config) as engine:
        try:
            # Surface bad artifact paths as a clean CLI error before
            # the server ever binds a port or prints the banner.
            engine.load_sources()
        except (OSError, ReproError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        engine.serve(host=args.host, port=args.port, on_ready=announce)
    return 0


def _cmd_profile(args) -> int:
    model = build_model_from_string(args.architecture)
    shape = _input_shape(args.architecture)
    profiler = InferenceProfiler(model, shape)
    energy = EnergyModel(model, shape)
    mode = " (battery)" if args.battery else ""
    print(f"{'platform':12s} {'impl':5s} {'us/image':>10s} {'uJ/image':>10s}{mode}")
    for impl in ("java", "cpp"):
        for key in sorted(PLATFORMS):
            runtime = profiler.runtime_us(key, impl, battery=args.battery)
            joules = energy.estimate(key, impl, battery=args.battery).energy_uj
            print(f"{key:12s} {impl:5s} {runtime:10.1f} {joules:10.1f}")
    return 0


def _cmd_info(args) -> int:
    model = build_model_from_string(args.architecture)
    report = storage_report(model)
    print(f"architecture: {args.architecture}")
    print(f"{'layer':55s} {'dense':>10s} {'stored':>10s} {'ratio':>7s}")
    for row in report.rows:
        print(
            f"{row.layer[:55]:55s} {row.dense_params:10d} "
            f"{row.stored_params:10d} {row.compression:6.1f}x"
        )
    print(
        f"total: {report.dense_params} dense -> {report.stored_params} stored "
        f"({report.compression:.1f}x), deployed {report.deployed_bytes / 1024:.1f} KB"
    )
    return 0


_COMMANDS = {
    "train": _cmd_train,
    "deploy": _cmd_deploy,
    "predict": _cmd_predict,
    "serve": _cmd_serve,
    "profile": _cmd_profile,
    "info": _cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
