"""The frozen inference session: the runtime primitive under the engine.

:class:`InferenceSession` binds one compiled plan to one executor.  It
is the low-level building block — application code should normally go
through :class:`repro.engine.Engine`, which pools sessions per
(model, precision) and adds the registry, typed requests, and serving;
this module stays the documented seam for tests, benchmarks, and the
engine itself.

**Freeze/predict contract.**  :meth:`InferenceSession.freeze` walks a
trained :class:`~repro.nn.module.Sequential` once and captures an
immutable snapshot (see :mod:`repro.runtime.plan` for the compiler):

* block-circulant weights are captured as their precomputed ``rfft``
  half-spectra (shared with the layer's version- and dtype-keyed
  :class:`~repro.structured.spectral.SpectrumCache`, so freezing a model
  that has already run inference costs no extra transforms),
* dense weights are captured at the session's precision (training after
  freezing a session and expecting the session to follow is **not**
  supported — freeze again after updating weights),
* dropout disappears, batch-norm folds its running statistics into a
  per-feature affine op,
* every elementwise activation is fused into the producing compute op,
  so the plan executes one closure per weight layer instead of one
  Python dispatch per ``Module``.

**Precision.**  ``precision="fp32"`` compiles the whole plan at
float32/complex64 (half the spectrum memory and memory traffic, ~1e-6
accuracy — plenty for the paper's embedded targets); the default
``"fp64"`` preserves the reference numerics.  Inputs are cast once at
the session boundary; nothing on the hot path silently upcasts.

**Execution.**  The session compiles to a
:class:`~repro.runtime.executors.PlanExecutor` instead of executing
itself: :class:`~repro.runtime.executors.SerialExecutor` (default)
preserves single-process behaviour;
:class:`~repro.runtime.executors.ThreadedExecutor` runs the same shard
closures on an in-process thread pool (the GIL-releasing numpy kernels
overlap on real cores with zero serialization);
:class:`~repro.runtime.executors.ShardedExecutor` partitions large
block-circulant spectra across a fork pool and shards ``predict``
batches.  Both parallel executors are bitwise-identical to serial
execution by construction.

**Allocation-free hot path.**  By default the session runs the
:func:`~repro.runtime.plan.fuse_plan` compile pass (folding affine /
flatten / activation chains into their producing compute op) and hands
the executor a per-plan workspace arena
(:class:`~repro.runtime.workspace.Workspace`): every thread or fork
worker reuses a fixed set of buffers keyed by op and bucketed batch
size, so steady-state calls allocate only the returned output array.
Both passes are bitwise-identical to the fresh-buffer reference path;
``fuse=False`` / ``arena=False`` restore it.

``predict`` / ``predict_proba`` stream arbitrarily large input arrays
through the plan in ``batch_size`` chunks, bounding peak memory by the
chunk size rather than the dataset size; ``batch_size=None`` runs one
shot.  ``conv_tile`` additionally bounds block-circulant conv memory by
emitting overlap-add streaming tiles.  No autograd graph is built
anywhere on this path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import DeploymentError
from ..nn.module import Sequential
from ..precision import PrecisionPolicy
from .executors import (
    PlanExecutor,
    SerialExecutor,
    ShardedExecutor,
    ThreadedExecutor,
)
from .plan import (
    PlanOp,
    compile_model_plan,
    compile_records_plan,
    fuse_plan,
    pool_windows,
    softmax,
)
from .workspace import DEFAULT_BATCH_BUCKETS, Workspace

__all__ = [
    "InferenceSession",
    "PlanOp",
    "Workspace",
    "iter_batches",
    "pool_windows",
    "softmax",
]


def iter_batches(x: np.ndarray, batch_size: int | None):
    """THE ``batch_size`` contract, defined once for every predict path.

    ``None`` yields the whole array as one batch; a positive value
    yields ``batch_size``-row chunks; zero or negative raises
    :class:`ValueError` ("no batching" is spelled ``None``, not ``0``).
    :class:`InferenceSession`, :class:`~repro.engine.Engine` and
    :class:`~repro.embedded.deploy.DeployedModel` all stream through
    this helper, so the semantics cannot drift between them.
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if batch_size is None or x.shape[0] <= batch_size:
        yield x
        return
    for start in range(0, x.shape[0], batch_size):
        yield x[start : start + batch_size]


def _resolve_executor(spec) -> PlanExecutor:
    """Normalize an executor spec: None/name/instance -> PlanExecutor."""
    if spec is None or isinstance(spec, PlanExecutor):
        return spec or SerialExecutor()
    if spec == "serial":
        return SerialExecutor()
    if spec == "threaded":
        return ThreadedExecutor()
    if spec == "sharded":
        return ShardedExecutor()
    raise ValueError(
        f"unknown executor {spec!r}; expected 'serial', 'threaded', "
        "'sharded', or a PlanExecutor instance"
    )


class InferenceSession:
    """A trained model frozen into a flat plan of numpy ops.

    Construct with :meth:`freeze` (from a live :class:`Sequential`) or
    :meth:`from_deployed` (from a
    :class:`~repro.embedded.deploy.DeployedModel` artifact).  The session
    holds no autograd state and never touches the source model again;
    see the module docstring for the full freeze/predict contract.

    ``precision`` is a :class:`~repro.precision.PrecisionPolicy` or its
    name; ``executor`` is a
    :class:`~repro.runtime.executors.PlanExecutor`, ``"serial"``,
    ``"threaded"``, ``"sharded"``, or ``None`` (serial).  The session
    binds the executor
    to its plan; call :meth:`close` (or use the session as a context
    manager) to release a sharded executor's worker pool.
    """

    def __init__(
        self,
        ops: Sequence[PlanOp],
        precision: str | PrecisionPolicy | None = None,
        executor: PlanExecutor | str | None = None,
        arena: bool = True,
        batch_buckets: Sequence[int] | None = None,
        fuse: bool = True,
    ):
        if not ops:
            raise DeploymentError("inference session has no ops")
        self.ops = list(ops)
        if fuse:
            self.ops = fuse_plan(self.ops)
        self.fused = fuse
        if arena:
            self.arena_buckets: tuple[int, ...] | None = (
                tuple(batch_buckets)
                if batch_buckets is not None
                else DEFAULT_BATCH_BUCKETS
            )
        else:
            self.arena_buckets = None
        self.policy = PrecisionPolicy.resolve(precision)
        self.executor = _resolve_executor(executor).bind(
            self.ops, arena_buckets=self.arena_buckets
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def freeze(
        cls,
        model: Sequential,
        precision: str | PrecisionPolicy | None = None,
        executor: PlanExecutor | str | None = None,
        conv_tile: int | None = None,
        row_shards: int | None = None,
        arena: bool = True,
        batch_buckets: Sequence[int] | None = None,
        fuse: bool = True,
    ) -> "InferenceSession":
        """Snapshot ``model`` into a session (see module docstring).

        ``conv_tile`` emits overlap-add streaming conv ops of that many
        output rows per tile; ``row_shards`` partitions large
        block-circulant spectra — linear *and* conv layers, which share
        the same block-row grid — into that many block-row shards
        (defaults to the executor's worker/thread count for a
        :class:`~repro.runtime.executors.ShardedExecutor` or
        :class:`~repro.runtime.executors.ThreadedExecutor`).  When both
        apply to the same conv layer, sharding supersedes tiling (with a
        warning): a poolable shard payload needs the one-shot im2col.

        ``arena`` (default on) gives each executor thread / fork worker
        a per-plan workspace of reusable buffers so repeated calls
        allocate nothing on the hot path; ``batch_buckets`` overrides
        the batch-size rounding grid (see
        :class:`~repro.runtime.workspace.Workspace`).  ``fuse`` (default
        on) runs the :func:`~repro.runtime.plan.fuse_plan` compile pass,
        folding affine / flatten / activation ops into their producing
        compute op.  Both are bitwise-neutral; disable them to compare
        against the unfused fresh-buffer reference path.
        """
        policy = PrecisionPolicy.resolve(precision)
        executor = _resolve_executor(executor)
        if row_shards is None and isinstance(
            executor, (ShardedExecutor, ThreadedExecutor)
        ):
            row_shards = executor.workers
        ops = compile_model_plan(
            model, policy=policy, conv_tile=conv_tile, row_shards=row_shards
        )
        return cls(
            ops,
            precision=policy,
            executor=executor,
            arena=arena,
            batch_buckets=batch_buckets,
            fuse=fuse,
        )

    @classmethod
    def from_deployed(
        cls,
        deployed,
        precision: str | PrecisionPolicy | None = None,
        executor: PlanExecutor | str | None = None,
        conv_tile: int | None = None,
        row_shards: int | None = None,
        arena: bool = True,
        batch_buckets: Sequence[int] | None = None,
        fuse: bool = True,
    ) -> "InferenceSession":
        """Build a session from a deployment artifact's layer records.

        ``deployed`` is anything with a ``records`` list in the
        :class:`~repro.embedded.deploy.DeployedModel` format.  The
        complex64 artifact spectra are widened (fp64) or used as stored
        (fp32) once here, instead of on every call as the record
        interpreter does.  ``arena`` / ``batch_buckets`` / ``fuse``
        behave exactly as in :meth:`freeze`.
        """
        policy = PrecisionPolicy.resolve(precision)
        executor = _resolve_executor(executor)
        if row_shards is None and isinstance(
            executor, (ShardedExecutor, ThreadedExecutor)
        ):
            row_shards = executor.workers
        ops = compile_records_plan(
            deployed.records,
            policy=policy,
            conv_tile=conv_tile,
            row_shards=row_shards,
        )
        return cls(
            ops,
            precision=policy,
            executor=executor,
            arena=arena,
            batch_buckets=batch_buckets,
            fuse=fuse,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def precision(self) -> str:
        """The session's precision name (``"fp64"`` or ``"fp32"``)."""
        return self.policy.name

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run one batch through the plan; returns the final op's output."""
        x = np.asarray(inputs, dtype=self.policy.real_dtype)
        if x.ndim == 1:
            x = x[None]
        return self.executor.run(x)

    def _chunks(self, x: np.ndarray, batch_size: int | None):
        return iter_batches(x, batch_size)

    def predict_proba(
        self, inputs: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """Class probabilities, streamed in ``batch_size`` chunks.

        ``batch_size`` semantics (shared verbatim by
        :meth:`~repro.embedded.deploy.DeployedModel.predict_proba` and
        the engine facade): ``None`` (default) runs one shot; a positive
        value streams that many rows per chunk; zero or negative raises
        :class:`ValueError` — "no batching" is spelled ``None``, not
        ``0``.

        With a :class:`ShardedExecutor`, chunks run concurrently on the
        worker pool; results are identical to serial streaming.
        """
        x = np.asarray(inputs, dtype=self.policy.real_dtype)
        if x.ndim == 1:
            x = x[None]
        ends_with_softmax = "softmax" in self.ops[-1].name
        outputs = self.executor.map_batches(list(self._chunks(x, batch_size)))
        if not ends_with_softmax:
            outputs = [softmax(out) for out in outputs]
        return outputs[0] if len(outputs) == 1 else np.concatenate(outputs)

    def predict(
        self, inputs: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """Predicted integer labels, streamed in ``batch_size`` chunks."""
        return self.predict_proba(inputs, batch_size=batch_size).argmax(axis=-1)

    def warm_up(self) -> "InferenceSession":
        """Pre-start executor resources (a sharded executor's fork pool).

        Serving front-ends call this before spawning their worker
        threads so the pool forks from a thread-free process; a no-op
        for executors without startup cost.
        """
        ensure = getattr(self.executor, "ensure_started", None)
        if ensure is not None:
            ensure()
        return self

    def close(self) -> None:
        """Release executor resources (a sharded executor's pool)."""
        self.executor.close()

    def __enter__(self) -> "InferenceSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> list[str]:
        """The flat plan as readable op names (fused ops show as `a+b`)."""
        return [op.name for op in self.ops]

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return (
            f"InferenceSession(precision={self.precision!r}, "
            f"executor={self.executor!r}, ops={self.describe()})"
        )
