"""The frozen inference session: flat op plan + batched streaming predict.

**Freeze/predict contract.**  :meth:`InferenceSession.freeze` walks a
trained :class:`~repro.nn.module.Sequential` once and captures an
immutable snapshot:

* block-circulant weights are captured as their precomputed ``rfft``
  half-spectra (shared with the layer's version-keyed
  :class:`~repro.structured.spectral.SpectrumCache`, so freezing a model
  that has already run inference costs no extra transforms),
* dense weights are captured by reference (training after freezing a
  session and expecting the session to follow is **not** supported —
  freeze again after updating weights),
* dropout disappears, batch-norm folds its running statistics into a
  per-feature affine op,
* every elementwise activation is fused into the producing compute op,
  so the plan executes one closure per weight layer instead of one
  Python dispatch per ``Module``.

``predict`` / ``predict_proba`` stream arbitrarily large input arrays
through the plan in ``batch_size`` chunks, bounding peak memory by the
chunk size rather than the dataset size; ``batch_size=None`` runs one
shot.  No autograd graph is built anywhere on this path.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..exceptions import DeploymentError
from ..nn.functional import im2col
from ..nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    Dropout,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from ..nn.module import Sequential
from ..structured import block_circulant_forward_batch
from ..structured.spectral import freq_major

__all__ = ["InferenceSession", "PlanOp"]


def softmax(x: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift stabilization."""
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def pool_windows(
    x: np.ndarray, kernel: int, stride: int
) -> tuple[np.ndarray, int, int]:
    """Gather ``(batch, C, L, k*k)`` pooling windows plus the output grid."""
    _, _, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    base_r = np.repeat(np.arange(out_h) * stride, out_w)
    base_c = np.tile(np.arange(out_w) * stride, out_h)
    offset_r = np.repeat(np.arange(kernel), kernel)
    offset_c = np.tile(np.arange(kernel), kernel)
    rows = base_r[:, None] + offset_r[None, :]
    cols = base_c[:, None] + offset_c[None, :]
    return x[:, :, rows, cols], out_h, out_w


class PlanOp:
    """One step of a frozen plan: a name plus a ``ndarray -> ndarray`` fn.

    ``fusable`` marks compute ops (linear, conv) that a following
    elementwise activation may be folded into.
    """

    __slots__ = ("name", "fn", "fusable")

    def __init__(
        self,
        name: str,
        fn: Callable[[np.ndarray], np.ndarray],
        fusable: bool = False,
    ):
        self.name = name
        self.fn = fn
        self.fusable = fusable

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.fn(x)

    def fuse(self, name: str, activation: Callable[[np.ndarray], np.ndarray]) -> "PlanOp":
        """A new op applying ``activation`` after this op's computation."""
        inner = self.fn

        def fused(x: np.ndarray) -> np.ndarray:
            return activation(inner(x))

        return PlanOp(f"{self.name}+{name}", fused)

    def __repr__(self) -> str:
        return f"PlanOp({self.name!r})"


_ACTIVATIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "relu": lambda x: np.maximum(x, 0.0),
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "tanh": np.tanh,
    "softmax": softmax,
}


# ----------------------------------------------------------------------
# Op builders (shared by freeze() and from_deployed())
# ----------------------------------------------------------------------
def _bc_linear_op(
    spectra: np.ndarray,
    bias: np.ndarray | None,
    in_features: int,
    out_features: int,
    block_size: int,
    spectra_fm: np.ndarray | None = None,
) -> PlanOp:
    spectra = np.asarray(spectra, dtype=np.complex128)
    if spectra_fm is None:
        spectra_fm = freq_major(spectra)
    q = spectra.shape[1]
    b = block_size
    bias = None if bias is None else np.asarray(bias, dtype=np.float64)

    def fn(x: np.ndarray) -> np.ndarray:
        batch = x.shape[0]
        if x.shape[-1] != in_features:
            raise ValueError(
                f"expected input with {in_features} features, got shape {x.shape}"
            )
        if in_features == q * b:
            blocks = x.reshape(batch, q, b)
        else:
            padded = np.zeros((batch, q * b))
            padded[:, :in_features] = x
            blocks = padded.reshape(batch, q, b)
        out = block_circulant_forward_batch(spectra, blocks, weight_fm=spectra_fm)
        out = out.reshape(batch, -1)[:, :out_features]
        if bias is not None:
            out = out + bias
        return out

    return PlanOp(
        f"bc_linear({in_features}->{out_features},b={b})", fn, fusable=True
    )


def _linear_op(weight: np.ndarray, bias: np.ndarray | None) -> PlanOp:
    weight_t = np.ascontiguousarray(np.asarray(weight, dtype=np.float64).T)
    bias = None if bias is None else np.asarray(bias, dtype=np.float64)
    out_f, in_f = weight.shape

    def fn(x: np.ndarray) -> np.ndarray:
        out = x @ weight_t
        if bias is not None:
            out = out + bias
        return out

    return PlanOp(f"linear({in_f}->{out_f})", fn, fusable=True)


def _conv_op(
    weight: np.ndarray, bias: np.ndarray | None, stride: int, padding: int
) -> PlanOp:
    weight = np.asarray(weight, dtype=np.float64)
    out_c, in_c, k, _ = weight.shape
    flat_t = np.ascontiguousarray(weight.reshape(out_c, -1).T)
    bias = None if bias is None else np.asarray(bias, dtype=np.float64)

    def fn(x: np.ndarray) -> np.ndarray:
        batch, _, height, width = x.shape
        out_h = (height + 2 * padding - k) // stride + 1
        out_w = (width + 2 * padding - k) // stride + 1
        cols = im2col(x, k, stride, padding)
        out = cols @ flat_t
        out = out.transpose(0, 2, 1).reshape(batch, out_c, out_h, out_w)
        if bias is not None:
            out = out + bias[None, :, None, None]
        return out

    return PlanOp(f"conv({in_c}->{out_c},k={k})", fn, fusable=True)


def _bc_conv_op(
    spectra: np.ndarray,
    bias: np.ndarray | None,
    in_channels: int,
    out_channels: int,
    kernel_size: int,
    block_size: int,
    stride: int,
    padding: int,
    channel_blocks: int,
    spectra_fm: np.ndarray | None = None,
) -> PlanOp:
    spectra = np.asarray(spectra, dtype=np.complex128)
    if spectra_fm is None:
        spectra_fm = freq_major(spectra)
    b = block_size
    k = kernel_size
    padded_c = channel_blocks * b
    bias = None if bias is None else np.asarray(bias, dtype=np.float64)

    def fn(x: np.ndarray) -> np.ndarray:
        batch, _, height, width = x.shape
        out_h = (height + 2 * padding - k) // stride + 1
        out_w = (width + 2 * padding - k) // stride + 1
        positions = out_h * out_w
        cols = im2col(x, k, stride, padding)
        by_pos = cols.reshape(batch, positions, in_channels, k * k).transpose(
            0, 1, 3, 2
        )
        if padded_c != in_channels:
            padded = np.zeros((batch, positions, k * k, padded_c))
            padded[..., :in_channels] = by_pos
            by_pos = padded
        blocks = by_pos.reshape(batch * positions, -1, b)
        out = block_circulant_forward_batch(spectra, blocks, weight_fm=spectra_fm)
        out = out.reshape(batch * positions, -1)[:, :out_channels]
        out = out.reshape(batch, positions, out_channels).transpose(0, 2, 1)
        out = out.reshape(batch, out_channels, out_h, out_w)
        if bias is not None:
            out = out + bias[None, :, None, None]
        return out

    return PlanOp(
        f"bc_conv({in_channels}->{out_channels},k={k},b={b})", fn, fusable=True
    )


def _affine_op(
    scale: np.ndarray, shift: np.ndarray, per_channel: bool
) -> PlanOp:
    scale = np.asarray(scale, dtype=np.float64)
    shift = np.asarray(shift, dtype=np.float64)

    def fn(x: np.ndarray) -> np.ndarray:
        if per_channel:
            return x * scale[None, :, None, None] + shift[None, :, None, None]
        return x * scale + shift

    return PlanOp("affine", fn, fusable=True)


def _maxpool_op(kernel: int, stride: int) -> PlanOp:
    def fn(x: np.ndarray) -> np.ndarray:
        windows, out_h, out_w = pool_windows(x, kernel, stride)
        return windows.max(axis=-1).reshape(x.shape[0], x.shape[1], out_h, out_w)

    return PlanOp(f"maxpool(k={kernel})", fn)


def _avgpool_op(kernel: int, stride: int) -> PlanOp:
    def fn(x: np.ndarray) -> np.ndarray:
        windows, out_h, out_w = pool_windows(x, kernel, stride)
        return windows.mean(axis=-1).reshape(x.shape[0], x.shape[1], out_h, out_w)

    return PlanOp(f"avgpool(k={kernel})", fn)


def _flatten_op() -> PlanOp:
    return PlanOp("flatten", lambda x: x.reshape(x.shape[0], -1))


def _activation_op(name: str, fn: Callable[[np.ndarray], np.ndarray]) -> PlanOp:
    return PlanOp(name, fn)


def _append_activation(
    ops: list[PlanOp], name: str, fn: Callable[[np.ndarray], np.ndarray]
) -> None:
    """Fuse the activation into the previous compute op when possible."""
    if ops and ops[-1].fusable and name != "softmax":
        ops[-1] = ops[-1].fuse(name, fn)
    else:
        ops.append(_activation_op(name, fn))


class InferenceSession:
    """A trained model frozen into a flat plan of numpy ops.

    Construct with :meth:`freeze` (from a live :class:`Sequential`) or
    :meth:`from_deployed` (from a
    :class:`~repro.embedded.deploy.DeployedModel` artifact).  The session
    holds no autograd state and never touches the source model again;
    see the module docstring for the full freeze/predict contract.
    """

    def __init__(self, ops: Sequence[PlanOp]):
        if not ops:
            raise DeploymentError("inference session has no ops")
        self.ops = list(ops)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def freeze(cls, model: Sequential) -> "InferenceSession":
        """Snapshot ``model`` into a session (see module docstring)."""
        ops: list[PlanOp] = []
        for layer in model:
            if isinstance(layer, BlockCirculantLinear):
                spectra, spectra_fm = layer._spectrum_cache.get_pair(layer.weight)
                ops.append(
                    _bc_linear_op(
                        spectra,
                        None if layer.bias is None else layer.bias.data,
                        layer.in_features,
                        layer.out_features,
                        layer.block_size,
                        spectra_fm=spectra_fm,
                    ),
                )
            elif isinstance(layer, Linear):
                ops.append(
                    _linear_op(
                        layer.weight.data,
                        None if layer.bias is None else layer.bias.data,
                    ),
                )
            elif isinstance(layer, BlockCirculantConv2d):
                spectra, spectra_fm = layer._spectrum_cache.get_pair(layer.weight)
                ops.append(
                    _bc_conv_op(
                        spectra,
                        None if layer.bias is None else layer.bias.data,
                        layer.in_channels,
                        layer.out_channels,
                        layer.kernel_size,
                        layer.block_size,
                        layer.stride,
                        layer.padding,
                        layer.channel_blocks,
                        spectra_fm=spectra_fm,
                    ),
                )
            elif isinstance(layer, Conv2d):
                ops.append(
                    _conv_op(
                        layer.weight.data,
                        None if layer.bias is None else layer.bias.data,
                        layer.stride,
                        layer.padding,
                    ),
                )
            elif isinstance(layer, ReLU):
                _append_activation(ops, "relu", _ACTIVATIONS["relu"])
            elif isinstance(layer, LeakyReLU):
                slope = layer.negative_slope
                _append_activation(
                    ops,
                    "leaky_relu",
                    lambda x, s=slope: np.where(x > 0.0, x, s * x),
                )
            elif isinstance(layer, Sigmoid):
                _append_activation(ops, "sigmoid", _ACTIVATIONS["sigmoid"])
            elif isinstance(layer, Tanh):
                _append_activation(ops, "tanh", _ACTIVATIONS["tanh"])
            elif isinstance(layer, Softmax):
                ops.append(_activation_op("softmax", softmax))
            elif isinstance(layer, Flatten):
                ops.append(_flatten_op())
            elif isinstance(layer, MaxPool2d):
                ops.append(_maxpool_op(layer.kernel_size, layer.stride))
            elif isinstance(layer, AvgPool2d):
                ops.append(_avgpool_op(layer.kernel_size, layer.stride))
            elif isinstance(layer, Dropout):
                continue  # identity at inference
            elif isinstance(layer, (BatchNorm1d, BatchNorm2d)):
                std = np.sqrt(layer.running_var + layer.eps)
                scale = layer.gamma.data / std
                shift = layer.beta.data - layer.running_mean * scale
                ops.append(
                    _affine_op(scale, shift, isinstance(layer, BatchNorm2d))
                )
            else:
                raise DeploymentError(
                    f"cannot freeze layer type {type(layer).__name__}"
                )
        return cls(ops)

    @classmethod
    def from_deployed(cls, deployed) -> "InferenceSession":
        """Build a session from a deployment artifact's layer records.

        ``deployed`` is anything with a ``records`` list in the
        :class:`~repro.embedded.deploy.DeployedModel` format.  The
        complex64 artifact spectra are widened to complex128 once here,
        instead of on every call as the record interpreter does.
        """
        ops: list[PlanOp] = []
        for record in deployed.records:
            kind = record["kind"]
            if kind == "bc_linear":
                ops.append(
                    _bc_linear_op(
                        record["spectra"],
                        record["bias"],
                        record["in_features"],
                        record["out_features"],
                        record["block_size"],
                    ),
                )
            elif kind == "linear":
                ops.append(_linear_op(record["weight"], record["bias"]))
            elif kind == "bc_conv":
                ops.append(
                    _bc_conv_op(
                        record["spectra"],
                        record["bias"],
                        record["in_channels"],
                        record["out_channels"],
                        record["kernel_size"],
                        record["block_size"],
                        record["stride"],
                        record["padding"],
                        record["channel_blocks"],
                    ),
                )
            elif kind == "conv":
                ops.append(
                    _conv_op(
                        record["weight"],
                        record["bias"],
                        record["stride"],
                        record["padding"],
                    ),
                )
            elif kind in ("relu", "sigmoid", "tanh"):
                _append_activation(ops, kind, _ACTIVATIONS[kind])
            elif kind == "leaky_relu":
                slope = record["slope"]
                _append_activation(
                    ops,
                    "leaky_relu",
                    lambda x, s=slope: np.where(x > 0.0, x, s * x),
                )
            elif kind == "softmax":
                ops.append(_activation_op("softmax", softmax))
            elif kind == "flatten":
                ops.append(_flatten_op())
            elif kind == "maxpool":
                ops.append(_maxpool_op(record["kernel"], record["stride"]))
            elif kind == "avgpool":
                ops.append(_avgpool_op(record["kernel"], record["stride"]))
            elif kind == "affine":
                ops.append(
                    _affine_op(
                        record["scale"], record["shift"], record["per_channel"]
                    ),
                )
            else:
                raise DeploymentError(f"unknown layer kind {kind!r}")
        return cls(ops)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run one batch through the plan; returns the final op's output."""
        x = np.asarray(inputs, dtype=np.float64)
        if x.ndim == 1:
            x = x[None]
        for op in self.ops:
            x = op(x)
        return x

    def _chunks(self, x: np.ndarray, batch_size: int | None):
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if batch_size is None or x.shape[0] <= batch_size:
            yield x
            return
        for start in range(0, x.shape[0], batch_size):
            yield x[start : start + batch_size]

    def predict_proba(
        self, inputs: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """Class probabilities, streamed in ``batch_size`` chunks."""
        x = np.asarray(inputs, dtype=np.float64)
        if x.ndim == 1:
            x = x[None]
        ends_with_softmax = "softmax" in self.ops[-1].name
        outputs = []
        for chunk in self._chunks(x, batch_size):
            out = self.forward(chunk)
            if not ends_with_softmax:
                out = softmax(out)
            outputs.append(out)
        return outputs[0] if len(outputs) == 1 else np.concatenate(outputs)

    def predict(
        self, inputs: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """Predicted integer labels, streamed in ``batch_size`` chunks."""
        return self.predict_proba(inputs, batch_size=batch_size).argmax(axis=-1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> list[str]:
        """The flat plan as readable op names (fused ops show as `a+b`)."""
        return [op.name for op in self.ops]

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return f"InferenceSession(ops={self.describe()})"
