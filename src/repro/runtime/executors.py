"""Plan executors: the *how* of running a frozen op plan.

:mod:`repro.runtime.plan` compiles a model into a flat list of
:class:`~repro.runtime.plan.PlanOp` closures; this module decides how
those closures actually execute.  The cooperating pieces:

* :class:`SerialExecutor` — one op after another in the calling
  process.  Zero overhead, always available.
* :class:`ShardScheduler` — the *what runs where*: given a plan and a
  mode it picks the strategy per call (batch sharding vs row sharding
  vs serial) and enumerates the shard jobs of row-sharded ops — both
  block-circulant linear and block-circulant conv ops expose the same
  ``prepare``/``shard_fns``/``combine`` surface, so the scheduler
  treats them uniformly.
* :class:`ThreadedExecutor` — thread-level parallelism inside one
  address space: a persistent thread pool runs the *same* shard
  closures the serial path runs, concurrently.  The hot kernels
  (freq-major batched complex GEMMs, packed rFFTs) are numpy calls
  that release the GIL, so thread sharding scales on real cores with
  zero pickling, no shm ring, and no fork — at small and medium
  batches it beats fork+IPC outright.
* :class:`ShardedExecutor` — the fork mechanism: a ``multiprocessing``
  fork pool plus a :class:`~repro.runtime.transport.Transport` moving
  the activations.

Both parallel executors implement two strategies, each bitwise-identical
to serial execution by construction:

- **batch sharding**: ``predict`` chunks are farmed whole to pool
  workers, each running the full plan on its chunk.  The chunks are
  exactly the ones the serial streaming path would process, so
  concatenated results match bit for bit.
- **block-row sharding**: ops compiled with ``row_shards`` expose
  shard closures, each owning a contiguous slice of the precomputed
  frequency-major spectra.  The pool maps the shard closures; the
  parent combines.  The serial path runs the *same* closures in
  sequence, so again results are bitwise identical.

**Shared worker pools.**  Executors no longer own their parallelism
one-to-one: a :class:`ThreadWorkerPool` or :class:`ForkWorkerPool` holds
a registry of attached plans keyed by *plan id*, and every pool task
carries its plan id — so one pool serves every ``(model, precision)``
route of an engine instead of a pool per pooled session.  Fork workers
inherit the registry copy-on-write at fork time (closures are not
picklable); a plan registered *after* the fork marks the pool stale and
the next pooled call for it re-forks, so late registrations stay
correct.  Construct an executor with ``pool=`` to attach it to a shared
pool; without it the executor owns a private pool (the pre-existing
behaviour).

**Profiling.**  Every executor accepts ``profile=True`` and then records
per-op-kind cumulative nanoseconds (``bc_linear``, ``bc_conv``,
``linear``, …) for each executed op; :meth:`PlanExecutor.op_stats`
returns the counters and the serving ``info`` op surfaces them per
route — so the serial/threaded/fork choice is tunable from measurement.

Executors are bound to exactly one plan (``bind``); the
:class:`~repro.runtime.session.InferenceSession` façade does this at
construction and releases the executor with the session.  ``close`` is
idempotent; owned fork pools additionally register with :mod:`atexit`,
so an interrupted run never leaks pool workers or shared-memory
segments.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import signal
import threading
import time
import warnings
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from ..exceptions import WorkerFault
from ..testing import faults
from .plan import PlanOp
from .transport import Transport, make_transport
from .workspace import Workspace

__all__ = [
    "PlanExecutor",
    "SerialExecutor",
    "ShardScheduler",
    "ShardedExecutor",
    "ThreadedExecutor",
    "ForkWorkerPool",
    "ThreadWorkerPool",
    "effective_workers",
    "effective_cpu_count",
]

#: Row threshold the engine's ``executor="auto"`` policy hands to
#: :class:`ThreadedExecutor`: calls with fewer total rows than this run
#: serial (thread-dispatch overhead beats the win on tiny inputs).
AUTO_MIN_ROWS = 2


def effective_cpu_count() -> int:
    """Cores this process may actually run on.

    ``os.cpu_count()`` reports the host; a container pinned to one core
    of a 64-core machine still sees 64.  ``sched_getaffinity`` reports
    the schedulable set, which is what thread/fork parallelism can
    really use — benchmarks record both so the numbers stay honest.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:
            pass
    return os.cpu_count() or 1


def effective_workers(requested: int) -> int:
    """Clamp a worker request to what the host can parallelize.

    On a single-CPU host a fork pool can only add IPC overhead (the
    0.37x regression BENCH_fdx.json once recorded), so callers that are
    about to build a :class:`ShardedExecutor` from user input should
    pass the request through here: it warns and returns 1 when the host
    exposes a single schedulable CPU.  Explicit
    ``ShardedExecutor(workers=...)`` construction stays unclamped on
    purpose — benchmarks measure the pool overhead deliberately.
    """
    if requested > 1 and effective_cpu_count() <= 1:
        warnings.warn(
            f"this host exposes a single CPU; workers={requested} would "
            "only add process-pool overhead — running serial instead",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    return requested


# Plan registry handed to fork-pool workers via fork inheritance.
# Closures are not picklable, so pools fork only after the plans they
# serve are registered; forked children snapshot the whole registry
# copy-on-write and look plans up by the id each task carries.
_WORKER_PLANS: dict[int, list[PlanOp]] = {}
_WORKER_TRANSPORT: Transport | None = None
#: Per-plan arena bucket sets, fork-inherited alongside the plan
#: registry.  Forked children build their own :class:`Workspace` per
#: plan lazily (post-fork, so arena pages are private, never shared
#: copy-on-write with the parent or sibling workers); the parent's
#: ``_WORKER_ARENAS`` stays empty — parent-side execution uses the
#: executors' thread-local workspaces.
_WORKER_ARENA_BUCKETS: dict[int, tuple[int, ...] | None] = {}
_WORKER_ARENAS: dict[int, Workspace] = {}
#: Process-wide plan-id source (CPython ``count.__next__`` is atomic).
_plan_ids = itertools.count(1)
#: Serializes the set-globals-then-fork window across pools, so two
#: engines forking concurrently cannot swap each other's transport.
_FORK_LOCK = threading.Lock()


def _maybe_fault() -> None:
    """Injected-fault hook at pool-task start (no-op unless armed).

    ``worker.kill`` SIGKILLs this worker (an abrupt death the parent's
    sentinel must detect), ``worker.hang`` sleeps long enough that the
    parent's ``task_timeout`` fires first (a dropped result frame), and
    ``worker.delay`` sleeps briefly (a late frame that must still be
    consumed normally).  Budgets are shared across the fork, so
    ``times=1`` fires in exactly one worker.
    """
    if not faults.enabled:
        return
    if faults.take("worker.kill") is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    hang = faults.take("worker.hang", seconds=3600.0)
    if hang is not None:
        time.sleep(float(hang["seconds"]))
    delay = faults.take("worker.delay", seconds=0.05)
    if delay is not None:
        time.sleep(float(delay["seconds"]))


def _worker_workspace(plan_id: int) -> Workspace | None:
    """This worker's private arena for one plan (lazily built)."""
    buckets = _WORKER_ARENA_BUCKETS.get(plan_id)
    if buckets is None:
        return None
    ws = _WORKER_ARENAS.get(plan_id)
    if ws is None:
        ws = _WORKER_ARENAS[plan_id] = Workspace(buckets)
    return ws


def _worker_run_plan(plan_id: int, task) -> object:
    """Run one inherited plan end to end on one batch chunk."""
    _maybe_fault()
    x = _WORKER_TRANSPORT.worker_recv(task)
    ws = _worker_workspace(plan_id)
    op = None
    for op in _WORKER_PLANS[plan_id]:
        x = op.run(x, ws)
    if ws is not None and op is not None and op.ws_fn is not None:
        # The result must outlive this task: the next task on this
        # worker reuses every arena slot.
        x = x.copy()
    return _WORKER_TRANSPORT.worker_send(task, x)


def _worker_run_shard(
    plan_id: int, op_index: int, shard_index: int, task
) -> object:
    """Run one row-shard closure of one op of an inherited plan.

    The task's payload is the op's prepared input (the parent computes
    ``op.prepare(x)`` once and stages the same spectrum for every
    shard).
    """
    _maybe_fault()
    payload = _WORKER_TRANSPORT.worker_recv(task)
    out = _WORKER_PLANS[plan_id][op_index].shard_fns[shard_index](payload)
    return _WORKER_TRANSPORT.worker_send(task, out)


class PlanExecutor:
    """Strategy interface for executing a frozen plan.

    ``bind`` attaches the executor to exactly one plan (a sequence of
    :class:`PlanOp`) — rebinding raises, because a session that handed
    its plan to an executor must never silently start executing another
    session's ops; ``run`` executes one batch; ``map_batches`` executes
    a list of pre-chunked batches and returns per-chunk outputs in
    order.  ``close`` releases any resources (process pools).

    ``profile=True`` arms per-op timing: every executed op adds its
    wall nanoseconds to a per-op-kind counter (the kind is the op name
    up to its ``(`` — fused and sharded variants of a layer aggregate
    under one key).  Counters accumulate *per thread* — the hot path
    touches no shared state and no lock — and :meth:`op_stats` merges
    the per-thread stores on read, so threaded executors profile safely
    and contention-free.

    ``bind(..., arena_buckets=...)`` arms the workspace arena: each
    executing thread lazily builds a private
    :class:`~repro.runtime.workspace.Workspace` and the inner loop runs
    every op's arena form (:meth:`PlanOp.run`).  Results that would
    otherwise be views into the arena are copied out before returning —
    the next call reuses every slot, so nothing escaping the executor
    may alias one.
    """

    _ops: list[PlanOp] | None = None

    def __init__(self, profile: bool = False):
        self.profile = bool(profile)
        self._state_lock = threading.Lock()
        self._op_stores: list[dict[str, list[int]]] = []
        self._workspaces: list[Workspace] = []
        self._tls = threading.local()
        self._arena_buckets: tuple[int, ...] | None = None

    def bind(
        self,
        ops: Sequence[PlanOp],
        arena_buckets: tuple[int, ...] | None = None,
    ) -> "PlanExecutor":
        if self._ops is not None:
            raise RuntimeError(
                "executor is already bound to a plan; "
                "use one executor per session"
            )
        self._ops = list(ops)
        self._arena_buckets = (
            None if arena_buckets is None else tuple(arena_buckets)
        )
        return self

    def _record_op(self, name: str, ns: int) -> None:
        store = getattr(self._tls, "op_ns", None)
        if store is None:
            store = {}
            with self._state_lock:
                self._op_stores.append(store)
            self._tls.op_ns = store
        kind = name.split("(", 1)[0]
        cell = store.get(kind)
        if cell is None:
            store[kind] = [1, ns]
        else:
            cell[0] += 1
            cell[1] += ns

    def _workspace(self) -> Workspace | None:
        """This thread's arena (lazily built; None when arena is off)."""
        if self._arena_buckets is None:
            return None
        ws = getattr(self._tls, "ws", None)
        if ws is None:
            ws = Workspace(self._arena_buckets)
            with self._state_lock:
                self._workspaces.append(ws)
            self._tls.ws = ws
        return ws

    def _run_ops(self, x: np.ndarray, ops=None) -> np.ndarray:
        """The serial inner loop, shared by every executor's fallback
        path, with per-op timing when profiling is armed."""
        ops = self._ops if ops is None else ops
        ws = self._workspace()
        op = None
        if not self.profile:
            for op in ops:
                x = op.run(x, ws)
        else:
            for op in ops:
                start = time.perf_counter_ns()
                x = op.run(x, ws)
                self._record_op(op.name, time.perf_counter_ns() - start)
        if ws is not None and op is not None and op.ws_fn is not None:
            # The result may be an arena view; the next call overwrites
            # every slot, so it escapes as a private copy.
            x = x.copy()
        return x

    def op_stats(self) -> dict:
        """Per-op-kind cumulative timings: ``{kind: {calls, total_ns}}``.

        Empty until ``profile=True`` and at least one op has run.
        Merges the per-thread stores on read.  The serving ``info`` op
        surfaces this per route; ``repro predict --profile`` prints it.
        """
        with self._state_lock:
            stores = list(self._op_stores)
        merged: dict[str, list[int]] = {}
        for store in stores:
            # Owner threads append concurrently; snapshotting can lose
            # the race against a brand-new kind — retry, never block
            # the hot path with a lock.
            for _ in range(8):
                try:
                    snapshot = dict(store)
                    break
                except RuntimeError:
                    continue
            else:  # pragma: no cover - pathological contention
                snapshot = {}
            for kind, (calls, total) in snapshot.items():
                cell = merged.setdefault(kind, [0, 0])
                cell[0] += calls
                cell[1] += total
        return {
            kind: {"calls": calls, "total_ns": total}
            for kind, (calls, total) in sorted(merged.items())
        }

    def reset_op_stats(self) -> None:
        with self._state_lock:
            for store in self._op_stores:
                store.clear()

    def arena_info(self) -> dict:
        """Arena posture and resident-buffer footprint across threads."""
        with self._state_lock:
            stats = [ws.stats() for ws in self._workspaces]
        return {
            "enabled": self._arena_buckets is not None,
            "buckets": self._arena_buckets,
            "workspaces": len(stats),
            "buffers": sum(s["buffers"] for s in stats),
            "nbytes": sum(s["nbytes"] for s in stats),
        }

    def run(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def map_batches(self, chunks: list[np.ndarray]) -> list[np.ndarray]:
        return [self.run(chunk) for chunk in chunks]

    def close(self) -> None:
        """Release executor resources; the executor is unusable after."""

    def __enter__(self) -> "PlanExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(PlanExecutor):
    """Run the plan op by op in the calling process (the default)."""

    def run(self, x: np.ndarray) -> np.ndarray:
        return self._run_ops(x)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ShardScheduler:
    """Decides *what* runs on the pool for a bound plan.

    The scheduler owns the strategy choices shared by every parallel
    executor: which ops of the plan are row-sharded (block-circulant
    linear and conv ops compiled with ``row_shards`` both qualify —
    they expose the same shard surface), whether a single-batch call
    should use row sharding, and whether a chunked ``predict`` should
    fan chunks out to workers.  It is pure policy: no pool, no
    transport, trivially testable.
    """

    _MODES = ("auto", "batch", "rows")

    def __init__(self, ops: Sequence[PlanOp], mode: str = "auto"):
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        self.ops = list(ops)
        self.mode = mode
        #: op index -> shard count, for every row-sharded op in the plan
        self.row_ops = {
            i: len(op.shard_fns)
            for i, op in enumerate(self.ops)
            if op.shard_fns is not None and len(op.shard_fns) > 1
        }

    def run_strategy(self, can_fork: bool = True) -> str:
        """``"rows"`` or ``"serial"`` for a single-batch ``run`` call."""
        if not can_fork or self.mode == "batch" or not self.row_ops:
            return "serial"
        return "rows"

    def use_batch_pool(self, n_chunks: int, can_fork: bool = True) -> bool:
        """Should ``map_batches`` fan its chunks out to the pool?"""
        return can_fork and self.mode != "rows" and n_chunks > 1

    def shard_jobs(self, op_index: int) -> list[tuple[int, int]]:
        """The pool jobs for one op: ``(op_index, shard_index)`` pairs."""
        return [(op_index, j) for j in range(self.row_ops.get(op_index, 0))]

    def describe(self) -> dict:
        """Summary for introspection (server ``info``, tests)."""
        return {
            "mode": self.mode,
            "ops": len(self.ops),
            "row_sharded_ops": {
                self.ops[i].name: n for i, n in self.row_ops.items()
            },
        }

    def __repr__(self) -> str:
        return (
            f"ShardScheduler(mode={self.mode!r}, ops={len(self.ops)}, "
            f"row_sharded={len(self.row_ops)})"
        )


class ThreadWorkerPool:
    """A persistent thread pool shared by any number of attached plans.

    The in-process counterpart of :class:`ForkWorkerPool`: plans
    register for a plan id (uniformity with the fork pool — and the
    ``plans`` count is what ``Engine.health()`` reports), and every
    attached :class:`ThreadedExecutor` submits its shard closures here.
    Threads share the parent's address space, so there is no staleness:
    a plan registered at any time is immediately runnable.

    ``ensure_started`` is lock-guarded — two routes starting
    concurrently cannot race the pool into existence twice.
    """

    kind = "thread"

    def __init__(self, threads: int | None = None):
        if threads is None:
            threads = effective_cpu_count()
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self._plans: dict[int, list[PlanOp]] = {}
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        #: Threads cannot die under the caller the way fork workers
        #: can; the attribute exists for a uniform pool surface.
        self.degraded = False

    #: Uniform sizing attribute with :class:`ForkWorkerPool`.
    @property
    def workers(self) -> int:
        return self.threads

    @property
    def started(self) -> bool:
        return self._pool is not None

    def register(
        self,
        ops: Sequence[PlanOp],
        arena_buckets: tuple[int, ...] | None = None,
    ) -> int:
        # ``arena_buckets`` is accepted for pool-surface uniformity with
        # the fork pool but unused: thread workers run the *executor's*
        # inner loop, so arenas stay thread-local on the executor.
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            plan_id = next(_plan_ids)
            self._plans[plan_id] = list(ops)
            return plan_id

    def evict(self, plan_id: int) -> None:
        with self._lock:
            self._plans.pop(plan_id, None)

    def ensure_started(self, plan_id: int | None = None) -> "ThreadWorkerPool":
        """Start the thread pool now (idempotent, lock-guarded)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.threads,
                    thread_name_prefix="repro-exec",
                )
            return self

    def submit(self, fn, *args):
        pool = self._pool
        if pool is None:
            pool = self.ensure_started()._pool
        return pool.submit(fn, *args)

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "workers": self.threads,
            "started": self.started,
            "plans": len(self._plans),
            "degraded": False,
        }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            self._plans.clear()
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        return (
            f"ThreadWorkerPool(threads={self.threads}, "
            f"plans={len(self._plans)}, started={self.started})"
        )


class ForkWorkerPool:
    """One fork pool + transport serving every registered plan.

    Replaces the pool-per-executor design: plans register for an id
    (entering the fork-inherited ``_WORKER_PLANS`` registry), every
    pool task carries its plan id, and forked children look the plan up
    in their copy-on-write snapshot — so M models × P precisions share
    ``workers`` processes instead of forking ``M * P`` pools.

    **Fork staleness.**  Children only hold the plans registered before
    the fork.  ``ensure_started(plan_id)`` re-forks the pool when the
    plan registered after the last fork (terminate + fork is cheap next
    to a plan compile, and re-forking from the parent re-inherits every
    current plan).  Register the full route grid before serving threads
    exist — ``Engine.warm_up()`` does — and the pool forks exactly once.

    **Fault tolerance** (the machinery that used to live per-executor):
    results are awaited with a short poll; between polls the pool
    compares live worker pids against the fork-time snapshot.  A
    changed pid set or recorded exitcode means a worker died mid-task
    and its result will never arrive.  Recovery: terminate the wreck,
    :meth:`~repro.runtime.transport.Transport.reset` the transport
    (reaping every shm segment the dead pool held), fork a fresh pool
    **once**, and retry the call — plan ops are pure functions of their
    input, so the retry is bitwise identical to an undisturbed run.  A
    second fault sets :attr:`degraded` and every attached executor
    permanently falls back to serial execution; requests keep
    succeeding, just slower.  Counters live in :attr:`fault_stats`.

    On platforms without the ``fork`` start method the pool degrades to
    serial execution with a warning (closures cannot be pickled to
    spawned workers).
    """

    kind = "fork"

    #: Result-poll interval while watching for worker deaths.
    _POLL_S = 0.05

    def __init__(
        self,
        workers: int | None = None,
        transport: str | Transport | None = None,
        task_timeout: float | None = 60.0,
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be positive or None, got {task_timeout}"
            )
        self.workers = workers
        self.transport = make_transport(transport)
        self.task_timeout = task_timeout
        #: True once fault recovery has exhausted its one respawn and
        #: attached executors fell back to serial execution permanently.
        self.degraded = False
        #: Fault-recovery counters, surfaced by the server ``info`` op.
        self.fault_stats = {
            "faults": 0,
            "respawns": 0,
            "retried_calls": 0,
            "degraded": False,
        }
        self._respawned = False
        self._worker_pids: set = set()
        self._pool = None
        self._plans: dict[int, list[PlanOp]] = {}
        self._forked_plans: frozenset[int] = frozenset()
        self._lock = threading.RLock()
        self._atexit = None
        self._closed = False
        self.can_fork = "fork" in multiprocessing.get_all_start_methods()
        if not self.can_fork:
            warnings.warn(
                "the fork worker pool requires the 'fork' start method; "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )

    @property
    def started(self) -> bool:
        return self._pool is not None

    # ------------------------------------------------------------------
    # Plan registry
    # ------------------------------------------------------------------
    def register(
        self,
        ops: Sequence[PlanOp],
        arena_buckets: tuple[int, ...] | None = None,
    ) -> int:
        """Enter a plan into the fork-inheritance registry; returns its id.

        Registering after the pool forked is allowed — the pool is
        marked stale for that plan and re-forks on its first pooled
        call — but registering the full grid first forks exactly once.
        ``arena_buckets`` arms fork-local workspace arenas: children
        inherit the bucket set and build private arenas lazily.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            plan_id = next(_plan_ids)
            ops = list(ops)
            self._plans[plan_id] = ops
            _WORKER_PLANS[plan_id] = ops
            if arena_buckets is not None:
                _WORKER_ARENA_BUCKETS[plan_id] = tuple(arena_buckets)
            return plan_id

    def evict(self, plan_id: int) -> None:
        """Drop a plan from the registry (its session closed).

        The parent-side references go away so the plan's spectra can be
        garbage collected; live children keep their fork-time snapshot
        harmlessly — nothing will submit that plan id again.
        """
        with self._lock:
            self._plans.pop(plan_id, None)
            _WORKER_PLANS.pop(plan_id, None)
            _WORKER_ARENA_BUCKETS.pop(plan_id, None)
            _WORKER_ARENAS.pop(plan_id, None)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _terminate_locked(self) -> None:
        if self._pool is not None:
            try:
                self._pool.terminate()
                self._pool.join()
            except Exception:
                pass
            self._pool = None
        self._worker_pids = set()

    def _fork_locked(self) -> None:
        global _WORKER_TRANSPORT
        with _FORK_LOCK:
            self.transport.bind(self.workers)
            _WORKER_TRANSPORT = self.transport
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(self.workers)
        self._worker_pids = {p.pid for p in self._pool._pool}
        self._forked_plans = frozenset(self._plans)
        # Interrupted benchmarks and crashed servers must not leak
        # fork-pool workers or shm segments; close() unregisters.
        if self._atexit is None:
            self._atexit = self.close
            atexit.register(self._atexit)

    def ensure_started(self, plan_id: int | None = None) -> "ForkWorkerPool":
        """Fork the worker pool now (idempotent, lock-guarded).

        Call this before starting threads (an asyncio serving
        front-end, a benchmark harness) so the pool forks from a
        thread-free process — forking after threads exist risks
        inheriting held locks into the children.  With ``plan_id`` the
        forked children are additionally guaranteed to hold that plan:
        a plan registered after the last fork re-forks the pool.  The
        lock makes concurrent calls from two routes safe — exactly one
        pool is ever created.
        """
        if not self.can_fork:
            return self
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            if not self._plans:
                return self  # nothing to serve yet
            if self._pool is None:
                self._fork_locked()
            elif plan_id is not None and plan_id not in self._forked_plans:
                # Registered after the fork: the children lack it.
                self._terminate_locked()
                self._fork_locked()
            return self

    # ------------------------------------------------------------------
    # Fault detection and recovery
    # ------------------------------------------------------------------
    def _pool_failed(self) -> bool:
        """Has any worker of the current pool died?

        ``multiprocessing.Pool`` quietly replaces dead workers, but the
        task a dead worker held is lost forever — so a changed pid set
        (or a recorded exitcode) is the signal that some in-flight
        result will never arrive.
        """
        pool = self._pool
        if pool is None:
            return True
        try:
            procs = list(pool._pool)
        except Exception:
            return True
        if any(p.exitcode is not None for p in procs):
            return True
        return {p.pid for p in procs} != self._worker_pids

    def _await_result(self, async_result):
        """Poll one async result, watching the pool for worker deaths.

        Raises :class:`WorkerFault` when the pid sentinel trips or the
        task outlives ``task_timeout``; otherwise behaves exactly like
        ``async_result.get()``.
        """
        deadline = (
            None
            if self.task_timeout is None
            else time.monotonic() + self.task_timeout
        )
        while True:
            try:
                return async_result.get(timeout=self._POLL_S)
            except multiprocessing.TimeoutError:
                if self._pool_failed():
                    raise WorkerFault(
                        "a pool worker died before returning its result"
                    ) from None
                if deadline is not None and time.monotonic() > deadline:
                    raise WorkerFault(
                        f"pool task produced no result within "
                        f"task_timeout={self.task_timeout}s"
                    ) from None

    def recover(self, fault: WorkerFault) -> bool:
        """Tear down the dead pool; True when a retry on a fresh pool is on.

        The first fault respawns the pool (the caller retries its call
        in full — ops are pure, so the retry is bitwise-identical to a
        clean run).  Any later fault flips :attr:`degraded`: no more
        pools, every attached executor runs serial from here on.
        Either way the transport is reset so the dead pool's shm
        segments are reaped, never leaked.
        """
        with self._lock:
            self.fault_stats["faults"] += 1
            self._terminate_locked()
            try:
                self.transport.reset()
            except Exception:
                pass
            if not self._respawned:
                self._respawned = True
                self.fault_stats["respawns"] += 1
                self.fault_stats["retried_calls"] += 1
                warnings.warn(
                    f"pool worker fault ({fault}); respawning the worker "
                    "pool and retrying the call",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return True
            self.degraded = True
            self.fault_stats["degraded"] = True
            warnings.warn(
                f"pool worker fault after respawn ({fault}); degrading to "
                "serial execution — results stay correct, throughput drops",
                RuntimeWarning,
                stacklevel=3,
            )
            return False

    # ------------------------------------------------------------------
    # Execution (parent side; one driving thread at a time)
    # ------------------------------------------------------------------
    def map_jobs(self, plan_id: int, fn, prefixes: list[tuple], in_ref_for) -> list:
        """Windowed ``apply_async`` over the pool through the transport.

        Every submitted task carries ``plan_id`` ahead of
        ``prefixes[i]`` (the job's own leading arguments), so the
        worker knows which registered plan to run; ``in_ref_for(i)``
        supplies the job's staged input ref *at submission time*, so no
        more than ``transport.capacity`` slots are ever held at once.
        Results come back in job order.

        A worker exception must not poison the pool: every job is still
        submitted and every task still passes through
        ``transport.finish`` (releasing its slots and balancing shared
        input refcounts) before the first error is re-raised — so a
        malformed request costs one failed call, not the slot ring.

        A :class:`WorkerFault` (dead worker, task timeout) aborts the
        call immediately instead: the pool is a wreck and the caller's
        recovery path resets the transport wholesale, so draining the
        remaining tasks would only hang on more never-arriving results.
        """
        pool = self.ensure_started(plan_id)._pool
        t = self.transport
        total = len(prefixes)
        cap = t.capacity or total
        results: list = [None] * total
        inflight: deque = deque()
        first_error: Exception | None = None

        def drain_one():
            nonlocal first_error
            j, task, async_result = inflight.popleft()
            try:
                raw = self._await_result(async_result)
            except WorkerFault:
                raise
            except Exception as exc:
                t.finish(None, task)  # release slots even on failure
                if first_error is None:
                    first_error = exc
                return
            results[j] = t.finish(raw, task)

        for i in range(total):
            while len(inflight) >= cap:
                drain_one()
            task = t.task(in_ref_for(i))
            inflight.append(
                (i, task, pool.apply_async(fn, (plan_id, *prefixes[i], task)))
            )
        while inflight:
            drain_one()
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "workers": self.workers,
            "transport": self.transport.name,
            "started": self.started,
            "plans": len(self._plans),
            "degraded": self.degraded,
            "fault_stats": dict(self.fault_stats),
        }

    def close(self) -> None:
        """Terminate the pool and release transport segments; idempotent."""
        global _WORKER_TRANSPORT
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._terminate_locked()
            for plan_id in list(self._plans):
                _WORKER_PLANS.pop(plan_id, None)
                _WORKER_ARENA_BUCKETS.pop(plan_id, None)
                _WORKER_ARENAS.pop(plan_id, None)
            self._plans.clear()
            self._forked_plans = frozenset()
        self.transport.close()
        if _WORKER_TRANSPORT is self.transport:
            _WORKER_TRANSPORT = None
        if self._atexit is not None:
            try:
                atexit.unregister(self._atexit)
            except Exception:
                pass
            self._atexit = None

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ForkWorkerPool(workers={self.workers}, "
            f"transport={self.transport.name!r}, plans={len(self._plans)}, "
            f"started={self.started})"
        )


class ThreadedExecutor(PlanExecutor):
    """Execute the plan with thread-parallel sharding in one process.

    Parameters
    ----------
    threads:
        Thread count; defaults to :func:`effective_cpu_count` (or the
        shared pool's size when ``pool`` is given).  Also the default
        block-row shard count
        :meth:`~repro.runtime.session.InferenceSession.freeze` compiles
        large block-circulant ops with.
    mode:
        ``"auto"`` (default) uses batch sharding when ``predict`` has
        more than one chunk and row sharding otherwise; ``"batch"`` /
        ``"rows"`` force one strategy — the same
        :class:`ShardScheduler` policy the fork executor uses.
    pool:
        A shared :class:`ThreadWorkerPool`; omit for a private pool.
    min_rows:
        Calls with fewer total rows run serial (thread-dispatch
        overhead is not free); ``0`` (default) disables the gate.  The
        engine's ``executor="auto"`` policy sets a small threshold.
    profile:
        Arm per-op-kind timing (see :meth:`PlanExecutor.op_stats`).

    Both strategies run the *exact* closures the serial path runs, on
    the same chunk/shard boundaries, and combine in deterministic
    order — so results are bitwise-identical to
    :class:`SerialExecutor` by construction.  The hot kernels are
    numpy calls that release the GIL, so shards genuinely overlap on
    real cores, with zero serialization — no pickling, no shm ring, no
    fork, and no fork-after-threads hazard (``ensure_started`` is safe
    at any point).
    """

    _MODES = ShardScheduler._MODES

    def __init__(
        self,
        threads: int | None = None,
        mode: str = "auto",
        pool: ThreadWorkerPool | None = None,
        min_rows: int = 0,
        profile: bool = False,
    ):
        super().__init__(profile=profile)
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        if min_rows < 0:
            raise ValueError(f"min_rows must be >= 0, got {min_rows}")
        if pool is None:
            pool = ThreadWorkerPool(threads=threads)
            self._owns_pool = True
        else:
            if threads is not None and threads != pool.threads:
                raise ValueError(
                    f"threads={threads} conflicts with the shared pool's "
                    f"{pool.threads}; omit threads when passing pool"
                )
            self._owns_pool = False
        self.pool = pool
        self.mode = mode
        self.min_rows = min_rows
        self.scheduler: ShardScheduler | None = None
        self.plan_id: int | None = None

    @property
    def threads(self) -> int:
        return self.pool.threads

    #: Uniform sizing attribute with :class:`ShardedExecutor` — the
    #: session's default ``row_shards`` and the server's auto-chunking
    #: read it.
    @property
    def workers(self) -> int:
        return self.pool.threads

    def bind(
        self,
        ops: Sequence[PlanOp],
        arena_buckets: tuple[int, ...] | None = None,
    ) -> "ThreadedExecutor":
        super().bind(ops, arena_buckets=arena_buckets)
        self.scheduler = ShardScheduler(self._ops, mode=self.mode)
        self.plan_id = self.pool.register(
            self._ops, arena_buckets=self._arena_buckets
        )
        return self

    def ensure_started(self) -> "ThreadedExecutor":
        """Start the thread pool now (idempotent, lock-guarded)."""
        if self._ops is not None:
            self.pool.ensure_started(self.plan_id)
        return self

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_rows(self, x: np.ndarray) -> np.ndarray:
        ws = self._workspace()
        used_ws = False
        for index, op in enumerate(self._ops):
            jobs = self.scheduler.shard_jobs(index)
            start = time.perf_counter_ns() if self.profile else 0
            if jobs:
                payload = x if op.prepare is None else op.prepare(x)
                futures = [
                    self.pool.submit(op.shard_fns[shard], payload)
                    for _, shard in jobs
                ]
                x = op.combine([future.result() for future in futures])
                used_ws = False
            else:
                x = op.run(x, ws)
                used_ws = ws is not None and op.ws_fn is not None
            if self.profile:
                self._record_op(op.name, time.perf_counter_ns() - start)
        if used_ws:
            x = x.copy()
        return x

    def run(self, x: np.ndarray) -> np.ndarray:
        """One batch through the plan, row-sharded ops fanned to threads."""
        if (
            x.shape[0] < self.min_rows
            or self.scheduler.run_strategy(True) != "rows"
        ):
            return self._run_ops(x)
        return self._run_rows(x)

    def map_batches(self, chunks: list[np.ndarray]) -> list[np.ndarray]:
        """Pre-chunked batches across the threads, outputs in chunk order.

        Each thread runs the whole plan on whole chunks — the exact
        chunks the serial streaming path would process — so the
        concatenated result is bitwise identical to serial execution.
        """
        total_rows = sum(chunk.shape[0] for chunk in chunks)
        if total_rows < self.min_rows or not self.scheduler.use_batch_pool(
            len(chunks), True
        ):
            return [self.run(chunk) for chunk in chunks]
        futures = [self.pool.submit(self._run_ops, chunk) for chunk in chunks]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the pool (closing it when privately owned)."""
        if self.plan_id is not None:
            self.pool.evict(self.plan_id)
            self.plan_id = None
        if self._owns_pool:
            self.pool.close()

    def __repr__(self) -> str:
        return f"ThreadedExecutor(threads={self.threads}, mode={self.mode!r})"


class ShardedExecutor(PlanExecutor):
    """Execute the plan on a ``multiprocessing`` fork pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.  Also the default
        block-row shard count :meth:`InferenceSession.freeze` compiles
        large block-circulant ops with.  Fixed by the shared pool when
        ``pool`` is given.
    mode:
        ``"auto"`` (default) uses batch sharding when ``predict`` has
        more than one chunk and row sharding otherwise; ``"batch"`` /
        ``"rows"`` force one strategy.
    transport:
        How activations reach the workers: ``"pipe"`` (default; arrays
        pickled through the pool pipe), ``"shm"`` (shared-memory slot
        ring; falls back to pipe with a warning where unavailable), or
        a :class:`~repro.runtime.transport.Transport` instance.
    task_timeout:
        Hard per-task deadline in seconds (default 60); see
        :class:`ForkWorkerPool`.  ``None`` disables the backstop (the
        pid sentinel still catches outright deaths).
    pool:
        A shared :class:`ForkWorkerPool` serving several routes; omit
        for a private pool (the classic one-executor-one-pool shape).
        With a shared pool, ``workers``/``transport``/``task_timeout``
        are the pool's and must not be passed here.
    profile:
        Arm per-op-kind timing (see :meth:`PlanExecutor.op_stats`).

    The executor is a per-plan facade over the pool: ``bind`` registers
    the plan for an id, every submitted task carries it, and ``close``
    evicts the plan (closing the pool only when privately owned).
    Fault tolerance — pid sentinel, task timeout, respawn-once,
    degrade-to-serial — lives on the pool and is shared by every
    attached route; :attr:`fault_stats` and :attr:`degraded` read
    through to it.
    """

    _MODES = ShardScheduler._MODES

    def __init__(
        self,
        workers: int | None = None,
        mode: str = "auto",
        transport: str | Transport | None = None,
        task_timeout: float | None = 60.0,
        pool: ForkWorkerPool | None = None,
        profile: bool = False,
    ):
        super().__init__(profile=profile)
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        if pool is None:
            pool = ForkWorkerPool(
                workers=workers, transport=transport, task_timeout=task_timeout
            )
            self._owns_pool = True
        else:
            if workers is not None or transport is not None:
                raise ValueError(
                    "workers/transport are fixed by the shared pool; "
                    "omit them when passing pool"
                )
            self._owns_pool = False
        self.pool = pool
        self.mode = mode
        self.scheduler: ShardScheduler | None = None
        self.plan_id: int | None = None

    # Read-through surface: sizing, transport, and fault posture live
    # on the (possibly shared) pool.
    @property
    def workers(self) -> int:
        return self.pool.workers

    @property
    def transport(self) -> Transport:
        return self.pool.transport

    @property
    def task_timeout(self):
        return self.pool.task_timeout

    @property
    def degraded(self) -> bool:
        return self.pool.degraded

    @property
    def fault_stats(self) -> dict:
        return self.pool.fault_stats

    @property
    def _can_fork(self) -> bool:
        return self.pool.can_fork

    @property
    def _pool(self):
        """The live ``multiprocessing`` pool (None until first use)."""
        return self.pool._pool

    def bind(
        self,
        ops: Sequence[PlanOp],
        arena_buckets: tuple[int, ...] | None = None,
    ) -> "ShardedExecutor":
        super().bind(ops, arena_buckets=arena_buckets)
        self.scheduler = ShardScheduler(self._ops, mode=self.mode)
        self.plan_id = self.pool.register(
            self._ops, arena_buckets=self._arena_buckets
        )
        return self

    def ensure_started(self) -> "ShardedExecutor":
        """Fork the worker pool now (idempotent, lock-guarded).

        Call this before starting threads (an asyncio serving
        front-end, a benchmark harness) so the pool forks from a
        thread-free process — forking after threads exist risks
        inheriting held locks into the children.
        """
        if self._can_fork and self._ops is not None:
            self.pool.ensure_started(self.plan_id)
        return self

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_serial(self, x: np.ndarray) -> np.ndarray:
        return self._run_ops(x)

    def _with_recovery(self, pooled, serial):
        """Run ``pooled()``, surviving worker faults.

        First fault: recover (respawn) and retry ``pooled()`` once —
        ops are pure, so the retry matches an undisturbed run bitwise.
        A fault during the retry degrades the pool and the call
        finishes via ``serial()``.  Requests in flight during a fault
        are therefore always answered, never dropped.
        """
        try:
            return pooled()
        except WorkerFault as fault:
            if self.pool.recover(fault):
                try:
                    return pooled()
                except WorkerFault as second:
                    self.pool.recover(second)
            return serial()

    def _run_rows(self, x: np.ndarray) -> np.ndarray:
        self.pool.ensure_started(self.plan_id)  # bind transport pre-put()
        ws = self._workspace()
        used_ws = False
        for index, op in enumerate(self._ops):
            jobs = self.scheduler.shard_jobs(index)
            start = time.perf_counter_ns() if self.profile else 0
            if jobs:
                payload = x if op.prepare is None else op.prepare(x)
                shared = self.transport.put(payload, uses=len(jobs))
                parts = self.pool.map_jobs(
                    self.plan_id, _worker_run_shard, jobs, lambda i: shared
                )
                x = op.combine(parts)
                used_ws = False
            else:
                x = op.run(x, ws)
                used_ws = ws is not None and op.ws_fn is not None
            if self.profile:
                self._record_op(op.name, time.perf_counter_ns() - start)
        if used_ws:
            x = x.copy()
        return x

    def run(self, x: np.ndarray) -> np.ndarray:
        """One batch through the plan, row-sharded ops on the pool."""
        if (
            self.degraded
            or self.scheduler.run_strategy(self._can_fork) != "rows"
        ):
            return self._run_serial(x)
        return self._with_recovery(
            lambda: self._run_rows(x), lambda: self._run_serial(x)
        )

    def map_batches(self, chunks: list[np.ndarray]) -> list[np.ndarray]:
        """Pre-chunked batches across the pool, outputs in chunk order.

        Each worker runs the whole plan on whole chunks — the exact
        chunks the serial streaming path would process — so the
        concatenated result is bitwise identical to serial execution.
        """
        if self.degraded or not self.scheduler.use_batch_pool(
            len(chunks), self._can_fork
        ):
            return [self.run(chunk) for chunk in chunks]
        return self._with_recovery(
            lambda: self.pool.map_jobs(
                self.plan_id,
                _worker_run_plan,
                [() for _ in chunks],
                lambda i: self.transport.put(chunks[i]),
            ),
            lambda: [self._run_serial(chunk) for chunk in chunks],
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Evict the plan; close the pool too when privately owned."""
        if self.plan_id is not None:
            self.pool.evict(self.plan_id)
            self.plan_id = None
        if self._owns_pool:
            self.pool.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ShardedExecutor(workers={self.workers}, mode={self.mode!r}, "
            f"transport={self.transport.name!r})"
        )
