"""Plan executors: the *how* of running a frozen op plan.

:mod:`repro.runtime.plan` compiles a model into a flat list of
:class:`~repro.runtime.plan.PlanOp` closures; this module decides how
those closures actually execute.  Three cooperating pieces:

* :class:`SerialExecutor` — one op after another in the calling
  process.  Zero overhead, always available.
* :class:`ShardScheduler` — the *what runs where*: given a plan and a
  mode it picks the strategy per call (batch sharding vs row sharding
  vs serial) and enumerates the shard jobs of row-sharded ops — both
  block-circulant linear and block-circulant conv ops expose the same
  ``prepare``/``shard_fns``/``combine`` surface, so the scheduler
  treats them uniformly.
* :class:`ShardedExecutor` — the *mechanism*: a ``multiprocessing``
  fork pool plus a :class:`~repro.runtime.transport.Transport` moving
  the activations.  Two strategies, both bitwise-identical to serial
  execution:

  - **batch sharding**: ``predict`` chunks are farmed whole to pool
    workers, each running the full plan on its chunk.  The chunks are
    exactly the ones the serial streaming path would process, so
    concatenated results match bit for bit.
  - **block-row sharding**: ops compiled with ``row_shards`` expose
    shard closures, each owning a contiguous slice of the precomputed
    frequency-major spectra.  The pool maps the shard closures; the
    parent combines.  The serial path runs the *same* closures in
    sequence, so again results are bitwise identical.

  Workers are forked *after* the executor is bound to a plan, so the
  spectra arrays reach the children as copy-on-write shared pages — no
  per-task pickling of weights.  Activations cross either the pool pipe
  (:class:`~repro.runtime.transport.PipeTransport`, the default) or a
  shared-memory slot ring
  (:class:`~repro.runtime.transport.SharedMemoryTransport`,
  ``transport="shm"``).

Executors are bound to exactly one plan (``bind``); the
:class:`~repro.runtime.session.InferenceSession` façade does this at
construction and closes the executor's pool with the session.  ``close``
is idempotent and additionally registered with :mod:`atexit`, so an
interrupted run never leaks pool workers or shared-memory segments.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
import time
import warnings
from collections import deque
from typing import Sequence

import numpy as np

from ..exceptions import WorkerFault
from ..testing import faults
from .plan import PlanOp
from .transport import Transport, make_transport

__all__ = [
    "PlanExecutor",
    "SerialExecutor",
    "ShardScheduler",
    "ShardedExecutor",
    "effective_workers",
]


def effective_workers(requested: int) -> int:
    """Clamp a worker request to what the host can parallelize.

    On a single-CPU host a fork pool can only add IPC overhead (the
    0.37x regression BENCH_fdx.json once recorded), so callers that are
    about to build a :class:`ShardedExecutor` from user input should
    pass the request through here: it warns and returns 1 when the host
    exposes a single CPU.  Explicit ``ShardedExecutor(workers=...)``
    construction stays unclamped on purpose — benchmarks measure the
    pool overhead deliberately.
    """
    if requested > 1 and (os.cpu_count() or 1) <= 1:
        warnings.warn(
            f"this host exposes a single CPU; workers={requested} would "
            "only add process-pool overhead — running serial instead",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    return requested


# Plan and transport handed to pool workers via fork inheritance.
# Closures are not picklable, so the pool is created only after these
# globals are set; forked children snapshot them copy-on-write.
_WORKER_OPS: list[PlanOp] | None = None
_WORKER_TRANSPORT: Transport | None = None


def _maybe_fault() -> None:
    """Injected-fault hook at pool-task start (no-op unless armed).

    ``worker.kill`` SIGKILLs this worker (an abrupt death the parent's
    sentinel must detect), ``worker.hang`` sleeps long enough that the
    parent's ``task_timeout`` fires first (a dropped result frame), and
    ``worker.delay`` sleeps briefly (a late frame that must still be
    consumed normally).  Budgets are shared across the fork, so
    ``times=1`` fires in exactly one worker.
    """
    if not faults.enabled:
        return
    if faults.take("worker.kill") is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    hang = faults.take("worker.hang", seconds=3600.0)
    if hang is not None:
        time.sleep(float(hang["seconds"]))
    delay = faults.take("worker.delay", seconds=0.05)
    if delay is not None:
        time.sleep(float(delay["seconds"]))


def _worker_run_plan(task) -> object:
    """Run the inherited plan end to end on one batch chunk."""
    _maybe_fault()
    x = _WORKER_TRANSPORT.worker_recv(task)
    for op in _WORKER_OPS:
        x = op(x)
    return _WORKER_TRANSPORT.worker_send(task, x)


def _worker_run_shard(op_index: int, shard_index: int, task) -> object:
    """Run one row-shard closure of one op of the inherited plan.

    The task's payload is the op's prepared input (the parent computes
    ``op.prepare(x)`` once and stages the same spectrum for every
    shard).
    """
    _maybe_fault()
    payload = _WORKER_TRANSPORT.worker_recv(task)
    out = _WORKER_OPS[op_index].shard_fns[shard_index](payload)
    return _WORKER_TRANSPORT.worker_send(task, out)


class PlanExecutor:
    """Strategy interface for executing a frozen plan.

    ``bind`` attaches the executor to exactly one plan (a sequence of
    :class:`PlanOp`) — rebinding raises, because a session that handed
    its plan to an executor must never silently start executing another
    session's ops; ``run`` executes one batch; ``map_batches`` executes
    a list of pre-chunked batches and returns per-chunk outputs in
    order.  ``close`` releases any resources (process pools).
    """

    _ops: list[PlanOp] | None = None

    def bind(self, ops: Sequence[PlanOp]) -> "PlanExecutor":
        if self._ops is not None:
            raise RuntimeError(
                "executor is already bound to a plan; "
                "use one executor per session"
            )
        self._ops = list(ops)
        return self

    def run(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def map_batches(self, chunks: list[np.ndarray]) -> list[np.ndarray]:
        return [self.run(chunk) for chunk in chunks]

    def close(self) -> None:
        """Release executor resources; the executor is unusable after."""

    def __enter__(self) -> "PlanExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(PlanExecutor):
    """Run the plan op by op in the calling process (the default)."""

    def run(self, x: np.ndarray) -> np.ndarray:
        for op in self._ops:
            x = op(x)
        return x

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ShardScheduler:
    """Decides *what* runs on the pool for a bound plan.

    The scheduler owns the strategy choices that used to live inline in
    :class:`ShardedExecutor`: which ops of the plan are row-sharded
    (block-circulant linear and conv ops compiled with ``row_shards``
    both qualify — they expose the same shard surface), whether a
    single-batch call should use row sharding, and whether a chunked
    ``predict`` should fan chunks out to workers.  It is pure policy:
    no pool, no transport, trivially testable.
    """

    _MODES = ("auto", "batch", "rows")

    def __init__(self, ops: Sequence[PlanOp], mode: str = "auto"):
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        self.ops = list(ops)
        self.mode = mode
        #: op index -> shard count, for every row-sharded op in the plan
        self.row_ops = {
            i: len(op.shard_fns)
            for i, op in enumerate(self.ops)
            if op.shard_fns is not None and len(op.shard_fns) > 1
        }

    def run_strategy(self, can_fork: bool = True) -> str:
        """``"rows"`` or ``"serial"`` for a single-batch ``run`` call."""
        if not can_fork or self.mode == "batch" or not self.row_ops:
            return "serial"
        return "rows"

    def use_batch_pool(self, n_chunks: int, can_fork: bool = True) -> bool:
        """Should ``map_batches`` fan its chunks out to the pool?"""
        return can_fork and self.mode != "rows" and n_chunks > 1

    def shard_jobs(self, op_index: int) -> list[tuple[int, int]]:
        """The pool jobs for one op: ``(op_index, shard_index)`` pairs."""
        return [(op_index, j) for j in range(self.row_ops.get(op_index, 0))]

    def describe(self) -> dict:
        """Summary for introspection (server ``info``, tests)."""
        return {
            "mode": self.mode,
            "ops": len(self.ops),
            "row_sharded_ops": {
                self.ops[i].name: n for i, n in self.row_ops.items()
            },
        }

    def __repr__(self) -> str:
        return (
            f"ShardScheduler(mode={self.mode!r}, ops={len(self.ops)}, "
            f"row_sharded={len(self.row_ops)})"
        )


class ShardedExecutor(PlanExecutor):
    """Execute the plan on a ``multiprocessing`` fork pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.  Also the default
        block-row shard count :meth:`InferenceSession.freeze` compiles
        large block-circulant ops with.
    mode:
        ``"auto"`` (default) uses batch sharding when ``predict`` has
        more than one chunk and row sharding otherwise; ``"batch"`` /
        ``"rows"`` force one strategy.
    transport:
        How activations reach the workers: ``"pipe"`` (default; arrays
        pickled through the pool pipe), ``"shm"`` (shared-memory slot
        ring; falls back to pipe with a warning where unavailable), or
        a :class:`~repro.runtime.transport.Transport` instance.
    task_timeout:
        Hard per-task deadline in seconds (default 60).  A pool task
        whose result has not arrived by then — a hung worker, a frame
        lost to a mid-task death the sentinel raced — raises
        :class:`~repro.exceptions.WorkerFault` internally and triggers
        recovery.  ``None`` disables the backstop (the pid sentinel
        still catches outright deaths).

    **Fault tolerance.**  Results are awaited with a short poll; between
    polls the executor compares the pool's live worker pids against the
    snapshot taken at fork.  A changed pid set or a non-``None``
    exitcode means a worker died mid-task, and its task's result will
    never arrive.  Recovery is: terminate the wreck, :meth:`reset
    <repro.runtime.transport.Transport.reset>` the transport (reaping
    every shm segment the dead pool held), fork a fresh pool **once**,
    and retry the whole call — plan ops are pure functions of their
    input, so the retry is bitwise identical to an undisturbed run.  A
    second fault sets :attr:`degraded` and the executor permanently
    falls back to serial execution with a warning; requests keep
    succeeding, just slower.  Counters live in :attr:`fault_stats`.

    On platforms without the ``fork`` start method the executor degrades
    to serial execution with a warning (closures cannot be pickled to
    spawned workers).
    """

    _MODES = ShardScheduler._MODES

    #: Result-poll interval while watching for worker deaths.
    _POLL_S = 0.05

    def __init__(
        self,
        workers: int | None = None,
        mode: str = "auto",
        transport: str | Transport | None = None,
        task_timeout: float | None = 60.0,
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be positive or None, got {task_timeout}"
            )
        self.workers = workers
        self.mode = mode
        self.transport = make_transport(transport)
        self.task_timeout = task_timeout
        self.scheduler: ShardScheduler | None = None
        #: True once fault recovery has exhausted its one respawn and
        #: the executor fell back to serial execution permanently.
        self.degraded = False
        #: Fault-recovery counters, surfaced by the server ``info`` op.
        self.fault_stats = {
            "faults": 0,
            "respawns": 0,
            "retried_calls": 0,
            "degraded": False,
        }
        self._respawned = False
        self._worker_pids: set = set()
        self._pool = None
        self._atexit = None
        self._can_fork = "fork" in multiprocessing.get_all_start_methods()
        if not self._can_fork:
            warnings.warn(
                "ShardedExecutor requires the 'fork' start method; "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )

    def bind(self, ops: Sequence[PlanOp]) -> "ShardedExecutor":
        super().bind(ops)
        self.scheduler = ShardScheduler(self._ops, mode=self.mode)
        return self

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            global _WORKER_OPS, _WORKER_TRANSPORT
            self.transport.bind(self.workers)
            _WORKER_OPS = self._ops
            _WORKER_TRANSPORT = self.transport
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(self.workers)
            self._worker_pids = {p.pid for p in self._pool._pool}
            # Interrupted benchmarks and crashed servers must not leak
            # fork-pool workers or shm segments; close() unregisters.
            if self._atexit is None:
                self._atexit = self.close
                atexit.register(self._atexit)
        return self._pool

    def _pool_failed(self) -> bool:
        """Has any worker of the current pool died?

        ``multiprocessing.Pool`` quietly replaces dead workers, but the
        task a dead worker held is lost forever — so a changed pid set
        (or a recorded exitcode) is the signal that some in-flight
        result will never arrive.
        """
        pool = self._pool
        if pool is None:
            return True
        try:
            procs = list(pool._pool)
        except Exception:
            return True
        if any(p.exitcode is not None for p in procs):
            return True
        return {p.pid for p in procs} != self._worker_pids

    def _await_result(self, async_result):
        """Poll one async result, watching the pool for worker deaths.

        Raises :class:`WorkerFault` when the pid sentinel trips or the
        task outlives ``task_timeout``; otherwise behaves exactly like
        ``async_result.get()``.
        """
        deadline = (
            None
            if self.task_timeout is None
            else time.monotonic() + self.task_timeout
        )
        while True:
            try:
                return async_result.get(timeout=self._POLL_S)
            except multiprocessing.TimeoutError:
                if self._pool_failed():
                    raise WorkerFault(
                        "a pool worker died before returning its result"
                    ) from None
                if deadline is not None and time.monotonic() > deadline:
                    raise WorkerFault(
                        f"pool task produced no result within "
                        f"task_timeout={self.task_timeout}s"
                    ) from None

    def _recover(self, fault: WorkerFault) -> bool:
        """Tear down the dead pool; True when a retry on a fresh pool is on.

        The first fault respawns the pool (the call is retried in full —
        ops are pure, so the retry is bitwise-identical to a clean run).
        Any later fault flips :attr:`degraded`: no more pools, serial
        execution from here on.  Either way the transport is reset so
        the dead pool's shm segments are reaped, never leaked.
        """
        self.fault_stats["faults"] += 1
        if self._pool is not None:
            try:
                self._pool.terminate()
                self._pool.join()
            except Exception:
                pass
            self._pool = None
        self._worker_pids = set()
        try:
            self.transport.reset()
        except Exception:
            pass
        if not self._respawned:
            self._respawned = True
            self.fault_stats["respawns"] += 1
            warnings.warn(
                f"pool worker fault ({fault}); respawning the worker pool "
                "and retrying the call",
                RuntimeWarning,
                stacklevel=3,
            )
            return True
        self.degraded = True
        self.fault_stats["degraded"] = True
        warnings.warn(
            f"pool worker fault after respawn ({fault}); degrading to "
            "serial execution — results stay correct, throughput drops",
            RuntimeWarning,
            stacklevel=3,
        )
        return False

    def ensure_started(self) -> "ShardedExecutor":
        """Fork the worker pool now (idempotent).

        Call this before starting threads (an asyncio serving front-end,
        a benchmark harness) so the pool forks from a thread-free
        process — forking after threads exist risks inheriting held
        locks into the children.
        """
        if self._can_fork and self._ops is not None:
            self._ensure_pool()
        return self

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_serial(self, x: np.ndarray) -> np.ndarray:
        for op in self._ops:
            x = op(x)
        return x

    def _map_on_pool(self, fn, prefixes: list[tuple], in_ref_for) -> list:
        """Windowed ``apply_async`` over the pool through the transport.

        ``prefixes[i]`` are the leading arguments of job ``i``;
        ``in_ref_for(i)`` supplies its staged input ref *at submission
        time*, so no more than ``transport.capacity`` slots are ever
        held at once.  Results come back in job order.

        A worker exception must not poison the executor: every job is
        still submitted and every task still passes through
        ``transport.finish`` (releasing its slots and balancing shared
        input refcounts) before the first error is re-raised — so a
        malformed request costs one failed call, not the slot ring.

        A :class:`WorkerFault` (dead worker, task timeout) aborts the
        call immediately instead: the pool is a wreck and the caller's
        recovery path resets the transport wholesale, so draining the
        remaining tasks would only hang on more never-arriving results.
        """
        pool = self._ensure_pool()
        t = self.transport
        total = len(prefixes)
        cap = t.capacity or total
        results: list = [None] * total
        inflight: deque = deque()
        first_error: Exception | None = None

        def drain_one():
            nonlocal first_error
            j, task, async_result = inflight.popleft()
            try:
                raw = self._await_result(async_result)
            except WorkerFault:
                raise
            except Exception as exc:
                t.finish(None, task)  # release slots even on failure
                if first_error is None:
                    first_error = exc
                return
            results[j] = t.finish(raw, task)

        for i in range(total):
            while len(inflight) >= cap:
                drain_one()
            task = t.task(in_ref_for(i))
            inflight.append(
                (i, task, pool.apply_async(fn, (*prefixes[i], task)))
            )
        while inflight:
            drain_one()
        if first_error is not None:
            raise first_error
        return results

    def _with_recovery(self, pooled, serial):
        """Run ``pooled()``, surviving worker faults.

        First fault: recover (respawn) and retry ``pooled()`` once —
        ops are pure, so the retry matches an undisturbed run bitwise.
        A fault during the retry degrades the executor and the call
        finishes via ``serial()``.  Requests in flight during a fault
        are therefore always answered, never dropped.
        """
        try:
            return pooled()
        except WorkerFault as fault:
            if self._recover(fault):
                self.fault_stats["retried_calls"] += 1
                try:
                    return pooled()
                except WorkerFault as second:
                    self._recover(second)
            return serial()

    def _run_rows(self, x: np.ndarray) -> np.ndarray:
        self._ensure_pool()  # binds the transport before the first put()
        for index, op in enumerate(self._ops):
            jobs = self.scheduler.shard_jobs(index)
            if jobs:
                payload = x if op.prepare is None else op.prepare(x)
                shared = self.transport.put(payload, uses=len(jobs))
                parts = self._map_on_pool(
                    _worker_run_shard, jobs, lambda i: shared
                )
                x = op.combine(parts)
            else:
                x = op(x)
        return x

    def run(self, x: np.ndarray) -> np.ndarray:
        """One batch through the plan, row-sharded ops on the pool."""
        if (
            self.degraded
            or self.scheduler.run_strategy(self._can_fork) != "rows"
        ):
            return self._run_serial(x)
        return self._with_recovery(
            lambda: self._run_rows(x), lambda: self._run_serial(x)
        )

    def map_batches(self, chunks: list[np.ndarray]) -> list[np.ndarray]:
        """Pre-chunked batches across the pool, outputs in chunk order.

        Each worker runs the whole plan on whole chunks — the exact
        chunks the serial streaming path would process — so the
        concatenated result is bitwise identical to serial execution.
        """
        if self.degraded or not self.scheduler.use_batch_pool(
            len(chunks), self._can_fork
        ):
            return [self.run(chunk) for chunk in chunks]
        return self._with_recovery(
            lambda: self._map_on_pool(
                _worker_run_plan,
                [() for _ in chunks],
                lambda i: self.transport.put(chunks[i]),
            ),
            lambda: [self._run_serial(chunk) for chunk in chunks],
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Terminate the pool and release transport segments; idempotent."""
        global _WORKER_OPS, _WORKER_TRANSPORT
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self.transport.close()
        if _WORKER_OPS is self._ops and self._ops is not None:
            # Drop the fork-inheritance references so a closed session's
            # plan (and its spectra) can be garbage collected.
            _WORKER_OPS = None
            _WORKER_TRANSPORT = None
        if self._atexit is not None:
            try:
                atexit.unregister(self._atexit)
            except Exception:
                pass
            self._atexit = None

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ShardedExecutor(workers={self.workers}, mode={self.mode!r}, "
            f"transport={self.transport.name!r})"
        )
