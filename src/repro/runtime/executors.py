"""Plan executors: the *how* of running a frozen op plan.

:mod:`repro.runtime.plan` compiles a model into a flat list of
:class:`~repro.runtime.plan.PlanOp` closures; this module decides how
those closures actually execute:

* :class:`SerialExecutor` — today's behaviour: one op after another in
  the calling process.  Zero overhead, always available.
* :class:`ShardedExecutor` — a ``multiprocessing`` fork pool for
  many-core serving.  Two complementary strategies, both
  bitwise-identical to serial execution:

  - **batch sharding**: ``predict`` chunks are farmed whole to pool
    workers, each running the full plan on its chunk.  The chunks are
    exactly the ones the serial streaming path would process, so
    concatenated results match bit for bit.
  - **block-row sharding**: ops compiled with ``row_shards`` expose
    shard closures, each owning a contiguous slice of the precomputed
    frequency-major spectra.  The pool maps the shard closures; the
    parent combines.  The serial path runs the *same* closures in
    sequence, so again results are bitwise identical.

  Workers are forked *after* the executor is bound to a plan, so the
  spectra arrays reach the children as copy-on-write shared pages — no
  per-task pickling of weights, only activations cross the pipe.

Executors are bound to exactly one plan (``bind``); the
:class:`~repro.runtime.session.InferenceSession` façade does this at
construction and closes the executor's pool with the session.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Sequence

import numpy as np

from .plan import PlanOp

__all__ = ["PlanExecutor", "SerialExecutor", "ShardedExecutor"]


# Plan handed to pool workers via fork inheritance.  Closures are not
# picklable, so the pool is created only after this global is set; forked
# children snapshot it copy-on-write.
_WORKER_OPS: list[PlanOp] | None = None


def _worker_run_plan(x: np.ndarray) -> np.ndarray:
    """Run the inherited plan end to end on one batch chunk."""
    for op in _WORKER_OPS:
        x = op(x)
    return x


def _worker_run_shard(args: tuple[int, int, np.ndarray]) -> np.ndarray:
    """Run one row-shard closure of one op of the inherited plan.

    ``payload`` is the op's prepared input (the parent computes
    ``op.prepare(x)`` once and ships the same spectrum to every shard).
    """
    op_index, shard_index, payload = args
    return _WORKER_OPS[op_index].shard_fns[shard_index](payload)


class PlanExecutor:
    """Strategy interface for executing a frozen plan.

    ``bind`` attaches the executor to exactly one plan (a sequence of
    :class:`PlanOp`) — rebinding raises, because a session that handed
    its plan to an executor must never silently start executing another
    session's ops; ``run`` executes one batch; ``map_batches`` executes
    a list of pre-chunked batches and returns per-chunk outputs in
    order.  ``close`` releases any resources (process pools).
    """

    _ops: list[PlanOp] | None = None

    def bind(self, ops: Sequence[PlanOp]) -> "PlanExecutor":
        if self._ops is not None:
            raise RuntimeError(
                "executor is already bound to a plan; "
                "use one executor per session"
            )
        self._ops = list(ops)
        return self

    def run(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def map_batches(self, chunks: list[np.ndarray]) -> list[np.ndarray]:
        return [self.run(chunk) for chunk in chunks]

    def close(self) -> None:
        """Release executor resources; the executor is unusable after."""

    def __enter__(self) -> "PlanExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(PlanExecutor):
    """Run the plan op by op in the calling process (the default)."""

    def run(self, x: np.ndarray) -> np.ndarray:
        for op in self._ops:
            x = op(x)
        return x

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ShardedExecutor(PlanExecutor):
    """Execute the plan on a ``multiprocessing`` fork pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.  Also the default
        block-row shard count :meth:`InferenceSession.freeze` compiles
        large ``BlockCirculantLinear`` ops with.
    mode:
        ``"auto"`` (default) uses batch sharding when ``predict`` has
        more than one chunk and row sharding otherwise; ``"batch"`` /
        ``"rows"`` force one strategy.

    On platforms without the ``fork`` start method the executor degrades
    to serial execution with a warning (closures cannot be pickled to
    spawned workers).
    """

    _MODES = ("auto", "batch", "rows")

    def __init__(self, workers: int | None = None, mode: str = "auto"):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        self.workers = workers
        self.mode = mode
        self._pool = None
        self._can_fork = "fork" in multiprocessing.get_all_start_methods()
        if not self._can_fork:
            warnings.warn(
                "ShardedExecutor requires the 'fork' start method; "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )

    def _ensure_pool(self):
        if self._pool is None:
            global _WORKER_OPS
            _WORKER_OPS = self._ops
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(self.workers)
        return self._pool

    def _run_serial(self, x: np.ndarray) -> np.ndarray:
        for op in self._ops:
            x = op(x)
        return x

    def run(self, x: np.ndarray) -> np.ndarray:
        """One batch through the plan, row-sharded ops on the pool."""
        if not self._can_fork or self.mode == "batch":
            return self._run_serial(x)
        sharded = [
            op for op in self._ops if op.shard_fns and len(op.shard_fns) > 1
        ]
        if not sharded:
            return self._run_serial(x)
        pool = self._ensure_pool()
        for index, op in enumerate(self._ops):
            if op.shard_fns and len(op.shard_fns) > 1:
                payload = x if op.prepare is None else op.prepare(x)
                parts = pool.map(
                    _worker_run_shard,
                    [(index, j, payload) for j in range(len(op.shard_fns))],
                )
                x = op.combine(parts)
            else:
                x = op(x)
        return x

    def map_batches(self, chunks: list[np.ndarray]) -> list[np.ndarray]:
        """Pre-chunked batches across the pool, outputs in chunk order.

        Each worker runs the whole plan on whole chunks — the exact
        chunks the serial streaming path would process — so the
        concatenated result is bitwise identical to serial execution.
        """
        if not self._can_fork or self.mode == "rows" or len(chunks) <= 1:
            return [self.run(chunk) for chunk in chunks]
        pool = self._ensure_pool()
        return pool.map(_worker_run_plan, chunks)

    def close(self) -> None:
        global _WORKER_OPS
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if _WORKER_OPS is self._ops and self._ops is not None:
            # Drop the fork-inheritance reference so a closed session's
            # plan (and its spectra) can be garbage collected.
            _WORKER_OPS = None

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return f"ShardedExecutor(workers={self.workers}, mode={self.mode!r})"
