"""Activation transports: how arrays move between the parent and pool workers.

:class:`~repro.runtime.executors.ShardedExecutor` farms work to a fork
pool.  The *compute* crossing the process boundary is fixed by the plan;
what varies is how the activation arrays travel:

* :class:`PipeTransport` — the baseline: arrays are pickled through the
  pool's pipe with every task and result.  Always available, no setup,
  but every chunk pays two serialize/deserialize copies plus pipe
  syscalls.
* :class:`SharedMemoryTransport` — a ring of reusable
  :mod:`multiprocessing.shared_memory` slot pairs (one input and one
  output segment per slot, ``2 x workers`` slots by default, i.e.
  double-buffered per worker).  The parent copies each activation chunk
  into the next free input slot and sends only a tiny descriptor through
  the pipe; the worker reads the chunk straight out of the inherited
  (or lazily attached) mapping, runs the plan, and writes the result
  into the paired output slot.  Weights never move at all — they reach
  the workers as copy-on-write pages at fork time, exactly as before.

Slots grow transparently: the parent reseats an input segment that is
too small for the next chunk (free slots only, so no reader can hold the
old mapping's task), and a worker whose *result* outgrows the output
slot falls back to returning the array through the pipe for that one
task — the parent then reseats the output slot so the next result fits.

Segment hygiene: every segment the transport creates is unlinked in
:meth:`close`, which is idempotent and also registered with
:mod:`atexit`, so an interrupted benchmark or a crashed server never
leaks ``/dev/shm`` entries.  When shared memory is unavailable on the
platform, :func:`make_transport` degrades to :class:`PipeTransport`
with a warning.

The parent-side API is single-threaded by design (one slot ring, no
locks): exactly one thread may drive ``put``/``task``/``finish`` — the
serving front-end guarantees this by funnelling all inference through
one worker thread.
"""

from __future__ import annotations

import atexit
import warnings
from collections import deque

import numpy as np

__all__ = [
    "Transport",
    "PipeTransport",
    "SharedMemoryTransport",
    "ShmTask",
    "ShmResult",
    "make_transport",
]


class Transport:
    """Strategy interface for moving activation arrays to/from workers.

    Parent side (the process that owns the pool):

    * :meth:`bind` — size internal resources for ``workers`` workers;
      must be called before the pool forks so workers inherit state,
    * :meth:`put` — stage one input array, returning an opaque input
      ref; ``uses`` says how many tasks will consume it (row shards all
      read the same prepared payload),
    * :meth:`task` — build the picklable per-task descriptor from an
      input ref (acquires any per-task resources),
    * :meth:`finish` — turn a worker's raw return value back into an
      array and release the task's resources,
    * :attr:`capacity` — how many tasks may be in flight at once
      (``None`` = unbounded); the executor windows its submissions.

    Worker side (inside the forked child):

    * :meth:`worker_recv` — task descriptor -> input array,
    * :meth:`worker_send` — result array -> raw return value.
    """

    name = "?"
    capacity: int | None = None

    def bind(self, workers: int) -> "Transport":
        return self

    def put(self, arr: np.ndarray, uses: int = 1):
        raise NotImplementedError

    def task(self, in_ref):
        raise NotImplementedError

    def finish(self, result, task) -> np.ndarray:
        raise NotImplementedError

    def worker_recv(self, task) -> np.ndarray:
        raise NotImplementedError

    def worker_send(self, task, arr: np.ndarray):
        raise NotImplementedError

    def reset(self) -> None:
        """Discard per-pool state after a worker fault; default no-op.

        :class:`~repro.runtime.executors.ShardedExecutor` calls this
        between terminating a dead pool and respawning it, so segments
        the dead workers were attached to are reaped and a fresh pool
        forks with clean state.
        """

    def close(self) -> None:
        """Release transport resources; idempotent."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PipeTransport(Transport):
    """Arrays travel pickled through the pool pipe (the baseline)."""

    name = "pipe"
    capacity = None

    def put(self, arr: np.ndarray, uses: int = 1):
        return arr

    def task(self, in_ref):
        return in_ref

    def finish(self, result, task) -> np.ndarray:
        return result

    def worker_recv(self, task) -> np.ndarray:
        return task

    def worker_send(self, task, arr: np.ndarray):
        return arr

    def __repr__(self) -> str:
        return "PipeTransport()"


class ShmTask:
    """Picklable per-task descriptor: where the input lives, where the
    result goes.  ``inline`` carries the array by value for the rare
    cases shared memory cannot (empty arrays)."""

    __slots__ = (
        "in_slot", "in_name", "shape", "dtype",
        "out_slot", "out_name", "out_cap", "inline",
    )

    def __init__(self, in_slot, in_name, shape, dtype,
                 out_slot, out_name, out_cap, inline=None):
        self.in_slot = in_slot
        self.in_name = in_name
        self.shape = shape
        self.dtype = dtype
        self.out_slot = out_slot
        self.out_name = out_name
        self.out_cap = out_cap
        self.inline = inline

    def __getstate__(self):
        return tuple(getattr(self, s) for s in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)


class ShmResult:
    """Picklable result descriptor: which output slot holds the array."""

    __slots__ = ("out_slot", "out_name", "shape", "dtype")

    def __init__(self, out_slot, out_name, shape, dtype):
        self.out_slot = out_slot
        self.out_name = out_name
        self.shape = shape
        self.dtype = dtype

    def __getstate__(self):
        return tuple(getattr(self, s) for s in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)


class _InRef:
    """Parent-side handle for a staged input: slot id + remaining uses."""

    __slots__ = ("slot", "name", "shape", "dtype", "uses", "inline")

    def __init__(self, slot, name, shape, dtype, uses, inline=None):
        self.slot = slot
        self.name = name
        self.shape = shape
        self.dtype = dtype
        self.uses = uses
        self.inline = inline


def _attach(name: str):
    """Attach an existing segment without double-registering it with the
    resource tracker (the creator already tracks it; a second register
    from a forked child makes the tracker unlink segments the parent
    still owns, or warn about phantom leaks at shutdown)."""
    from multiprocessing import resource_tracker, shared_memory

    seg = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass
    return seg


class SharedMemoryTransport(Transport):
    """Move activation chunks through a ring of shared-memory slot pairs.

    Parameters
    ----------
    slots:
        Number of slot pairs; default ``2 * workers`` at :meth:`bind`
        time (double buffering: a worker can fill one slot while the
        parent stages the next).
    slot_bytes:
        Initial capacity of each segment; slots grow on demand, so this
        is a warm-start hint, not a limit.
    """

    name = "shm"

    def __init__(self, slots: int | None = None, slot_bytes: int = 1 << 20):
        if slots is not None and slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if slot_bytes < 1:
            raise ValueError(f"slot_bytes must be >= 1, got {slot_bytes}")
        self._requested_slots = slots
        self._slot_bytes = int(slot_bytes)
        self._in_segs: list = []      # parent-created input segments
        self._out_segs: list = []     # parent-created output segments
        self._free_in: deque = deque()
        self._free_out: deque = deque()
        self._in_uses: dict[int, int] = {}  # busy input slot -> tasks left
        self._out_hint = 0  # largest result seen; free slots catch up lazily
        self._worker_segs: dict = {}  # (kind, slot) -> attached segment
        self._closed = False
        self._bound = False
        self._atexit = None

    # ------------------------------------------------------------------
    # Availability probe
    # ------------------------------------------------------------------
    @staticmethod
    def available() -> bool:
        """Can this platform create POSIX shared-memory segments?"""
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=16)
            seg.close()
            seg.unlink()
            return True
        except Exception:
            return False

    # ------------------------------------------------------------------
    # Parent side
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int | None:
        return len(self._out_segs) or None

    def bind(self, workers: int) -> "SharedMemoryTransport":
        if self._closed:
            raise RuntimeError("transport is closed")
        if self._bound:
            return self
        self._allocate(self._requested_slots or max(2, 2 * workers))
        self._bound = True
        self._atexit = self.close
        atexit.register(self._atexit)
        return self

    def _allocate(self, n: int) -> None:
        """Create ``n`` fresh slot pairs and mark them all free."""
        from multiprocessing import shared_memory

        for _ in range(n):
            self._in_segs.append(
                shared_memory.SharedMemory(create=True, size=self._slot_bytes)
            )
            self._out_segs.append(
                shared_memory.SharedMemory(create=True, size=self._slot_bytes)
            )
        self._free_in.extend(range(n))
        self._free_out.extend(range(n))

    def _release_segments(self) -> None:
        """Unlink every parent segment, drop worker attachments."""
        for seg in self._in_segs + self._out_segs:
            try:
                seg.close()
                seg.unlink()
            except Exception:
                pass
        for seg in self._worker_segs.values():
            try:
                seg.close()
            except Exception:
                pass
        self._in_segs = []
        self._out_segs = []
        self._worker_segs = {}
        self._free_in.clear()
        self._free_out.clear()
        self._in_uses.clear()

    def reset(self) -> None:
        """Reap every segment and rebuild a fresh, fully-free slot ring.

        Called after a pool-worker fault: tasks in flight at the fault
        held slots that will never be released by ``finish``, and the
        dead workers' lazily-attached mappings are gone with them —
        unlinking everything and reallocating is the only state the
        respawned pool can trust.  A no-op before ``bind`` or after
        ``close``.
        """
        if self._closed or not self._bound:
            return
        n = len(self._in_segs)
        self._release_segments()
        self._out_hint = 0
        self._allocate(n)

    def _reseat(self, segs: list, slot: int, nbytes: int) -> None:
        """Replace a (free) slot's segment with a larger one."""
        from multiprocessing import shared_memory

        old = segs[slot]
        size = max(nbytes, 2 * old.size, self._slot_bytes)
        old.close()
        old.unlink()
        segs[slot] = shared_memory.SharedMemory(create=True, size=size)

    def put(self, arr: np.ndarray, uses: int = 1) -> _InRef:
        if not self._bound:
            raise RuntimeError("transport is not bound; call bind(workers)")
        arr = np.ascontiguousarray(arr)
        if arr.nbytes == 0:
            return _InRef(None, None, arr.shape, arr.dtype, uses, inline=arr)
        if not self._free_in:
            raise RuntimeError("no free input slot; respect transport.capacity")
        slot = self._free_in.popleft()
        if self._in_segs[slot].size < arr.nbytes:
            self._reseat(self._in_segs, slot, arr.nbytes)
        seg = self._in_segs[slot]
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        self._in_uses[slot] = uses
        return _InRef(slot, seg.name, arr.shape, str(arr.dtype), uses)

    def task(self, in_ref: _InRef) -> ShmTask:
        if not self._free_out:
            raise RuntimeError("no free output slot; respect transport.capacity")
        slot = self._free_out.popleft()
        if self._out_segs[slot].size < self._out_hint:
            # A result outgrew some slot earlier; bring this one up to
            # the high-water mark so it doesn't pay its own fallback.
            self._reseat(self._out_segs, slot, self._out_hint)
        seg = self._out_segs[slot]
        return ShmTask(
            in_ref.slot, in_ref.name, in_ref.shape, in_ref.dtype,
            slot, seg.name, seg.size, inline=in_ref.inline,
        )

    def finish(self, result, task: ShmTask) -> np.ndarray:
        if isinstance(result, ShmResult):
            seg = self._out_segs[result.out_slot]
            view = np.ndarray(result.shape, dtype=result.dtype, buffer=seg.buf)
            out = np.array(view)  # copy: the slot is about to be reused
        else:
            # The result outgrew the output slot and came back through
            # the pipe; raise the high-water mark so every slot grows
            # (at task() time) before its next use.
            out = result
            if isinstance(out, np.ndarray) and out.nbytes > task.out_cap:
                self._out_hint = max(self._out_hint, out.nbytes)
        self._free_out.append(task.out_slot)
        if task.in_slot is not None:
            # Shared inputs (row shards) release only after the last use.
            slot = task.in_slot
            self._in_uses[slot] = self._in_uses.get(slot, 1) - 1
            if self._in_uses[slot] <= 0:
                del self._in_uses[slot]
                self._free_in.append(slot)
        return out

    # ------------------------------------------------------------------
    # Worker side (runs in the forked child)
    # ------------------------------------------------------------------
    def _worker_segment(self, kind: str, slot: int, name: str):
        """The child's mapping of a slot: the fork-inherited segment when
        its name still matches, else a (cached) lazy attach."""
        inherited = (self._in_segs if kind == "in" else self._out_segs)
        if slot < len(inherited) and inherited[slot].name == name:
            return inherited[slot]
        cached = self._worker_segs.get((kind, slot))
        if cached is not None and cached.name == name:
            return cached
        if cached is not None:
            try:
                cached.close()
            except Exception:
                pass
        seg = _attach(name)
        self._worker_segs[(kind, slot)] = seg
        return seg

    def worker_recv(self, task: ShmTask) -> np.ndarray:
        if task.inline is not None:
            return task.inline
        seg = self._worker_segment("in", task.in_slot, task.in_name)
        view = np.ndarray(task.shape, dtype=task.dtype, buffer=seg.buf)
        view.setflags(write=False)  # the parent owns the slot's contents
        return view

    def worker_send(self, task: ShmTask, arr: np.ndarray):
        arr = np.ascontiguousarray(arr)
        if arr.nbytes == 0 or arr.nbytes > task.out_cap:
            return arr  # pipe fallback; the parent grows the slot
        seg = self._worker_segment("out", task.out_slot, task.out_name)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        return ShmResult(task.out_slot, task.out_name, arr.shape, str(arr.dtype))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for seg in self._in_segs + self._out_segs:
            try:
                seg.close()
                seg.unlink()
            except Exception:
                pass
        for seg in self._worker_segs.values():
            try:
                seg.close()
            except Exception:
                pass
        self._in_segs = []
        self._out_segs = []
        self._worker_segs = {}
        self._free_in.clear()
        self._free_out.clear()
        self._in_uses.clear()
        if self._atexit is not None:
            try:
                atexit.unregister(self._atexit)
            except Exception:
                pass
            self._atexit = None

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"SharedMemoryTransport(slots={len(self._out_segs) or None}, "
            f"slot_bytes={self._slot_bytes})"
        )


def make_transport(spec, warn: bool = True) -> Transport:
    """Normalize a transport spec: None/name/instance -> :class:`Transport`.

    ``"shm"`` degrades to :class:`PipeTransport` (with a warning unless
    ``warn=False``) on platforms where POSIX shared memory is
    unavailable, so callers can request the fast path unconditionally.
    """
    if isinstance(spec, Transport):
        return spec
    if spec is None or spec == "pipe":
        return PipeTransport()
    if spec == "shm":
        if SharedMemoryTransport.available():
            return SharedMemoryTransport()
        if warn:
            warnings.warn(
                "shared memory is unavailable on this platform; "
                "falling back to the pipe transport",
                RuntimeWarning,
                stacklevel=2,
            )
        return PipeTransport()
    raise ValueError(
        f"unknown transport {spec!r}; expected 'pipe', 'shm', "
        "or a Transport instance"
    )
