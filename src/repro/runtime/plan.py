"""Freeze a model (or deployment artifact) into a flat, precision-aware op plan.

This module is the *compiler* half of the frozen runtime: it walks a
trained :class:`~repro.nn.module.Sequential` (or the layer records of a
:class:`~repro.embedded.deploy.DeployedModel`) once and emits a flat list
of :class:`PlanOp` closures.  Executing the plan is the job of
:mod:`repro.runtime.executors`; the user-facing façade is
:class:`repro.runtime.session.InferenceSession`.

Three compile-time choices shape the emitted ops:

* **Precision** — every weight, bias, spectrum and work buffer is
  materialized at the dtypes of a
  :class:`~repro.precision.PrecisionPolicy`.  Under ``"fp32"`` the whole
  hot path (im2col, rfft, complex GEMM, irfft, bias, activation) runs in
  float32/complex64 with no silent upcast anywhere.
* **Overlap-add conv tiling** (``conv_tile``) — block-circulant conv ops
  are emitted as streaming tiles of ``conv_tile`` output rows: each tile
  gathers only its own (overlapping) input slab, so peak memory is
  bounded by the tile size instead of the full im2col matrix (the
  ROADMAP's overlap-add streaming item).
* **Block-row sharding** (``row_shards``) — large block-circulant
  spectra (both
  :class:`~repro.nn.layers.block_circulant_linear.BlockCirculantLinear`
  and
  :class:`~repro.nn.layers.block_circulant_conv2d.BlockCirculantConv2d`,
  which share the same block-row grid) are partitioned into contiguous
  block-row slices; each shard is
  an independently callable closure owning its slice of the
  frequency-major spectra.  A
  :class:`~repro.runtime.executors.ShardedExecutor` farms the shards to a
  process pool; the serial path runs the *same* shard closures in
  sequence and combines identically, so sharded and serial execution are
  bitwise-identical by construction.

Fusion: every elementwise activation is folded into the producing compute
op (``fusable`` ops), so the plan executes one closure per weight layer
instead of one Python dispatch per ``Module``.  :func:`fuse_plan`
generalizes this at the plan level: it folds *every* ``foldable`` op
(affine, flatten, non-softmax activations — and chains of them) into the
preceding producer, so e.g. ``conv -> batchnorm -> relu`` and
``bc_conv+relu -> flatten`` each become a single closure.

**Workspace arenas.**  Every non-sharded compute op also carries a
``ws_fn`` — the same computation staged through a
:class:`~repro.runtime.workspace.Workspace` of per-batch-bucket reusable
buffers (``np.matmul(..., out=...)``, in-place bias/activation, zero-once
pad buffers) so steady-state inference stops paying the allocator.
``ws_fn`` is bitwise-identical to ``fn`` by construction: it runs the
same floating-point operations in the same order, only into caller-owned
memory.  Executors choose the path; ops with no arena form (sharded,
conv-tiled) simply leave ``ws_fn`` unset and keep their fresh path.
"""

from __future__ import annotations

import itertools
import warnings
from typing import Callable, Sequence

import numpy as np

from ..exceptions import DeploymentError
from ..fft import irfft, rfft
from ..fft.backend import get_backend
from ..nn.functional import im2col
from ..nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    Dropout,
    FFTLayer1d,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Pointwise1d,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    seq_matmul,
    shift_right,
)
from ..nn.module import Sequential
from ..precision import FP64, PrecisionPolicy
from ..structured import block_circulant_forward_batch
from ..structured.spectral import freq_major

__all__ = [
    "PlanOp",
    "compile_model_plan",
    "compile_records_plan",
    "fuse_plan",
    "pool_windows",
    "softmax",
    "MIN_SHARD_BYTES",
]

#: Per-op-instance arena slot prefixes: two ops in one plan (or two
#: plans sharing a worker pool) can never collide on a workspace slot.
_OP_IDS = itertools.count()


def _fft_writes_out() -> bool:
    """Whether the active FFT backend writes results into ``out=`` buffers.

    The pure backend's packed real paths target the caller's buffer
    directly, so arena kernels hand them workspace slots; ``numpy.fft``
    owns its result allocation, and routing it through ``out=`` would
    *add* a copy — arena kernels skip it there and let the transform
    result be the one short-lived temporary.
    """
    return get_backend() != "numpy"


def _fast_rfft(
    xb: np.ndarray, single: bool, out: np.ndarray | None = None
) -> np.ndarray:
    """numpy-backend rfft without the dispatch wrapper.

    The arena kernels transform small fixed-shape operands on every
    call, where :func:`repro.fft.rfft`'s size/axis/backend handling
    costs as much as the transform itself.  The plan knows the operand
    is real, the axis is last, and no padding applies, so this calls
    ``numpy.fft`` directly — the exact same call the wrapper would
    make, bitwise.

    At double precision the transform writes straight into the arena
    slot passed as ``out``; single precision computes in double (as
    ``numpy.fft`` always does) and casts, so the double-width
    intermediate stays a short-lived temporary.
    """
    if single:
        return np.fft.rfft(xb, axis=-1).astype(np.complex64)
    return np.fft.rfft(xb, axis=-1, out=out)


def _fast_irfft(
    y_spec: np.ndarray, n: int, single: bool, out: np.ndarray | None = None
) -> np.ndarray:
    """numpy-backend irfft counterpart of :func:`_fast_rfft`."""
    if single:
        return np.fft.irfft(y_spec, n=n, axis=-1).astype(np.float32)
    return np.fft.irfft(y_spec, n=n, axis=-1, out=out)

#: Below this frequency-major spectra size, auto row-sharding is skipped:
#: the pool round-trip costs more than the GEMM saves.  (Explicit
#: ``row_shards`` in the compile call still respects this floor; tests
#: monkeypatch it to 0 to shard tiny layers.)
MIN_SHARD_BYTES = 1 << 16


def _shard_bounds(
    p: int, row_shards: int | None, spectra_nbytes: int
) -> np.ndarray | None:
    """Block-row partition bounds, or ``None`` when sharding is off.

    Shared by the block-circulant linear and conv op builders: both
    partition the same ``p`` block-row grid of the frequency-major
    spectra, subject to the same :data:`MIN_SHARD_BYTES` floor.
    """
    shards = 0 if row_shards is None else min(row_shards, p)
    if shards > 1 and spectra_nbytes >= MIN_SHARD_BYTES:
        return np.linspace(0, p, shards + 1, dtype=int)
    return None


def softmax(x: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift stabilization."""
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def pool_windows(
    x: np.ndarray, kernel: int, stride: int
) -> tuple[np.ndarray, int, int]:
    """Gather ``(batch, C, L, k*k)`` pooling windows plus the output grid."""
    _, _, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    base_r = np.repeat(np.arange(out_h) * stride, out_w)
    base_c = np.tile(np.arange(out_w) * stride, out_h)
    offset_r = np.repeat(np.arange(kernel), kernel)
    offset_c = np.tile(np.arange(kernel), kernel)
    rows = base_r[:, None] + offset_r[None, :]
    cols = base_c[:, None] + offset_c[None, :]
    return x[:, :, rows, cols], out_h, out_w


class PlanOp:
    """One step of a frozen plan: a name plus a ``ndarray -> ndarray`` fn.

    ``fusable`` marks compute ops (linear, conv) that a following
    elementwise activation may be folded into.  ``foldable`` marks the
    other direction: ops cheap enough that :func:`fuse_plan` folds them
    *into* their producer (affine, flatten, non-softmax activations).

    ``ws_fn`` is the op's arena form — the same computation, bitwise,
    staged through a :class:`~repro.runtime.workspace.Workspace` instead
    of fresh allocations; :meth:`run` dispatches to it when the executor
    supplies a workspace.  ``fresh_out`` records whether the op owns its
    output buffer (a fresh allocation or an op-private arena slot) — the
    condition under which a folded successor may run its ``inplace_fn``
    (an in-place variant, bitwise-equal to ``fn``) on it.  ``flatten``
    is the one op with ``fresh_out=False``: its output is a view of its
    *input*, which the op does not own.

    Shardable ops additionally carry ``prepare`` (input -> the shared
    payload, e.g. the input's rfft spectrum, computed *once* per call),
    ``shard_fns`` (a tuple of closures, each computing an independent
    slice of the op's output from that payload) and ``combine``
    (stitching the slices back together, including bias and any fused
    activation).  For such ops ``fn`` is *defined as*
    ``combine([s(prepare(x)) for s in shard_fns])``, so running the
    shards on a process pool and combining in the parent produces
    bitwise-identical results to serial execution.
    """

    __slots__ = (
        "name",
        "fn",
        "fusable",
        "prepare",
        "shard_fns",
        "combine",
        "ws_fn",
        "foldable",
        "inplace_fn",
        "fresh_out",
    )

    def __init__(
        self,
        name: str,
        fn: Callable[[np.ndarray], np.ndarray],
        fusable: bool = False,
        prepare: Callable[[np.ndarray], np.ndarray] | None = None,
        shard_fns: tuple[Callable[[np.ndarray], np.ndarray], ...] | None = None,
        combine: Callable[[list[np.ndarray]], np.ndarray] | None = None,
        ws_fn: Callable[[np.ndarray, object], np.ndarray] | None = None,
        foldable: bool = False,
        inplace_fn: Callable[[np.ndarray], np.ndarray] | None = None,
        fresh_out: bool = True,
    ):
        self.name = name
        self.fn = fn
        self.fusable = fusable
        self.prepare = prepare
        self.shard_fns = shard_fns
        self.combine = combine
        self.ws_fn = ws_fn
        self.foldable = foldable
        self.inplace_fn = inplace_fn
        self.fresh_out = fresh_out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.fn(x)

    def run(self, x: np.ndarray, ws=None) -> np.ndarray:
        """Execute via the arena path when ``ws`` is given and supported."""
        if ws is not None and self.ws_fn is not None:
            return self.ws_fn(x, ws)
        return self.fn(x)

    def fold(self, op: "PlanOp") -> "PlanOp":
        """Fold a ``foldable`` successor into this op (one closure).

        The fresh path composes out-of-place — exactly the two ops run
        back to back, so reference numerics are untouched.  The arena
        path runs the successor's ``inplace_fn`` directly on this op's
        output when this op owns that buffer (``fresh_out``), which is
        bitwise-equal by the in-place ufunc contract.  Shard surfaces
        survive: the successor composes onto ``combine``, so pool
        workers still run the original shard closures.
        """
        inner, post = self.fn, op.fn

        def folded_fn(x: np.ndarray) -> np.ndarray:
            return post(inner(x))

        folded = PlanOp(
            f"{self.name}+{op.name}",
            folded_fn,
            fusable=self.fusable,
            foldable=self.foldable and op.foldable,
            fresh_out=self.fresh_out or op.fresh_out,
        )
        if self.ws_fn is not None:
            inner_ws = self.ws_fn
            if op.inplace_fn is not None and self.fresh_out:
                post_ws = op.inplace_fn
            else:
                post_ws = post
            folded.ws_fn = lambda x, ws: post_ws(inner_ws(x, ws))
        if self.inplace_fn is not None and op.inplace_fn is not None:
            self_ip, op_ip = self.inplace_fn, op.inplace_fn
            folded.inplace_fn = lambda x: op_ip(self_ip(x))
        if self.shard_fns is not None:
            inner_combine = self.combine
            folded.prepare = self.prepare
            folded.shard_fns = self.shard_fns
            folded.combine = lambda parts: post(inner_combine(parts))
        return folded

    def fuse(self, name: str, activation: Callable[[np.ndarray], np.ndarray]) -> "PlanOp":
        """A new op applying ``activation`` after this op's computation."""
        return self.fold(
            PlanOp(
                name,
                activation,
                foldable=True,
                inplace_fn=_ACTIVATIONS_INPLACE.get(name),
            )
        )

    def __repr__(self) -> str:
        return f"PlanOp({self.name!r})"


_ACTIVATIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "relu": lambda x: np.maximum(x, 0.0),
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "tanh": np.tanh,
    "softmax": softmax,
}


def _sigmoid_inplace(x: np.ndarray) -> np.ndarray:
    # Same ufunc sequence as 1 / (1 + exp(-x)); float addition is
    # commutative bit-for-bit, so exp(-x) + 1 matches 1 + exp(-x).
    np.negative(x, out=x)
    np.exp(x, out=x)
    x += 1.0
    np.divide(1.0, x, out=x)
    return x


#: In-place forms of the foldable activations, bitwise-equal to the
#: out-of-place forms in ``_ACTIVATIONS``.  Only applied by the arena
#: path to buffers the producing op owns (``fresh_out``).  leaky_relu
#: has no allocation-free in-place form (``np.where`` needs a fresh
#: destination) and softmax is never folded, so neither appears here.
_ACTIVATIONS_INPLACE: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "relu": lambda x: np.maximum(x, 0.0, out=x),
    "sigmoid": _sigmoid_inplace,
    "tanh": lambda x: np.tanh(x, out=x),
}


# ----------------------------------------------------------------------
# Op builders (shared by compile_model_plan and compile_records_plan)
# ----------------------------------------------------------------------
def _bc_linear_op(
    spectra: np.ndarray,
    bias: np.ndarray | None,
    in_features: int,
    out_features: int,
    block_size: int,
    spectra_fm: np.ndarray | None = None,
    policy: PrecisionPolicy = FP64,
    row_shards: int | None = None,
) -> PlanOp:
    cdtype = policy.complex_dtype
    rdtype = policy.real_dtype
    spectra = np.asarray(spectra, dtype=cdtype)
    if spectra_fm is None or np.asarray(spectra_fm).dtype != cdtype:
        spectra_fm = freq_major(spectra)
    p, q = spectra.shape[0], spectra.shape[1]
    b = block_size
    bias = None if bias is None else np.asarray(bias, dtype=rdtype)

    def blocks_of(x: np.ndarray) -> np.ndarray:
        batch = x.shape[0]
        if x.shape[-1] != in_features:
            raise ValueError(
                f"expected input with {in_features} features, got shape {x.shape}"
            )
        if in_features == q * b:
            return x.reshape(batch, q, b)
        padded = np.zeros((batch, q * b), dtype=rdtype)
        padded[:, :in_features] = x
        return padded.reshape(batch, q, b)

    def finish(out_blocks: np.ndarray) -> np.ndarray:
        out = out_blocks.reshape(out_blocks.shape[0], -1)[:, :out_features]
        if bias is not None:
            out = out + bias
        return out

    name = f"bc_linear({in_features}->{out_features},b={b})"
    bounds = _shard_bounds(p, row_shards, spectra_fm.nbytes)
    if bounds is not None:
        # Partition the block-row grid: shard i owns a contiguous copy of
        # its rows of the frequency-major spectra (the slice a pool
        # worker's forked pages actually touch).  The input spectrum is
        # computed once by `prepare`; every shard consumes the same
        # frequency-major payload, so no FFT work is duplicated whether
        # the shards run in-process or on a pool.

        def prepare(x: np.ndarray) -> np.ndarray:
            # Frequency-major (nb, q, batch): the exact GEMM operand.
            return np.ascontiguousarray(
                rfft(blocks_of(x)).transpose(2, 1, 0)
            )

        def make_shard(r0: int, r1: int):
            w_rows = np.ascontiguousarray(spectra_fm[:, r0:r1, :])

            def shard(x_spec_fm: np.ndarray) -> np.ndarray:
                y_spec = np.matmul(w_rows, x_spec_fm).transpose(2, 1, 0)
                return irfft(y_spec, n=b)  # (batch, r1-r0, b)

            return shard

        shard_fns = tuple(
            make_shard(int(r0), int(r1))
            for r0, r1 in zip(bounds[:-1], bounds[1:])
            if r1 > r0
        )

        def combine(parts: list[np.ndarray]) -> np.ndarray:
            return finish(np.concatenate(parts, axis=1))

        def sharded_fn(x: np.ndarray) -> np.ndarray:
            x_spec_fm = prepare(x)
            return combine([shard(x_spec_fm) for shard in shard_fns])

        return PlanOp(
            f"{name}[rows/{len(shard_fns)}]",
            sharded_fn,
            fusable=True,
            prepare=prepare,
            shard_fns=shard_fns,
            combine=combine,
        )

    def fn(x: np.ndarray) -> np.ndarray:
        out = block_circulant_forward_batch(
            spectra, blocks_of(x), weight_fm=spectra_fm
        )
        return finish(out)

    # Arena form: same FFT -> GEMM -> IFFT -> bias pipeline, staged
    # through per-bucket workspace slots.  The explicit copy into the
    # contiguous frequency-major operand replaces the re-buffering
    # matmul would do internally per call; matmul writes straight into
    # its slot; bias adds in place on the op-owned result.  Each step is
    # bitwise-equal to its fresh counterpart (tests/runtime/test_arena).
    nb = spectra.shape[2]
    tag = f"op{next(_OP_IDS)}.bcl"
    k_pad, k_spec, k_xsfm, k_yfm, k_ysp, k_blk = (
        tag + ".pad", tag + ".spec", tag + ".xsfm",
        tag + ".yfm", tag + ".ysp", tag + ".blk",
    )
    single = np.dtype(cdtype) == np.complex64

    def ws_fn(x: np.ndarray, ws) -> np.ndarray:
        batch = x.shape[0]
        if x.shape[-1] != in_features:
            raise ValueError(
                f"expected input with {in_features} features, got shape {x.shape}"
            )
        m = ws.bucket(batch)
        if in_features == q * b:
            xb = x.reshape(batch, q, b)
        else:
            # Zero-once pad slot: columns past in_features are zeroed at
            # allocation and never written again.
            padded = ws.zeros(k_pad, (m, q * b), rdtype)[:batch]
            padded[:, :in_features] = x
            xb = padded.reshape(batch, q, b)
        if _fft_writes_out():
            x_spec = rfft(
                xb, out=ws.get(k_spec, (m, q, nb), cdtype)[:batch]
            )
        elif single:
            x_spec = _fast_rfft(xb, True)
        else:
            x_spec = _fast_rfft(
                xb, False, out=ws.get(k_spec, (m, q, nb), cdtype)[:batch]
            )
        xs_fm = ws.get(k_xsfm, (nb, q, m), cdtype)[..., :batch]
        np.copyto(xs_fm, x_spec.transpose(2, 1, 0))
        y_fm = np.matmul(
            spectra_fm,
            xs_fm,
            out=ws.get(k_yfm, (nb, p, m), cdtype)[..., :batch],
        )
        y_spec = y_fm.transpose(2, 1, 0)
        if _fft_writes_out():
            out_blocks = irfft(
                y_spec,
                n=b,
                out=ws.get(k_blk, (m, p, b), rdtype)[:batch],
            )
        elif single:
            out_blocks = _fast_irfft(y_spec, b, True)
        else:
            # numpy's irfft hits a slow path when both ``out=`` and a
            # strided input are given; stage the transposed spectrum
            # contiguously first (a plain copy) so the transform runs on
            # its fast path and still writes into the arena.
            y_stage = ws.get(k_ysp, (m, p, nb), cdtype)[:batch]
            np.copyto(y_stage, y_spec)
            out_blocks = _fast_irfft(
                y_stage, b, False, out=ws.get(k_blk, (m, p, b), rdtype)[:batch]
            )
        out = out_blocks.reshape(batch, -1)[:, :out_features]
        if bias is not None:
            out += bias
        return out

    return PlanOp(name, fn, fusable=True, ws_fn=ws_fn)


def _linear_op(
    weight: np.ndarray,
    bias: np.ndarray | None,
    policy: PrecisionPolicy = FP64,
) -> PlanOp:
    rdtype = policy.real_dtype
    weight_t = np.ascontiguousarray(np.asarray(weight, dtype=rdtype).T)
    bias = None if bias is None else np.asarray(bias, dtype=rdtype)
    out_f, in_f = weight.shape

    def fn(x: np.ndarray) -> np.ndarray:
        out = x @ weight_t
        if bias is not None:
            out = out + bias
        return out

    tag = f"op{next(_OP_IDS)}.lin"

    def ws_fn(x: np.ndarray, ws) -> np.ndarray:
        batch = x.shape[0]
        m = ws.bucket(batch)
        out = np.matmul(
            x, weight_t, out=ws.get(f"{tag}.out", (m, out_f), rdtype)[:batch]
        )
        if bias is not None:
            out += bias
        return out

    return PlanOp(f"linear({in_f}->{out_f})", fn, fusable=True, ws_fn=ws_fn)


def _fft1d_op(
    weight_l: np.ndarray,
    weight_r: np.ndarray,
    bias: np.ndarray | None,
    dilation: int,
    policy: PrecisionPolicy = FP64,
) -> PlanOp:
    """Two-tap causal dilated sequence layer on time-major input.

    ``y[t] = W_r x[t] + W_l x[t-d] + b`` over ``(batch, T, C)``.  Both
    GEMMs go through :func:`~repro.nn.layers.fftnet1d.seq_matmul` — the
    row-count-stable kernel — and the adds are elementwise, so any
    row-chunking of the timeline (the incremental stream plan pushing K
    samples at a time) reproduces this op's outputs bitwise.
    """
    rdtype = policy.real_dtype
    wl_t = np.ascontiguousarray(np.asarray(weight_l, dtype=rdtype).T)
    wr_t = np.ascontiguousarray(np.asarray(weight_r, dtype=rdtype).T)
    bias = None if bias is None else np.asarray(bias, dtype=rdtype)
    in_c, out_c = wr_t.shape

    def fn(x: np.ndarray) -> np.ndarray:
        batch, steps, _ = x.shape
        xl = shift_right(x, dilation)
        out = seq_matmul(x.reshape(-1, in_c), wr_t)
        out += seq_matmul(xl.reshape(-1, in_c), wl_t)
        if bias is not None:
            out += bias
        return out.reshape(batch, steps, out_c)

    return PlanOp(f"fft1d({in_c}->{out_c},d={dilation})", fn, fusable=True)


def _pointwise1d_op(
    weight: np.ndarray,
    bias: np.ndarray | None,
    policy: PrecisionPolicy = FP64,
) -> PlanOp:
    """Per-timestep projection on time-major input (1x1 conv).

    Shares :func:`seq_matmul` with the stream plan for bitwise
    row-chunking stability (see :func:`_fft1d_op`).
    """
    rdtype = policy.real_dtype
    weight_t = np.ascontiguousarray(np.asarray(weight, dtype=rdtype).T)
    bias = None if bias is None else np.asarray(bias, dtype=rdtype)
    in_c, out_c = weight_t.shape

    def fn(x: np.ndarray) -> np.ndarray:
        batch, steps, _ = x.shape
        out = seq_matmul(x.reshape(-1, in_c), weight_t)
        if bias is not None:
            out += bias
        return out.reshape(batch, steps, out_c)

    return PlanOp(f"pointwise1d({in_c}->{out_c})", fn, fusable=True)


def _conv_op(
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    policy: PrecisionPolicy = FP64,
) -> PlanOp:
    rdtype = policy.real_dtype
    weight = np.asarray(weight, dtype=rdtype)
    out_c, in_c, k, _ = weight.shape
    flat_t = np.ascontiguousarray(weight.reshape(out_c, -1).T)
    bias = None if bias is None else np.asarray(bias, dtype=rdtype)

    def fn(x: np.ndarray) -> np.ndarray:
        batch, _, height, width = x.shape
        out_h = (height + 2 * padding - k) // stride + 1
        out_w = (width + 2 * padding - k) // stride + 1
        cols = im2col(x, k, stride, padding)
        out = cols @ flat_t
        out = out.transpose(0, 2, 1).reshape(batch, out_c, out_h, out_w)
        if bias is not None:
            out = out + bias[None, :, None, None]
        return out

    tag = f"op{next(_OP_IDS)}.conv"

    def ws_fn(x: np.ndarray, ws) -> np.ndarray:
        batch, _, height, width = x.shape
        out_h = (height + 2 * padding - k) // stride + 1
        out_w = (width + 2 * padding - k) // stride + 1
        cols = im2col(x, k, stride, padding)
        m = ws.bucket(batch)
        gemm = np.matmul(
            cols,
            flat_t,
            out=ws.get(f"{tag}.gemm", (m, out_h * out_w, out_c), rdtype)[
                :batch
            ],
        )
        # The channels-first reshape copies (same as the fresh path —
        # the transpose view is not reshapeable), so the result is op-
        # owned and bias can add in place.
        out = gemm.transpose(0, 2, 1).reshape(batch, out_c, out_h, out_w)
        if bias is not None:
            out += bias[None, :, None, None]
        return out

    return PlanOp(f"conv({in_c}->{out_c},k={k})", fn, fusable=True, ws_fn=ws_fn)


def _bc_conv_op(
    spectra: np.ndarray,
    bias: np.ndarray | None,
    in_channels: int,
    out_channels: int,
    kernel_size: int,
    block_size: int,
    stride: int,
    padding: int,
    channel_blocks: int,
    spectra_fm: np.ndarray | None = None,
    policy: PrecisionPolicy = FP64,
    conv_tile: int | None = None,
    row_shards: int | None = None,
) -> PlanOp:
    cdtype = policy.complex_dtype
    rdtype = policy.real_dtype
    spectra = np.asarray(spectra, dtype=cdtype)
    if spectra_fm is None or np.asarray(spectra_fm).dtype != cdtype:
        spectra_fm = freq_major(spectra)
    b = block_size
    k = kernel_size
    padded_c = channel_blocks * b
    bias = None if bias is None else np.asarray(bias, dtype=rdtype)

    def pad_blocks(cols: np.ndarray, batch: int, positions: int) -> np.ndarray:
        """im2col columns -> channel-padded ``(batch*positions, q, b)``."""
        by_pos = cols.reshape(batch, positions, in_channels, k * k).transpose(
            0, 1, 3, 2
        )
        if padded_c != in_channels:
            padded = np.zeros((batch, positions, k * k, padded_c), dtype=rdtype)
            padded[..., :in_channels] = by_pos
            by_pos = padded
        return by_pos.reshape(batch * positions, -1, b)

    name = f"bc_conv({in_channels}->{out_channels},k={k},b={b})"
    p = spectra.shape[0]
    bounds = _shard_bounds(p, row_shards, spectra_fm.nbytes)
    if bounds is not None and conv_tile is not None:
        warnings.warn(
            f"row_shards supersedes conv_tile for {name}: the sharded op "
            "gathers its full im2col matrix in one shot (poolable "
            "payload), so peak conv memory is no longer bounded by the "
            "tile; compile with row_shards=None to keep the memory bound",
            RuntimeWarning,
            stacklevel=2,
        )
    if bounds is not None:
        # Block-row-sharded conv: same partition of the block-row grid
        # as the linear case — each shard owns a contiguous copy of its
        # rows of the frequency-major spectra and turns the shared input
        # spectrum into its slice of the output channels.  The im2col
        # gather and the input rfft run once in `prepare`; `combine`
        # reassembles the channel slices, adds bias and any fused
        # activation.  Sharding targets many-core single-image latency,
        # so it supersedes `conv_tile` memory tiling for this op (the
        # one-shot im2col is the price of a poolable payload).
        #
        # `prepare` stashes the call's output geometry for `combine`;
        # both always run in the same process for one call at a time
        # (serially inline, or both on the executor's parent side), so
        # the cell is never shared across concurrent calls.
        geometry: dict[str, int] = {}

        def prepare(x: np.ndarray) -> np.ndarray:
            batch, _, height, width = x.shape
            out_h = (height + 2 * padding - k) // stride + 1
            out_w = (width + 2 * padding - k) // stride + 1
            geometry["batch"], geometry["out_h"], geometry["out_w"] = (
                batch, out_h, out_w,
            )
            blocks = pad_blocks(
                im2col(x, k, stride, padding), batch, out_h * out_w
            )
            # Frequency-major (nb, q, batch*positions): the GEMM operand.
            return np.ascontiguousarray(rfft(blocks).transpose(2, 1, 0))

        def make_shard(r0: int, r1: int):
            w_rows = np.ascontiguousarray(spectra_fm[:, r0:r1, :])

            def shard(x_spec_fm: np.ndarray) -> np.ndarray:
                y_spec = np.matmul(w_rows, x_spec_fm).transpose(2, 1, 0)
                return irfft(y_spec, n=b)  # (batch*positions, r1-r0, b)

            return shard

        shard_fns = tuple(
            make_shard(int(r0), int(r1))
            for r0, r1 in zip(bounds[:-1], bounds[1:])
            if r1 > r0
        )

        def combine(parts: list[np.ndarray]) -> np.ndarray:
            batch = geometry["batch"]
            out_h, out_w = geometry["out_h"], geometry["out_w"]
            out_blocks = np.concatenate(parts, axis=1)
            out = out_blocks.reshape(out_blocks.shape[0], -1)[:, :out_channels]
            out = out.reshape(batch, out_h * out_w, out_channels)
            out = out.transpose(0, 2, 1).reshape(
                batch, out_channels, out_h, out_w
            )
            if bias is not None:
                out = out + bias[None, :, None, None]
            return out

        def sharded_fn(x: np.ndarray) -> np.ndarray:
            x_spec_fm = prepare(x)
            return combine([shard(x_spec_fm) for shard in shard_fns])

        return PlanOp(
            f"{name}[rows/{len(shard_fns)}]",
            sharded_fn,
            fusable=True,
            prepare=prepare,
            shard_fns=shard_fns,
            combine=combine,
        )

    def contract(cols: np.ndarray, batch: int, positions: int) -> np.ndarray:
        """im2col columns -> ``(batch, positions, out_channels)``."""
        blocks = pad_blocks(cols, batch, positions)
        out = block_circulant_forward_batch(spectra, blocks, weight_fm=spectra_fm)
        out = out.reshape(batch * positions, -1)[:, :out_channels]
        return out.reshape(batch, positions, out_channels)

    def fn(x: np.ndarray) -> np.ndarray:
        batch, _, height, width = x.shape
        out_h = (height + 2 * padding - k) // stride + 1
        out_w = (width + 2 * padding - k) // stride + 1
        if conv_tile is None or conv_tile >= out_h:
            out = contract(im2col(x, k, stride, padding), batch, out_h * out_w)
            out = out.transpose(0, 2, 1).reshape(
                batch, out_channels, out_h, out_w
            )
        else:
            # Overlap-add streaming: each tile of `conv_tile` output rows
            # gathers only its own input slab (slabs overlap by k - stride
            # rows), bounding peak im2col memory by the tile size.
            padded = (
                np.pad(
                    x,
                    ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                )
                if padding
                else x
            )
            out = np.empty((batch, out_channels, out_h, out_w), dtype=rdtype)
            for r0 in range(0, out_h, conv_tile):
                r1 = min(r0 + conv_tile, out_h)
                slab = padded[:, :, r0 * stride : (r1 - 1) * stride + k, :]
                tile = contract(
                    im2col(slab, k, stride, 0), batch, (r1 - r0) * out_w
                )
                out[:, :, r0:r1, :] = tile.transpose(0, 2, 1).reshape(
                    batch, out_channels, r1 - r0, out_w
                )
        if bias is not None:
            out = out + bias[None, :, None, None]
        return out

    if conv_tile is not None:
        # Tiled ops keep the fresh path: the tile loop is already the
        # memory-bounding strategy, and its slab geometry varies per
        # call position — no stable buffer set to preallocate.
        name = name[:-1] + f",tile={conv_tile})"
        return PlanOp(name, fn, fusable=True)

    nb = spectra.shape[2]
    tag = f"op{next(_OP_IDS)}.bcc"
    k_pad, k_spec, k_xsfm, k_yfm, k_ysp, k_blk = (
        tag + ".pad", tag + ".spec", tag + ".xsfm",
        tag + ".yfm", tag + ".ysp", tag + ".blk",
    )
    single = np.dtype(cdtype) == np.complex64

    def ws_fn(x: np.ndarray, ws) -> np.ndarray:
        batch, _, height, width = x.shape
        out_h = (height + 2 * padding - k) // stride + 1
        out_w = (width + 2 * padding - k) // stride + 1
        positions = out_h * out_w
        cols = im2col(x, k, stride, padding)
        by_pos = cols.reshape(batch, positions, in_channels, k * k).transpose(
            0, 1, 3, 2
        )
        mrows = ws.bucket(batch) * positions
        if padded_c != in_channels:
            padded = ws.zeros(
                k_pad,
                (ws.bucket(batch), positions, k * k, padded_c),
                rdtype,
            )[:batch]
            padded[..., :in_channels] = by_pos
            by_pos = padded
        blocks = by_pos.reshape(batch * positions, -1, b)
        rows = blocks.shape[0]
        qc = blocks.shape[1]
        if _fft_writes_out():
            x_spec = rfft(
                blocks,
                out=ws.get(k_spec, (mrows, qc, nb), cdtype)[:rows],
            )
        elif single:
            x_spec = _fast_rfft(blocks, True)
        else:
            x_spec = _fast_rfft(
                blocks,
                False,
                out=ws.get(k_spec, (mrows, qc, nb), cdtype)[:rows],
            )
        xs_fm = ws.get(k_xsfm, (nb, qc, mrows), cdtype)[..., :rows]
        np.copyto(xs_fm, x_spec.transpose(2, 1, 0))
        y_fm = np.matmul(
            spectra_fm,
            xs_fm,
            out=ws.get(k_yfm, (nb, p, mrows), cdtype)[..., :rows],
        )
        y_spec = y_fm.transpose(2, 1, 0)
        if _fft_writes_out():
            out_blocks = irfft(
                y_spec,
                n=b,
                out=ws.get(k_blk, (mrows, p, b), rdtype)[:rows],
            )
        elif single:
            out_blocks = _fast_irfft(y_spec, b, True)
        else:
            # Same strided-input + out= slow path as the linear kernel:
            # stage the spectrum contiguously before transforming.
            y_stage = ws.get(k_ysp, (mrows, p, nb), cdtype)[:rows]
            np.copyto(y_stage, y_spec)
            out_blocks = _fast_irfft(
                y_stage,
                b,
                False,
                out=ws.get(k_blk, (mrows, p, b), rdtype)[:rows],
            )
        out = out_blocks.reshape(rows, -1)[:, :out_channels]
        out = out.reshape(batch, positions, out_channels)
        out = out.transpose(0, 2, 1).reshape(batch, out_channels, out_h, out_w)
        if bias is not None:
            out += bias[None, :, None, None]
        return out

    return PlanOp(name, fn, fusable=True, ws_fn=ws_fn)


def _affine_op(
    scale: np.ndarray,
    shift: np.ndarray,
    per_channel: bool,
    policy: PrecisionPolicy = FP64,
) -> PlanOp:
    scale = np.asarray(scale, dtype=policy.real_dtype)
    shift = np.asarray(shift, dtype=policy.real_dtype)

    def fn(x: np.ndarray) -> np.ndarray:
        if per_channel:
            return x * scale[None, :, None, None] + shift[None, :, None, None]
        return x * scale + shift

    def inplace_fn(x: np.ndarray) -> np.ndarray:
        if per_channel:
            x *= scale[None, :, None, None]
            x += shift[None, :, None, None]
        else:
            x *= scale
            x += shift
        return x

    tag = f"op{next(_OP_IDS)}.aff"

    def ws_fn(x: np.ndarray, ws) -> np.ndarray:
        batch = x.shape[0]
        m = ws.bucket(batch)
        out = ws.get(f"{tag}.out", (m,) + x.shape[1:], x.dtype)[:batch]
        if per_channel:
            np.multiply(x, scale[None, :, None, None], out=out)
            out += shift[None, :, None, None]
        else:
            np.multiply(x, scale, out=out)
            out += shift
        return out

    return PlanOp(
        "affine",
        fn,
        fusable=True,
        ws_fn=ws_fn,
        foldable=True,
        inplace_fn=inplace_fn,
    )


def _maxpool_op(kernel: int, stride: int) -> PlanOp:
    def fn(x: np.ndarray) -> np.ndarray:
        windows, out_h, out_w = pool_windows(x, kernel, stride)
        return windows.max(axis=-1).reshape(x.shape[0], x.shape[1], out_h, out_w)

    tag = f"op{next(_OP_IDS)}.maxp"

    def ws_fn(x: np.ndarray, ws) -> np.ndarray:
        windows, out_h, out_w = pool_windows(x, kernel, stride)
        batch, chans = x.shape[0], x.shape[1]
        m = ws.bucket(batch)
        buf = ws.get(f"{tag}.out", (m, chans, out_h * out_w), x.dtype)[:batch]
        windows.max(axis=-1, out=buf)
        return buf.reshape(batch, chans, out_h, out_w)

    # fusable: a pool owns its output buffer, so a folded successor
    # (flatten, activation) may reshape or mutate it freely.
    return PlanOp(f"maxpool(k={kernel})", fn, fusable=True, ws_fn=ws_fn)


def _avgpool_op(kernel: int, stride: int) -> PlanOp:
    def fn(x: np.ndarray) -> np.ndarray:
        windows, out_h, out_w = pool_windows(x, kernel, stride)
        return windows.mean(axis=-1).reshape(x.shape[0], x.shape[1], out_h, out_w)

    tag = f"op{next(_OP_IDS)}.avgp"

    def ws_fn(x: np.ndarray, ws) -> np.ndarray:
        windows, out_h, out_w = pool_windows(x, kernel, stride)
        batch, chans = x.shape[0], x.shape[1]
        m = ws.bucket(batch)
        buf = ws.get(f"{tag}.out", (m, chans, out_h * out_w), x.dtype)[:batch]
        windows.mean(axis=-1, out=buf)
        return buf.reshape(batch, chans, out_h, out_w)

    return PlanOp(f"avgpool(k={kernel})", fn, fusable=True, ws_fn=ws_fn)


def _flatten_op() -> PlanOp:
    # The output is a view of the op's *input*, so a folded successor
    # must not mutate it (fresh_out=False); the reshape itself is
    # allocation-free, so it doubles as its own in-place form.
    fn = lambda x: x.reshape(x.shape[0], -1)  # noqa: E731
    return PlanOp(
        "flatten", fn, foldable=True, inplace_fn=fn, fresh_out=False
    )


def _activation_op(name: str, fn: Callable[[np.ndarray], np.ndarray]) -> PlanOp:
    return PlanOp(
        name,
        fn,
        foldable=name != "softmax",
        inplace_fn=_ACTIVATIONS_INPLACE.get(name),
    )


def _append_activation(
    ops: list[PlanOp], name: str, fn: Callable[[np.ndarray], np.ndarray]
) -> None:
    """Fuse the activation into the previous compute op when possible."""
    if ops and ops[-1].fusable and name != "softmax":
        ops[-1] = ops[-1].fold(_activation_op(name, fn))
    else:
        ops.append(_activation_op(name, fn))


def fuse_plan(ops: Sequence[PlanOp]) -> list[PlanOp]:
    """Compile pass: fold every foldable op into its producer.

    Generalizes the per-activation fusion the compilers already do into
    a pass over the whole op list: affine (folded batch-norm /
    dequantize), flatten and non-softmax activation ops — and chains of
    them — merge into the preceding compute op, so e.g.
    ``conv -> affine+relu -> ... -> bc_conv+relu -> flatten`` executes
    as ``conv+affine+relu -> ... -> bc_conv+relu+flatten``.  The first
    op never folds into anything, so user input is never mutated; the
    fresh path of a folded op is the exact out-of-place composition of
    its parts, so reference numerics are untouched (bitwise).
    """
    fused: list[PlanOp] = []
    for op in ops:
        prev = fused[-1] if fused else None
        if prev is not None and op.foldable and (prev.fusable or prev.foldable):
            fused[-1] = prev.fold(op)
        else:
            fused.append(op)
    return fused


# ----------------------------------------------------------------------
# Plan compilers
# ----------------------------------------------------------------------
def compile_model_plan(
    model: Sequential,
    policy: PrecisionPolicy = FP64,
    conv_tile: int | None = None,
    row_shards: int | None = None,
) -> list[PlanOp]:
    """Snapshot a trained ``model`` into a flat op plan.

    Block-circulant weights are captured as their dtype-keyed cached
    half-spectra (shared with the layer's
    :class:`~repro.structured.spectral.SpectrumCache`); dense weights are
    cast to the policy's real dtype; dropout disappears; batch-norm folds
    into a per-feature affine op; activations fuse into the producing op.
    """
    spectrum_dtype = policy.complex_dtype
    ops: list[PlanOp] = []
    for layer in model:
        if isinstance(layer, BlockCirculantLinear):
            spectra, spectra_fm = layer.weight_spectra(spectrum_dtype)
            ops.append(
                _bc_linear_op(
                    spectra,
                    None if layer.bias is None else layer.bias.data,
                    layer.in_features,
                    layer.out_features,
                    layer.block_size,
                    spectra_fm=spectra_fm,
                    policy=policy,
                    row_shards=row_shards,
                ),
            )
        elif isinstance(layer, Linear):
            ops.append(
                _linear_op(
                    layer.weight.data,
                    None if layer.bias is None else layer.bias.data,
                    policy=policy,
                ),
            )
        elif isinstance(layer, FFTLayer1d):
            ops.append(
                _fft1d_op(
                    layer.weight_l.data,
                    layer.weight_r.data,
                    None if layer.bias is None else layer.bias.data,
                    layer.dilation,
                    policy=policy,
                ),
            )
        elif isinstance(layer, Pointwise1d):
            ops.append(
                _pointwise1d_op(
                    layer.weight.data,
                    None if layer.bias is None else layer.bias.data,
                    policy=policy,
                ),
            )
        elif isinstance(layer, BlockCirculantConv2d):
            spectra, spectra_fm = layer.weight_spectra(spectrum_dtype)
            ops.append(
                _bc_conv_op(
                    spectra,
                    None if layer.bias is None else layer.bias.data,
                    layer.in_channels,
                    layer.out_channels,
                    layer.kernel_size,
                    layer.block_size,
                    layer.stride,
                    layer.padding,
                    layer.channel_blocks,
                    spectra_fm=spectra_fm,
                    policy=policy,
                    conv_tile=conv_tile,
                    row_shards=row_shards,
                ),
            )
        elif isinstance(layer, Conv2d):
            ops.append(
                _conv_op(
                    layer.weight.data,
                    None if layer.bias is None else layer.bias.data,
                    layer.stride,
                    layer.padding,
                    policy=policy,
                ),
            )
        elif isinstance(layer, ReLU):
            _append_activation(ops, "relu", _ACTIVATIONS["relu"])
        elif isinstance(layer, LeakyReLU):
            slope = layer.negative_slope
            _append_activation(
                ops,
                "leaky_relu",
                lambda x, s=slope: np.where(x > 0.0, x, s * x),
            )
        elif isinstance(layer, Sigmoid):
            _append_activation(ops, "sigmoid", _ACTIVATIONS["sigmoid"])
        elif isinstance(layer, Tanh):
            _append_activation(ops, "tanh", _ACTIVATIONS["tanh"])
        elif isinstance(layer, Softmax):
            ops.append(_activation_op("softmax", softmax))
        elif isinstance(layer, Flatten):
            ops.append(_flatten_op())
        elif isinstance(layer, MaxPool2d):
            ops.append(_maxpool_op(layer.kernel_size, layer.stride))
        elif isinstance(layer, AvgPool2d):
            ops.append(_avgpool_op(layer.kernel_size, layer.stride))
        elif isinstance(layer, Dropout):
            continue  # identity at inference
        elif isinstance(layer, (BatchNorm1d, BatchNorm2d)):
            std = np.sqrt(layer.running_var + layer.eps)
            scale = layer.gamma.data / std
            shift = layer.beta.data - layer.running_mean * scale
            ops.append(
                _affine_op(
                    scale, shift, isinstance(layer, BatchNorm2d), policy=policy
                )
            )
        else:
            raise DeploymentError(
                f"cannot freeze layer type {type(layer).__name__}"
            )
    return ops


def compile_records_plan(
    records: Sequence[dict],
    policy: PrecisionPolicy = FP64,
    conv_tile: int | None = None,
    row_shards: int | None = None,
) -> list[PlanOp]:
    """Compile deployment-artifact layer records into a flat op plan.

    ``records`` is the list of dicts in the
    :class:`~repro.embedded.deploy.DeployedModel` format.  The complex64
    artifact spectra are widened (fp64) or used as stored (fp32) once
    here, instead of on every call as the record interpreter does.
    """
    ops: list[PlanOp] = []
    for record in records:
        kind = record["kind"]
        if kind == "bc_linear":
            ops.append(
                _bc_linear_op(
                    record["spectra"],
                    record["bias"],
                    record["in_features"],
                    record["out_features"],
                    record["block_size"],
                    policy=policy,
                    row_shards=row_shards,
                ),
            )
        elif kind == "linear":
            ops.append(_linear_op(record["weight"], record["bias"], policy=policy))
        elif kind == "fft1d":
            stacked = np.asarray(record["weight"])
            ops.append(
                _fft1d_op(
                    stacked[0],
                    stacked[1],
                    record["bias"],
                    record["dilation"],
                    policy=policy,
                ),
            )
        elif kind == "pointwise1d":
            ops.append(
                _pointwise1d_op(record["weight"], record["bias"], policy=policy)
            )
        elif kind == "bc_conv":
            ops.append(
                _bc_conv_op(
                    record["spectra"],
                    record["bias"],
                    record["in_channels"],
                    record["out_channels"],
                    record["kernel_size"],
                    record["block_size"],
                    record["stride"],
                    record["padding"],
                    record["channel_blocks"],
                    policy=policy,
                    conv_tile=conv_tile,
                    row_shards=row_shards,
                ),
            )
        elif kind == "conv":
            ops.append(
                _conv_op(
                    record["weight"],
                    record["bias"],
                    record["stride"],
                    record["padding"],
                    policy=policy,
                ),
            )
        elif kind in ("relu", "sigmoid", "tanh"):
            _append_activation(ops, kind, _ACTIVATIONS[kind])
        elif kind == "leaky_relu":
            slope = record["slope"]
            _append_activation(
                ops,
                "leaky_relu",
                lambda x, s=slope: np.where(x > 0.0, x, s * x),
            )
        elif kind == "softmax":
            ops.append(_activation_op("softmax", softmax))
        elif kind == "flatten":
            ops.append(_flatten_op())
        elif kind == "maxpool":
            ops.append(_maxpool_op(record["kernel"], record["stride"]))
        elif kind == "avgpool":
            ops.append(_avgpool_op(record["kernel"], record["stride"]))
        elif kind == "affine":
            ops.append(
                _affine_op(
                    record["scale"],
                    record["shift"],
                    record["per_channel"],
                    policy=policy,
                ),
            )
        else:
            raise DeploymentError(f"unknown layer kind {kind!r}")
    return ops
