"""Frozen inference runtime (the paper's section IV-A engine, flattened).

A trained :class:`~repro.nn.module.Sequential` pays three taxes at
inference time that training needs but deployment does not: autograd
graph construction, per-call weight FFTs, and one Python dispatch per
layer object.  :class:`InferenceSession` strips all three by freezing the
model into a flat plan of numpy closures with precomputed weight spectra
and fused bias+activation, then streaming batches through the plan.
"""

from .session import InferenceSession

__all__ = ["InferenceSession"]
