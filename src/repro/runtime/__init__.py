"""Frozen inference runtime (the paper's section IV-A engine, flattened).

A trained :class:`~repro.nn.module.Sequential` pays three taxes at
inference time that training needs but deployment does not: autograd
graph construction, per-call weight FFTs, and one Python dispatch per
layer object.  The runtime strips all three, split across three modules:

* :mod:`repro.runtime.plan` — the compiler: freeze a model (or a
  deployment artifact) into a flat plan of numpy closures with
  precomputed weight spectra, fused bias+activation (and the
  :func:`fuse_plan` pass folding affine / flatten / activation chains),
  optional overlap-add conv tiling and block-row sharding — all at the
  dtypes of a :class:`~repro.precision.PrecisionPolicy` (``"fp32"``
  halves spectrum memory; ``"fp64"`` is the reference numerics),
* :mod:`repro.runtime.workspace` — :class:`Workspace`, the per-plan
  arena of reusable batch-bucketed buffers that makes the steady-state
  hot path allocation-free,
* :mod:`repro.runtime.executors` — the execution strategies:
  :class:`SerialExecutor` (in-process), :class:`ThreadedExecutor`
  (in-process thread pool; the numpy kernels release the GIL) and
  :class:`ShardedExecutor` (fork pool) — batch- and block-row-sharded,
  bitwise-identical results either way — with the strategy decisions
  factored into :class:`ShardScheduler` and the parallelism held by
  shared, plan-id-keyed :class:`ThreadWorkerPool` /
  :class:`ForkWorkerPool` instances one engine's routes all attach to,
* :mod:`repro.runtime.transport` — how activations reach pool workers:
  :class:`PipeTransport` (pickled through the pool pipe) or
  :class:`SharedMemoryTransport` (a double-buffered ring of
  ``multiprocessing.shared_memory`` slot pairs, no per-chunk pickling),
* :mod:`repro.runtime.session` — :class:`InferenceSession`, the
  user-facing façade binding one plan to one executor with streaming
  ``predict``.
"""

from ..precision import PrecisionPolicy
from .executors import (
    ForkWorkerPool,
    PlanExecutor,
    SerialExecutor,
    ShardScheduler,
    ShardedExecutor,
    ThreadWorkerPool,
    ThreadedExecutor,
    effective_cpu_count,
)
from .plan import PlanOp, compile_model_plan, compile_records_plan, fuse_plan
from .session import InferenceSession

# Imported after .plan so repro.streaming can reuse the batch plan's
# activation table without a cycle.
from ..streaming import StreamPlan, StreamState, compile_stream_plan
from .workspace import DEFAULT_BATCH_BUCKETS, Workspace
from .transport import (
    PipeTransport,
    SharedMemoryTransport,
    Transport,
    make_transport,
)

__all__ = [
    "DEFAULT_BATCH_BUCKETS",
    "ForkWorkerPool",
    "InferenceSession",
    "PipeTransport",
    "PlanOp",
    "PlanExecutor",
    "PrecisionPolicy",
    "SerialExecutor",
    "SharedMemoryTransport",
    "ShardScheduler",
    "ShardedExecutor",
    "StreamPlan",
    "StreamState",
    "ThreadWorkerPool",
    "ThreadedExecutor",
    "Transport",
    "Workspace",
    "compile_model_plan",
    "compile_records_plan",
    "compile_stream_plan",
    "effective_cpu_count",
    "fuse_plan",
    "make_transport",
]
