"""Per-plan workspace arenas for allocation-free steady-state inference.

A frozen plan runs the same op list on every call; the only thing that
varies between calls is the batch size.  :class:`Workspace` exploits
that: each op stages its intermediates in named slots keyed by the
*bucketed* batch size, so after the first call at a given bucket the
plan touches no allocator at all — every buffer is reused and ragged
batches run on leading-axis views of the bucket buffer.

Bitwise contract: arena buffers only change *where* results live, never
how they are computed.  Ops write into slots with ``np.matmul(...,
out=...)`` / ``np.copyto`` and in-place ufuncs whose float semantics
are identical to their out-of-place forms, so the arena path is
bitwise-equal to the fresh-allocation path (asserted by
``tests/runtime/test_arena.py``).

Slots are *op-private*: plan builders prefix slot names with a unique
per-op token, so two ops (or two plans sharing a worker pool — each
plan binds its own :class:`Workspace`) can never alias each other's
buffers.  Zero-filled slots (:meth:`Workspace.zeros`) are zeroed once
at allocation; callers rely on pad regions they never write staying
zero, which holds exactly because each slot has a single writer that
always writes the same region for a given buffer shape.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_BATCH_BUCKETS", "Workspace"]

#: Batch sizes the arena preallocates for.  Requests round *up* to the
#: smallest bucket (ragged tails run on views); batches beyond the last
#: bucket fall back to exact-size buffers, which are still cached and
#: reused when the same large batch repeats (the serving MicroBatcher
#: fuses to bounded batches, so in practice everything lands in-bucket).
DEFAULT_BATCH_BUCKETS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Workspace:
    """A named-slot buffer arena keyed by (slot, shape, dtype).

    One :class:`Workspace` belongs to exactly one thread (or fork
    worker) of exactly one plan — executors create them per thread, the
    fork pool creates them per (worker, plan) — so ``get`` needs no
    locking.
    """

    __slots__ = ("_buckets", "_buffers")

    def __init__(self, buckets: tuple[int, ...] | None = None) -> None:
        if buckets is None:
            buckets = DEFAULT_BATCH_BUCKETS
        buckets = tuple(sorted({int(b) for b in buckets}))
        if not buckets or buckets[0] < 1:
            raise ValueError(f"batch buckets must be positive: {buckets!r}")
        self._buckets = buckets
        self._buffers: dict[tuple, np.ndarray] = {}

    @property
    def buckets(self) -> tuple[int, ...]:
        return self._buckets

    def bucket(self, n: int) -> int:
        """Round a batch size up to the smallest covering bucket.

        Sizes beyond the largest bucket are returned exactly — the
        buffer cache still reuses them on repeat calls.
        """
        for b in self._buckets:
            if b >= n:
                return b
        return n

    def get(self, slot: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """An uninitialised reusable buffer for ``slot`` at ``shape``."""
        key = (slot, shape, np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = self._buffers[key] = np.empty(shape, dtype=dtype)
        return buf

    def zeros(self, slot: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Like :meth:`get` but zero-filled *at allocation only*.

        The caller owns keeping its pad region zero: the slot's single
        writer must never write outside the data region it reads back.
        """
        key = (slot, shape, np.dtype(dtype).str, "z")
        buf = self._buffers.get(key)
        if buf is None:
            buf = self._buffers[key] = np.zeros(shape, dtype=dtype)
        return buf

    def stats(self) -> dict:
        """Buffer count and resident bytes, for profiling output."""
        return {
            "buffers": len(self._buffers),
            "nbytes": int(sum(b.nbytes for b in self._buffers.values())),
            "buckets": self._buckets,
        }

    def clear(self) -> None:
        self._buffers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return f"Workspace(buffers={s['buffers']}, nbytes={s['nbytes']})"
