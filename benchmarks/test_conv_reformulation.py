"""E7 — paper Fig. 3 / Eqns. 5-6: CONV reformulation chain.

Verifies numerically and times the three equivalent CONV formulations:

1. direct sliding-window convolution (Eqn. 5),
2. im2col + dense matrix multiplication (Fig. 3),
3. im2col + block-circulant FFT product (the paper's accelerated path).
"""

import time

import numpy as np
import pytest
from scipy.signal import correlate2d

from .conftest import write_result
from repro.analysis import bc_conv_ops, dense_conv_ops
from repro.nn import BlockCirculantConv2d, Conv2d, Tensor


def _direct_conv(x, weight, bias):
    batch, _, _, _ = x.shape
    out_c, in_c = weight.shape[:2]
    k = weight.shape[2]
    out_h = x.shape[2] - k + 1
    out_w = x.shape[3] - k + 1
    out = np.zeros((batch, out_c, out_h, out_w))
    for n in range(batch):
        for p in range(out_c):
            out[n, p] = (
                sum(
                    correlate2d(x[n, c], weight[p, c], mode="valid")
                    for c in range(in_c)
                )
                + bias[p]
            )
    return out


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_conv_formulations_agree_and_report(benchmark):
    rng = np.random.default_rng(0)
    in_c, out_c, k, side = 16, 16, 3, 16
    bcc = BlockCirculantConv2d(in_c, out_c, k, block_size=8, rng=rng)
    dense = Conv2d(in_c, out_c, k, rng=rng)
    dense.weight.data = bcc.dense_weight()
    dense.bias.data = bcc.bias.data.copy()
    x = rng.normal(size=(4, in_c, side, side))

    direct = _direct_conv(x, dense.weight.data, dense.bias.data)
    im2col_out = dense(Tensor(x)).data
    fft_out = bcc(Tensor(x)).data
    assert np.allclose(direct, im2col_out, atol=1e-9)
    assert np.allclose(direct, fft_out, atol=1e-9)

    t_direct = _best_of(lambda: _direct_conv(x, dense.weight.data, dense.bias.data))
    t_im2col = _best_of(lambda: dense(Tensor(x)))
    t_fft = _best_of(lambda: bcc(Tensor(x)))

    theory_dense = dense_conv_ops(side, side, k, in_c, out_c)
    theory_bc = bc_conv_ops(side, side, k, in_c, out_c, 8)
    lines = [
        "E7 / Fig. 3 — CONV reformulation: direct vs im2col vs BC-FFT",
        "",
        f"geometry: {in_c}ch -> {out_c}ch, {k}x{k} kernel, "
        f"{side}x{side} input, block 8, batch 4",
        f"direct sliding window : {t_direct * 1e3:9.2f} ms",
        f"im2col + dense matmul : {t_im2col * 1e3:9.2f} ms",
        f"im2col + BC FFT       : {t_fft * 1e3:9.2f} ms",
        "",
        f"theoretical ops dense : {theory_dense:12.0f}",
        f"theoretical ops BC    : {theory_bc:12.0f} "
        f"({theory_dense / theory_bc:.1f}x fewer)",
        "all three formulations agree to 1e-9",
    ]
    write_result("conv_reformulation", lines)
    # The reformulated paths must beat the per-window python loop.
    assert t_im2col < t_direct
    # The paper's complexity claim: BC needs fewer ops than dense.
    assert theory_bc < theory_dense

    benchmark(lambda: bcc(Tensor(x)))


def test_bench_conv_dense_im2col(benchmark):
    rng = np.random.default_rng(0)
    conv = Conv2d(16, 16, 3, rng=rng)
    x = Tensor(rng.normal(size=(4, 16, 16, 16)))
    benchmark(conv, x)


def test_bench_conv_block_circulant(benchmark):
    rng = np.random.default_rng(0)
    conv = BlockCirculantConv2d(16, 16, 3, block_size=8, rng=rng)
    x = Tensor(rng.normal(size=(4, 16, 16, 16)))
    benchmark(conv, x)
