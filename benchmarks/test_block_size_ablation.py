"""E11 — ablation: block size vs accuracy vs compression (paper claim (1)).

The paper's stated advantage of *block*-circulant over whole-circulant
matrices [19] is a tunable trade-off between compression ratio and
accuracy.  This ablation trains Arch. 1 at several block sizes on the
synthetic MNIST stand-in and reports accuracy alongside compression,
including the whole-circulant extreme (block = 128).
"""

import numpy as np
import pytest

from .conftest import write_result
from repro.analysis import storage_report
from repro.data import DataLoader
from repro.nn import Adam, CrossEntropyLoss, Trainer, accuracy, predict_in_batches
from repro.zoo import ARCH1_INPUT_SIDE, build_arch1

BLOCK_SIZES = (8, 32, 64, 128)


@pytest.fixture(scope="module")
def ablation(mnist_data):
    train_set, test_set = mnist_data[ARCH1_INPUT_SIDE]
    results = []
    for block in BLOCK_SIZES:
        model = build_arch1(block_size=block, rng=np.random.default_rng(1))
        loader = DataLoader(train_set, batch_size=64, shuffle=True, seed=0)
        trainer = Trainer(
            model, CrossEntropyLoss(), Adam(model.parameters(), lr=0.003)
        )
        trainer.fit(loader, epochs=8)
        model.eval()
        logits = predict_in_batches(model, test_set.inputs)
        score = accuracy(logits, test_set.labels)
        compression = storage_report(model).compression
        results.append((block, score, compression))
    return results


def test_block_size_accuracy_tradeoff(ablation, benchmark, mnist_data):
    lines = [
        "E11 — Arch. 1 block-size ablation (synthetic MNIST)",
        "",
        f"{'block':>6s} {'accuracy %':>11s} {'compression':>12s}",
    ]
    for block, score, compression in ablation:
        lines.append(f"{block:6d} {100 * score:11.2f} {compression:11.1f}x")
    write_result("block_size_ablation", lines)

    accuracies = {block: score for block, score, _ in ablation}
    compressions = {block: c for block, _, c in ablation}
    # Compression grows with block size.
    values = [compressions[b] for b in BLOCK_SIZES]
    assert all(a < b for a, b in zip(values, values[1:]))
    # Every configuration still learns the task decisively.
    assert min(accuracies.values()) > 0.70
    # The mildest compression must be at least as good as the harshest
    # (allowing noise): the trade-off direction of the paper's claim.
    assert accuracies[8] >= accuracies[128] - 0.03

    _, test_set = mnist_data[ARCH1_INPUT_SIDE]
    model = build_arch1(block_size=32, rng=np.random.default_rng(1))
    model.eval()
    benchmark(predict_in_batches, model, test_set.inputs[:64])


def test_bench_arch1_small_block_epoch(benchmark, mnist_data):
    """One training epoch at block 32 — the ablation's unit of work."""
    train_set, _ = mnist_data[ARCH1_INPUT_SIDE]
    model = build_arch1(block_size=32, rng=np.random.default_rng(1))
    loader = DataLoader(train_set, batch_size=64, shuffle=True, seed=0)
    trainer = Trainer(model, CrossEntropyLoss(), Adam(model.parameters(), lr=0.003))
    benchmark.pedantic(lambda: trainer.train_epoch(loader), rounds=1, iterations=1)
