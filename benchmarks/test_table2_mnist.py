"""E2 — paper Table II: MNIST accuracy and per-image runtime.

Trains Arch. 1 and Arch. 2 on the synthetic MNIST stand-in, then predicts
per-image latency for every (platform, implementation) cell of Table II
with the calibrated runtime simulator.  The pytest-benchmark measurement
times the deployed FFT-domain engine on this host for reference.

Shape expectations vs the paper (exact numbers in EXPERIMENTS.md):

* accuracy: Arch. 1 > Arch. 2, both in the 90s (paper: 95.47 / 93.59),
* runtime: C++ ~2.3-2.6x faster than Java; Honor 6X < XU3 < Nexus 5;
  Arch. 1 only slightly slower than Arch. 2.
"""

import numpy as np
import pytest

from .conftest import write_result
from repro.embedded import DeployedModel, InferenceProfiler
from repro.zoo import ARCH1_INPUT_SIDE, ARCH2_INPUT_SIDE

#: Paper Table II: (arch, impl) -> (accuracy %, (nexus5, xu3, honor6x) us).
PAPER_TABLE2 = {
    ("Arch. 1", "Java"): (95.47, (359.6, 294.1, 256.7)),
    ("Arch. 1", "C++"): (95.47, (140.0, 122.0, 101.0)),
    ("Arch. 2", "Java"): (93.59, (350.9, 278.2, 221.7)),
    ("Arch. 2", "C++"): (93.59, (128.5, 119.1, 98.5)),
}

PLATFORM_ORDER = ("nexus5", "xu3", "honor6x")


@pytest.fixture(scope="module")
def table2(trained_arch1, trained_arch2):
    """Measured accuracy + simulated runtimes for every Table II cell."""
    rows = {}
    for name, (model, acc), side in (
        ("Arch. 1", trained_arch1, ARCH1_INPUT_SIDE),
        ("Arch. 2", trained_arch2, ARCH2_INPUT_SIDE),
    ):
        profiler = InferenceProfiler(model, (side * side,))
        for impl_key, impl_name in (("java", "Java"), ("cpp", "C++")):
            runtimes = tuple(
                profiler.runtime_us(p, impl_key) for p in PLATFORM_ORDER
            )
            rows[(name, impl_name)] = (100.0 * acc, runtimes)
    return rows


def test_table2_reproduction(table2, benchmark, trained_arch1):
    """Regenerate Table II and check the paper's qualitative shape."""
    lines = [
        "E2 / Table II — core runtime of each round of inference (MNIST)",
        "",
        f"{'Arch':8s} {'Impl':5s} {'Acc% (paper)':>14s} "
        + " ".join(f"{p + ' us (paper)':>22s}" for p in PLATFORM_ORDER),
    ]
    for key, (acc, runtimes) in sorted(table2.items()):
        paper_acc, paper_runtimes = PAPER_TABLE2[key]
        cells = " ".join(
            f"{ours:8.1f} ({paper:8.1f})"
            for ours, paper in zip(runtimes, paper_runtimes)
        )
        lines.append(
            f"{key[0]:8s} {key[1]:5s} {acc:6.2f} ({paper_acc:5.2f}) {cells}"
        )
    write_result("table2_mnist", lines)

    # Shape assertions.
    for key, (acc, runtimes) in table2.items():
        paper_acc, paper_runtimes = PAPER_TABLE2[key]
        # Accuracy within a few points of the paper's (synthetic data).
        assert abs(acc - paper_acc) < 8.0, key
        # Runtime within 15% of the paper cell-by-cell.
        for ours, paper in zip(runtimes, paper_runtimes):
            assert ours == pytest.approx(paper, rel=0.15), key

    # Arch. 1 more accurate than Arch. 2 (paper: +1.9 points).
    assert table2[("Arch. 1", "C++")][0] > table2[("Arch. 2", "C++")][0]
    # Java/C++ ratio in the paper's band on every platform.
    for arch in ("Arch. 1", "Arch. 2"):
        for i in range(3):
            ratio = table2[(arch, "Java")][1][i] / table2[(arch, "C++")][1][i]
            assert 1.8 < ratio < 3.2, (arch, i)
    # Device ordering: honor6x < xu3 < nexus5.
    for key, (_, runtimes) in table2.items():
        assert runtimes[2] < runtimes[1] < runtimes[0], key

    model, _ = trained_arch1
    profiler = InferenceProfiler(model, (ARCH1_INPUT_SIDE**2,))
    benchmark(profiler.sweep)


def test_bench_arch1_deployed_inference(benchmark, trained_arch1, mnist_data):
    """Host-side per-image latency of the deployed Arch. 1 engine."""
    model, _ = trained_arch1
    test_set = mnist_data[ARCH1_INPUT_SIDE][1]
    deployed = DeployedModel.from_model(model)
    image = test_set.inputs[:1]
    benchmark(deployed.forward, image)


def test_bench_arch2_deployed_inference(benchmark, trained_arch2, mnist_data):
    """Host-side per-image latency of the deployed Arch. 2 engine."""
    model, _ = trained_arch2
    test_set = mnist_data[ARCH2_INPUT_SIDE][1]
    deployed = DeployedModel.from_model(model)
    image = test_set.inputs[:1]
    benchmark(deployed.forward, image)
