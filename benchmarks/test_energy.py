"""E14 — energy per inference on the Table I devices (extension).

The paper motivates embedded deployment with energy efficiency and
compares against TrueNorth, whose hallmark is mW-scale inference.  This
bench extends the runtime reproduction with the first-order race-to-idle
energy model: per-image microjoules for every (platform, implementation)
cell of Tables II-III.
"""

import numpy as np
import pytest

from .conftest import write_result
from repro.embedded import EnergyModel
from repro.zoo import build_arch1, build_arch3


@pytest.fixture(scope="module")
def energy_models():
    rng = np.random.default_rng(0)
    return {
        "Arch. 1 (MNIST)": EnergyModel(build_arch1(rng=rng), (256,)),
        "Arch. 3 (CIFAR-10)": EnergyModel(build_arch3(rng=rng), (3, 32, 32)),
    }


def test_energy_table(energy_models, benchmark):
    lines = [
        "E14 — energy per inference (race-to-idle, uJ/image)",
        "",
        f"{'Model':18s} {'platform':9s} {'Java uJ':>9s} {'C++ uJ':>9s} "
        f"{'C++ img/J':>10s}",
    ]
    for name, model in energy_models.items():
        for platform in ("nexus5", "xu3", "honor6x"):
            java = model.estimate(platform, "java")
            cpp = model.estimate(platform, "cpp")
            lines.append(
                f"{name:18s} {platform:9s} {java.energy_uj:9.0f} "
                f"{cpp.energy_uj:9.0f} {cpp.images_per_joule:10.1f}"
            )
    best1 = energy_models["Arch. 1 (MNIST)"].most_efficient()
    lines += [
        "",
        f"most efficient MNIST deployment: {best1.platform} / "
        f"{best1.implementation} at {best1.energy_uj:.0f} uJ/image",
    ]
    write_result("energy", lines)

    # Honor 6X (16 nm A53) must be the energy winner despite XU3 having
    # similar latency: lower power at similar speed.
    assert best1.platform == "honor6x"
    assert best1.implementation == "cpp"
    # C++ beats Java on energy everywhere (same device, shorter runtime).
    for model in energy_models.values():
        for platform in ("nexus5", "xu3", "honor6x"):
            assert (
                model.estimate(platform, "cpp").energy_uj
                < model.estimate(platform, "java").energy_uj
            )

    benchmark(energy_models["Arch. 1 (MNIST)"].sweep)


def test_bench_energy_estimate(benchmark, energy_models):
    model = energy_models["Arch. 3 (CIFAR-10)"]
    benchmark(model.estimate, "honor6x", "cpp")
