"""E8 — section IV-A storage claim: O(n) weights and compression sweep.

Reports, for each paper architecture, dense vs stored vs deployed bytes,
and sweeps the block size on Arch. 1 to expose the compression knob
(paper section II, contribution (1)).
"""

import numpy as np
import pytest

from .conftest import write_result
from repro.analysis import storage_report
from repro.embedded import DeployedModel
from repro.zoo import build_arch1, build_arch2, build_arch3


def test_storage_report_all_architectures(benchmark):
    rng = np.random.default_rng(0)
    lines = [
        "E8 / section IV-A — storage: dense vs block-circulant",
        "",
        f"{'Model':8s} {'dense params':>13s} {'stored params':>14s} "
        f"{'compression':>12s} {'deployed KB':>12s} {'dense KB':>10s}",
    ]
    models = {
        "Arch. 1": (build_arch1(rng=rng), (256,)),
        "Arch. 2": (build_arch2(rng=rng), (121,)),
        "Arch. 3": (build_arch3(rng=rng), (3, 32, 32)),
    }
    for name, (model, _) in models.items():
        report = storage_report(model)
        lines.append(
            f"{name:8s} {report.dense_params:13d} {report.stored_params:14d} "
            f"{report.compression:11.1f}x "
            f"{report.deployed_bytes / 1024:12.1f} "
            f"{report.dense_bytes / 1024:10.1f}"
        )
        assert report.compression > 3.0, name
    write_result("compression_models", lines)

    benchmark(storage_report, models["Arch. 3"][0])


def test_block_size_compression_sweep(benchmark):
    lines = [
        "E8b — Arch. 1 block-size sweep (the compression knob)",
        "",
        f"{'block':>6s} {'stored params':>14s} {'compression':>12s} "
        f"{'deployed KB':>12s}",
    ]
    previous_params = None
    for block in (8, 16, 32, 64, 128):
        model = build_arch1(block_size=block, rng=np.random.default_rng(0))
        report = storage_report(model)
        deployed = DeployedModel.from_model(model)
        lines.append(
            f"{block:6d} {report.stored_params:14d} "
            f"{report.compression:11.1f}x "
            f"{deployed.storage_bytes() / 1024:12.1f}"
        )
        if previous_params is not None:
            assert report.stored_params < previous_params
        previous_params = report.stored_params
    write_result("compression_sweep", lines)

    model = build_arch1(block_size=64, rng=np.random.default_rng(0))
    benchmark(storage_report, model)


@pytest.mark.parametrize("block", (16, 64))
def test_bench_deployment_export(benchmark, block):
    model = build_arch1(block_size=block, rng=np.random.default_rng(0))
    benchmark(DeployedModel.from_model, model)
