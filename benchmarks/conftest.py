"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (table or figure) and
writes a human-readable comparison file into ``benchmarks/results/`` so
the paper-vs-measured record survives pytest's output capture.  Heavy
fixtures (trained models) are session-scoped: Arch. 1/2 train on the
synthetic MNIST stand-in, the reduced Arch. 3 on the synthetic CIFAR-10
stand-in (see DESIGN.md section 3 for the substitutions).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    bilinear_resize,
    flatten_images,
    load_synthetic_cifar,
    load_synthetic_mnist,
)
from repro.nn import Adam, CrossEntropyLoss, Trainer, accuracy, predict_in_batches
from repro.zoo import (
    ARCH1_INPUT_SIDE,
    ARCH2_INPUT_SIDE,
    build_arch1,
    build_arch2,
    build_arch3_reduced,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Noise level of the synthetic MNIST stand-in, chosen so Arch. 1 lands in
#: the paper's accuracy neighbourhood (~95%) with Arch. 2 a few points
#: below (paper: 95.47% / 93.59%).
MNIST_NOISE = 0.15
CIFAR_NOISE = 0.10


def write_result(name: str, lines: list[str]) -> None:
    """Persist a benchmark's comparison table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)


@pytest.fixture(scope="session")
def mnist_data():
    """Synthetic MNIST resized for both FC architectures."""
    train, test = load_synthetic_mnist(
        train_size=2000, test_size=600, seed=0, noise=MNIST_NOISE
    )

    def view(side):
        to_features = lambda images: flatten_images(
            bilinear_resize(images, side, side)
        )
        return (
            ArrayDataset(to_features(train.inputs), train.labels),
            ArrayDataset(to_features(test.inputs), test.labels),
        )

    return {
        ARCH1_INPUT_SIDE: view(ARCH1_INPUT_SIDE),
        ARCH2_INPUT_SIDE: view(ARCH2_INPUT_SIDE),
    }


def _train_classifier(model, train_set, epochs, lr=0.003, batch_size=64, seed=0):
    loader = DataLoader(train_set, batch_size=batch_size, shuffle=True, seed=seed)
    trainer = Trainer(model, CrossEntropyLoss(), Adam(model.parameters(), lr=lr))
    trainer.fit(loader, epochs=epochs)
    model.eval()
    return model


def _test_accuracy(model, test_set):
    logits = predict_in_batches(model, test_set.inputs)
    model.eval()
    return accuracy(logits, test_set.labels)


@pytest.fixture(scope="session")
def trained_arch1(mnist_data):
    """Arch. 1 trained on 16x16 synthetic MNIST; returns (model, accuracy)."""
    train_set, test_set = mnist_data[ARCH1_INPUT_SIDE]
    model = build_arch1(rng=np.random.default_rng(1))
    _train_classifier(model, train_set, epochs=10)
    return model, _test_accuracy(model, test_set)


@pytest.fixture(scope="session")
def trained_arch2(mnist_data):
    """Arch. 2 trained on 11x11 synthetic MNIST; returns (model, accuracy)."""
    train_set, test_set = mnist_data[ARCH2_INPUT_SIDE]
    model = build_arch2(rng=np.random.default_rng(1))
    _train_classifier(model, train_set, epochs=10)
    return model, _test_accuracy(model, test_set)


@pytest.fixture(scope="session")
def trained_arch3_reduced():
    """Width-reduced Arch. 3 trained on synthetic CIFAR-10.

    Returns (model, accuracy).  The full-width Arch. 3 is used for
    runtime/storage modeling (architecture-only), this reduced model for
    the accuracy column.
    """
    train, test = load_synthetic_cifar(
        train_size=1200, test_size=400, seed=0, noise=CIFAR_NOISE
    )
    model = build_arch3_reduced(width=12, block_size=4, rng=np.random.default_rng(1))
    _train_classifier(model, train, epochs=5, lr=0.002, batch_size=32)
    return model, _test_accuracy(model, test)
